"""The memory protection unit — behavioural and gate-level, bit-exact.

This is the security-critical module of the paper's case study (Fig. 1).
Every data-side bus transaction (core or DMA) is checked against up to
``n_regions`` address regions, each with base/top bounds and a 4-bit
permission field ``[3]=EN [2]=PRIV-only [1]=W [0]=R``.  The lowest-numbered
matching enabled region decides; with no match, only privileged accesses
pass (the "background region" is privileged-only, as on ARM MPUs).

Pipeline (both models, identical):

* cycle *c*: a request appears on the inputs and is captured into the
  ``req_*`` registers at the clock edge;
* cycle *c+1*: the check logic evaluates the captured request; the decision
  is captured into the decision registers (``viol_q`` / ``grant_q``, or
  their redundant rails), the sticky flag and the violation address;
* cycle *c+2*: the bus commits or aborts based on the (combined) decision.

The **responding signals** of the pre-characterization are the decision
registers — they are what the rest of the system acts on.

Countermeasure variants (:class:`MpuVariant`) are supported in both models:

* ``cfg_parity`` — every configuration register carries a parity bit
  checked combinationally during the decision; a mismatch forces a
  violation (fail-secure), so single-bit configuration upsets are caught;
* ``redundancy`` — the decision registers are duplicated (``dual``) or
  triplicated (``tmr``); rails are combined fail-secure (any violating
  rail, or disagreeing grant rails, blocks the access).

Base register manifest (the cross-level contract)::

    cfg_base{i}[16], cfg_top{i}[16], cfg_perm{i}[4]    i in 0..n_regions-1
    req_addr[16], req_write[1], req_priv[1], req_valid[1]
    viol_q[1], grant_q[1], sticky_flag[1], viol_addr[16]

plus, per variant, ``cfg_*{i}_par[1]`` parity bits and ``viol_q_b`` /
``grant_q_b`` (and ``_c``) redundant rails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.hdl import Module, Wire
from repro.netlist.graph import Netlist
from repro.rtl.device import RegisterSpec
from repro.soc.memmap import MemoryMap, DEFAULT_MEMORY_MAP, MpuRegionInit

# cfg write port field selectors
CFG_FIELD_BASE = 0
CFG_FIELD_TOP = 1
CFG_FIELD_PERM = 2

_CFG_FIELDS = (
    (CFG_FIELD_BASE, "cfg_base", "addr"),
    (CFG_FIELD_TOP, "cfg_top", "addr"),
    (CFG_FIELD_PERM, "cfg_perm", "perm"),
)


@dataclass(frozen=True)
class MpuVariant:
    """Structural countermeasure configuration of the MPU."""

    redundancy: str = "none"  # "none" | "dual" | "tmr"
    cfg_parity: bool = False

    def __post_init__(self) -> None:
        if self.redundancy not in ("none", "dual", "tmr"):
            raise SimulationError(f"unknown redundancy {self.redundancy!r}")

    @property
    def rails(self) -> Tuple[str, ...]:
        """Suffixes of the decision-register rails."""
        if self.redundancy == "dual":
            return ("", "_b")
        if self.redundancy == "tmr":
            return ("", "_b", "_c")
        return ("",)

    @property
    def name(self) -> str:
        parts = [self.redundancy]
        if self.cfg_parity:
            parts.append("parity")
        return "+".join(parts)

    @classmethod
    def parse(cls, text: str) -> "MpuVariant":
        """Parse 'none', 'parity', 'dual', 'dual+parity', 'tmr', 'tmr+parity'."""
        parts = set(text.lower().split("+"))
        parity = "parity" in parts
        parts.discard("parity")
        parts.discard("none")
        redundancy = parts.pop() if parts else "none"
        return cls(redundancy=redundancy, cfg_parity=parity)


BASELINE_VARIANT = MpuVariant()


@dataclass(frozen=True)
class MpuConfigView:
    """A pure-data snapshot of the MPU region configuration.

    Used by the behavioural model, the gate-level elaboration's reference
    semantics, and the analytical evaluator (Section 5.2 of the paper: the
    outcome for memory-type registers is derived from "the system
    configuration, faulty registers, and benchmarks" without simulation).
    """

    bases: Tuple[int, ...]
    tops: Tuple[int, ...]
    perms: Tuple[int, ...]

    @property
    def n_regions(self) -> int:
        return len(self.bases)

    @classmethod
    def from_registers(cls, registers: Mapping[str, int], n_regions: int) -> "MpuConfigView":
        return cls(
            bases=tuple(registers[f"cfg_base{i}"] for i in range(n_regions)),
            tops=tuple(registers[f"cfg_top{i}"] for i in range(n_regions)),
            perms=tuple(registers[f"cfg_perm{i}"] for i in range(n_regions)),
        )

    @classmethod
    def from_regions(cls, regions: List[MpuRegionInit]) -> "MpuConfigView":
        return cls(
            bases=tuple(r.base for r in regions),
            tops=tuple(r.top for r in regions),
            perms=tuple(r.perm_bits() for r in regions),
        )


def mpu_decision(config: MpuConfigView, addr: int, write: bool, priv: bool) -> bool:
    """The base MPU check function: ``True`` iff the access violates.

    This single pure function defines the region semantics; the behavioural
    model calls it directly and the gate-level netlist is structurally
    equivalent (verified by the equivalence tests).
    """
    for i in range(config.n_regions):
        perm = config.perms[i]
        enabled = (perm >> 3) & 1
        if not enabled:
            continue
        if not config.bases[i] <= addr <= config.tops[i]:
            continue
        # First (lowest-index) matching enabled region decides.
        priv_only = (perm >> 2) & 1
        allowed = ((perm >> 1) & 1) if write else (perm & 1)
        if priv_only and not priv:
            allowed = 0
        return not bool(allowed)
    # Background: only privileged accesses allowed.
    return not priv


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


class MpuSemantics:
    """Variant-aware check semantics over a register-state dictionary.

    The one place that knows how configuration state (including parity
    bits) maps to an access decision.  Used by the behavioural model and
    the analytical evaluator so both always agree.
    """

    def __init__(self, memmap: MemoryMap = DEFAULT_MEMORY_MAP,
                 variant: MpuVariant = BASELINE_VARIANT):
        self.memmap = memmap
        self.variant = variant

    def parity_error(self, registers: Mapping[str, int]) -> bool:
        if not self.variant.cfg_parity:
            return False
        for i in range(self.memmap.n_mpu_regions):
            for _sel, prefix, _kind in _CFG_FIELDS:
                name = f"{prefix}{i}"
                if _parity(registers[name]) != (registers[f"{name}_par"] & 1):
                    return True
        return False

    def violates(
        self, registers: Mapping[str, int], addr: int, write: bool, priv: bool
    ) -> bool:
        """Full decision, including the fail-secure parity check."""
        if self.parity_error(registers):
            return True
        config = MpuConfigView.from_registers(registers, self.memmap.n_mpu_regions)
        return mpu_decision(config, addr, write, priv)


@dataclass
class MpuInputs:
    """One cycle of stimulus to the MPU block."""

    in_addr: int = 0
    in_write: int = 0
    in_priv: int = 0
    in_valid: int = 0
    cfg_we: int = 0
    cfg_index: int = 0
    cfg_field: int = 0
    cfg_wdata: int = 0
    flag_clear: int = 0

    def as_port_dict(self) -> Dict[str, int]:
        return {
            "in_addr": self.in_addr,
            "in_write": self.in_write,
            "in_priv": self.in_priv,
            "in_valid": self.in_valid,
            "cfg_we": self.cfg_we,
            "cfg_index": self.cfg_index,
            "cfg_field": self.cfg_field,
            "cfg_wdata": self.cfg_wdata,
            "flag_clear": self.flag_clear,
        }


@dataclass(frozen=True)
class MpuOutputs:
    """Registered (Moore) outputs visible to the bus and core.

    For redundant variants these are the *combined* rails: any violating
    rail (or disagreeing grant rails) reads as a violation, and a grant
    needs every rail to agree.
    """

    grant_q: int
    viol_q: int
    sticky_flag: int
    viol_addr: int


def combine_decision_rails(
    viols: List[int], grants: List[int]
) -> Tuple[int, int]:
    """(viol, grant) from redundant decision rails, fail-secure."""
    n = len(viols)
    if n == 1:
        viol = viols[0]
        grant = grants[0]
    elif n == 2:
        viol = viols[0] | viols[1] | (grants[0] ^ grants[1])
        grant = grants[0] & grants[1] & ~(viols[0] | viols[1]) & 1
    else:  # TMR majority
        viol = _majority(viols)
        grant = _majority(grants) & ~_majority(viols) & 1
    return viol & 1, grant & 1


def _majority(bits: List[int]) -> int:
    a, b, c = bits
    return (a & b) | (b & c) | (a & c)


def mpu_register_specs(
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
    variant: MpuVariant = BASELINE_VARIANT,
) -> Dict[str, RegisterSpec]:
    """The shared register manifest."""
    specs: Dict[str, RegisterSpec] = {}
    for i in range(memmap.n_mpu_regions):
        specs[f"cfg_base{i}"] = RegisterSpec(memmap.addr_bits)
        specs[f"cfg_top{i}"] = RegisterSpec(memmap.addr_bits)
        specs[f"cfg_perm{i}"] = RegisterSpec(4)
        if variant.cfg_parity:
            specs[f"cfg_base{i}_par"] = RegisterSpec(1)
            specs[f"cfg_top{i}_par"] = RegisterSpec(1)
            specs[f"cfg_perm{i}_par"] = RegisterSpec(1)
    specs["req_addr"] = RegisterSpec(memmap.addr_bits)
    specs["req_write"] = RegisterSpec(1)
    specs["req_priv"] = RegisterSpec(1)
    specs["req_valid"] = RegisterSpec(1)
    for rail in variant.rails:
        specs[f"viol_q{rail}"] = RegisterSpec(1)
        specs[f"grant_q{rail}"] = RegisterSpec(1)
    specs["sticky_flag"] = RegisterSpec(1)
    specs["viol_addr"] = RegisterSpec(memmap.addr_bits)
    return specs


class MpuBehavioral:
    """Fast word-level model of the MPU block.

    Bit-exact with the elaborated netlist of :func:`build_mpu_netlist` for
    every variant — the equivalence tests drive both with identical
    stimulus and compare every register every cycle.
    """

    def __init__(
        self,
        memmap: MemoryMap = DEFAULT_MEMORY_MAP,
        variant: MpuVariant = BASELINE_VARIANT,
    ):
        self.memmap = memmap
        self.variant = variant
        self.semantics = MpuSemantics(memmap, variant)
        self._specs = mpu_register_specs(memmap, variant)
        self.regs: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        self.regs = {name: spec.init for name, spec in self._specs.items()}

    def register_specs(self) -> Dict[str, RegisterSpec]:
        return dict(self._specs)

    def config_view(self) -> MpuConfigView:
        return MpuConfigView.from_registers(self.regs, self.memmap.n_mpu_regions)

    def outputs(self) -> MpuOutputs:
        """Moore outputs: functions of the current registers only."""
        rails = self.variant.rails
        viol, grant = combine_decision_rails(
            [self.regs[f"viol_q{r}"] for r in rails],
            [self.regs[f"grant_q{r}"] for r in rails],
        )
        return MpuOutputs(
            grant_q=grant,
            viol_q=viol,
            sticky_flag=self.regs["sticky_flag"],
            viol_addr=self.regs["viol_addr"],
        )

    def check_violation(self) -> bool:
        """Combinational check of the *captured* request (cycle c+1 logic)."""
        return self.semantics.violates(
            self.regs,
            self.regs["req_addr"],
            bool(self.regs["req_write"]),
            bool(self.regs["req_priv"]),
        )

    def step(self, inputs: MpuInputs) -> None:
        """One clock edge: compute all next-state values, then commit."""
        regs = self.regs
        memmap = self.memmap
        violation = self.check_violation() and bool(regs["req_valid"])

        nxt: Dict[str, int] = {}
        # Request capture: hold address/attributes when no new request so
        # the check logic sees a stable operand (matches the netlist muxes).
        if inputs.in_valid:
            nxt["req_addr"] = inputs.in_addr & memmap.addr_mask
            nxt["req_write"] = inputs.in_write & 1
            nxt["req_priv"] = inputs.in_priv & 1
        else:
            nxt["req_addr"] = regs["req_addr"]
            nxt["req_write"] = regs["req_write"]
            nxt["req_priv"] = regs["req_priv"]
        nxt["req_valid"] = inputs.in_valid & 1

        for rail in self.variant.rails:
            nxt[f"viol_q{rail}"] = 1 if violation else 0
            nxt[f"grant_q{rail}"] = (
                1 if (regs["req_valid"] and not violation) else 0
            )
        # The sticky status flag follows the *registered* decision: it is a
        # read-back of what the system acted on, one cycle later.
        prev_viol, _prev_grant = combine_decision_rails(
            [regs[f"viol_q{r}"] for r in self.variant.rails],
            [regs[f"grant_q{r}"] for r in self.variant.rails],
        )
        sticky = regs["sticky_flag"] | prev_viol
        nxt["sticky_flag"] = 0 if inputs.flag_clear else sticky
        nxt["viol_addr"] = regs["req_addr"] if violation else regs["viol_addr"]

        # Configuration write port.
        for i in range(memmap.n_mpu_regions):
            for field_sel, prefix, kind in _CFG_FIELDS:
                reg_name = f"{prefix}{i}"
                width = memmap.addr_bits if kind == "addr" else 4
                written = (
                    inputs.cfg_we
                    and inputs.cfg_index == i
                    and inputs.cfg_field == field_sel
                )
                if written:
                    value = inputs.cfg_wdata & ((1 << width) - 1)
                    nxt[reg_name] = value
                    if self.variant.cfg_parity:
                        nxt[f"{reg_name}_par"] = _parity(value)
                else:
                    nxt[reg_name] = regs[reg_name]
                    if self.variant.cfg_parity:
                        nxt[f"{reg_name}_par"] = regs[f"{reg_name}_par"]

        self.regs = nxt

    # ------------------------------------------------------------------
    # state exchange (cross-level contract)
    # ------------------------------------------------------------------
    def get_registers(self) -> Dict[str, int]:
        return dict(self.regs)

    def set_registers(self, values: Mapping[str, int]) -> None:
        for name, value in values.items():
            if name not in self._specs:
                raise SimulationError(f"unknown MPU register {name!r}")
            self.regs[name] = value & self._specs[name].mask


def build_mpu_netlist(
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
    variant: MpuVariant = BASELINE_VARIANT,
) -> Netlist:
    """Elaborate the MPU block into a gate-level netlist.

    Structure mirrors :class:`MpuBehavioral` exactly: same registers, same
    capture/check pipeline, same configuration write port, same
    countermeasure structures.
    """
    m = Module(f"mpu_{variant.name}")
    abits = memmap.addr_bits
    n = memmap.n_mpu_regions

    in_addr = m.input("in_addr", abits)
    in_write = m.input("in_write", 1)
    in_priv = m.input("in_priv", 1)
    in_valid = m.input("in_valid", 1)
    cfg_we = m.input("cfg_we", 1)
    cfg_index = m.input("cfg_index", 3)
    cfg_field = m.input("cfg_field", 2)
    cfg_wdata = m.input("cfg_wdata", abits)
    flag_clear = m.input("flag_clear", 1)

    cfg_base = [m.register(f"cfg_base{i}", abits) for i in range(n)]
    cfg_top = [m.register(f"cfg_top{i}", abits) for i in range(n)]
    cfg_perm = [m.register(f"cfg_perm{i}", 4) for i in range(n)]
    parity_regs: Dict[str, Wire] = {}
    if variant.cfg_parity:
        for i in range(n):
            for _sel, prefix, _kind in _CFG_FIELDS:
                name = f"{prefix}{i}_par"
                parity_regs[name] = m.register(name, 1)
    req_addr = m.register("req_addr", abits)
    req_write = m.register("req_write", 1)
    req_priv = m.register("req_priv", 1)
    req_valid = m.register("req_valid", 1)
    viol_rails = [m.register(f"viol_q{r}", 1) for r in variant.rails]
    grant_rails = [m.register(f"grant_q{r}", 1) for r in variant.rails]
    sticky_flag = m.register("sticky_flag", 1)
    viol_addr = m.register("viol_addr", abits)

    # ------------------------------------------------------------------
    # check logic on the captured request
    # ------------------------------------------------------------------
    matches: List[Wire] = []
    allowed_terms: List[Wire] = []
    for i in range(n):
        enabled = cfg_perm[i][3]
        ge_base = req_addr.ge(cfg_base[i])
        le_top = req_addr.le(cfg_top[i])
        match = enabled & ge_base & le_top
        matches.append(match)
        read_ok = cfg_perm[i][0]
        write_ok = cfg_perm[i][1]
        priv_only = cfg_perm[i][2]
        rw_ok = req_write.mux(write_ok, read_ok)
        priv_ok = ~priv_only | req_priv
        allowed_terms.append(rw_ok & priv_ok)

    grants = m.priority_encode(matches)  # one-hot: first matching region
    selected_allowed = m.one_hot_select(grants, allowed_terms)
    any_match = matches[0]
    for match in matches[1:]:
        any_match = any_match | match
    background_ok = req_priv  # no region matched: privileged-only
    access_ok = any_match.mux(selected_allowed, background_ok)

    base_violation = ~access_ok
    if variant.cfg_parity:
        parity_err: Optional[Wire] = None
        for i in range(n):
            for _sel, prefix, kind in _CFG_FIELDS:
                value = {"cfg_base": cfg_base, "cfg_top": cfg_top,
                         "cfg_perm": cfg_perm}[prefix][i]
                err = _xor_reduce(value) ^ parity_regs[f"{prefix}{i}_par"]
                parity_err = err if parity_err is None else (parity_err | err)
        base_violation = base_violation | parity_err
    violation = base_violation & req_valid

    # ------------------------------------------------------------------
    # next-state
    # ------------------------------------------------------------------
    m.connect(req_addr, in_valid.mux(in_addr, req_addr))
    m.connect(req_write, in_valid.mux(in_write, req_write))
    m.connect(req_priv, in_valid.mux(in_priv, req_priv))
    m.connect(req_valid, in_valid)
    for rail_viol, rail_grant in zip(viol_rails, grant_rails):
        m.connect(rail_viol, violation)
        m.connect(rail_grant, req_valid & ~violation)

    viol_eff, grant_eff = _combine_rails_hw(m, viol_rails, grant_rails)
    m.connect(sticky_flag, flag_clear.mux(m.const(0, 1), sticky_flag | viol_eff))
    m.connect(viol_addr, violation.mux(req_addr, viol_addr))

    for i in range(n):
        index_hit = cfg_index.eq(i)
        we = cfg_we & index_hit
        base_we = we & cfg_field.eq(CFG_FIELD_BASE)
        top_we = we & cfg_field.eq(CFG_FIELD_TOP)
        perm_we = we & cfg_field.eq(CFG_FIELD_PERM)
        m.connect(cfg_base[i], base_we.mux(cfg_wdata, cfg_base[i]))
        m.connect(cfg_top[i], top_we.mux(cfg_wdata, cfg_top[i]))
        m.connect(cfg_perm[i], perm_we.mux(cfg_wdata.trunc(4), cfg_perm[i]))
        if variant.cfg_parity:
            for we_wire, prefix, data in (
                (base_we, "cfg_base", cfg_wdata),
                (top_we, "cfg_top", cfg_wdata),
                (perm_we, "cfg_perm", cfg_wdata.trunc(4)),
            ):
                par_reg = parity_regs[f"{prefix}{i}_par"]
                m.connect(par_reg, we_wire.mux(_xor_reduce(data), par_reg))

    m.output("grant_q", grant_eff)
    m.output("viol_q", viol_eff)
    m.output("sticky_flag", sticky_flag)
    m.output("viol_addr", viol_addr)
    # Expose the combinational decision nets as named outputs so the
    # pre-characterization can address them as responding signals.
    m.output("violation_comb", violation)
    m.output("access_ok_comb", access_ok)

    return m.finalize()


def _xor_reduce(wire: Wire) -> Wire:
    out = wire[0]
    for i in range(1, wire.width):
        out = out ^ wire[i]
    return out


def _combine_rails_hw(
    m: Module, viols: List[Wire], grants: List[Wire]
) -> Tuple[Wire, Wire]:
    """Hardware mirror of :func:`combine_decision_rails`."""
    if len(viols) == 1:
        return viols[0], grants[0]
    if len(viols) == 2:
        viol = viols[0] | viols[1] | (grants[0] ^ grants[1])
        grant = grants[0] & grants[1] & ~(viols[0] | viols[1])
        return viol, grant
    viol = _maj_hw(viols)
    grant = _maj_hw(grants) & ~viol
    return viol, grant


def _maj_hw(bits: List[Wire]) -> Wire:
    a, b, c = bits
    return (a & b) | (b & c) | (a & c)


def default_responding_signals(netlist: Netlist) -> List[int]:
    """Node ids of the responding signals in the elaborated MPU.

    Per the paper: the signals that notify the rest of the system of a
    security violation — the registered decision bits (all rails, for
    redundant variants).
    """
    out = []
    for name in netlist.registers:
        if name.startswith("viol_q") or name.startswith("grant_q"):
            out.append(netlist.register_dff(name, 0).nid)
    return sorted(out)
