"""DMA controller peripheral.

A classic mem-to-mem engine programmed through four MMIO registers (SRC,
DST, LEN, CTRL).  Every transfer beat is two bus transactions — a read of
``src + i`` and a write of ``dst + i`` — and each goes through the MPU like
any core access (Fig. 1 of the paper shows peripherals behind the same
access check).  A violation aborts the transfer and sets the error bit.

The DMA matters to the evaluation for two reasons: its configuration
registers are classic *memory-type* registers (written once, then static),
and it provides the third attacker workload (unprivileged code trying to
exfiltrate protected memory via DMA).
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional

from repro.rtl.device import RegisterSpec
from repro.soc.bus import BusRequest, BusStatus, SRC_DMA
from repro.soc.memmap import (
    DMA_REG_CTRL,
    DMA_REG_DST,
    DMA_REG_LEN,
    DMA_REG_SRC,
    MemoryMap,
    DEFAULT_MEMORY_MAP,
)


class DmaState(enum.IntEnum):
    IDLE = 0         # waiting for the bus to start the next read beat
    RD_INFLIGHT = 1  # read transaction owned by us is in the bus pipeline
    WR_PEND = 2      # have read data, waiting for the bus for the write
    WR_INFLIGHT = 3  # write transaction in the pipeline


def dma_register_specs(memmap: MemoryMap = DEFAULT_MEMORY_MAP) -> Dict[str, RegisterSpec]:
    return {
        "dma_src": RegisterSpec(memmap.addr_bits),
        "dma_dst": RegisterSpec(memmap.addr_bits),
        "dma_len": RegisterSpec(memmap.addr_bits),
        "dma_active": RegisterSpec(1),
        "dma_error": RegisterSpec(1),
        "dma_state": RegisterSpec(2),
        "dma_cnt": RegisterSpec(memmap.addr_bits),
        "dma_data": RegisterSpec(memmap.data_bits),
    }


class Dma:
    """Behavioural DMA engine; registers prefixed ``dma_``."""

    def __init__(self, memmap: MemoryMap = DEFAULT_MEMORY_MAP):
        self.memmap = memmap
        self._specs = dma_register_specs(memmap)
        self.regs: Dict[str, int] = {}
        # MMIO write arriving this cycle, applied at the edge.
        self._mmio_write: Optional[tuple] = None
        self.reset()

    def reset(self) -> None:
        self.regs = {name: spec.init for name, spec in self._specs.items()}
        self._mmio_write = None

    def register_specs(self) -> Dict[str, RegisterSpec]:
        return dict(self._specs)

    # ------------------------------------------------------------------
    # MMIO port (called by the bus during its commit stage)
    # ------------------------------------------------------------------
    def mmio_read(self, offset: int) -> int:
        if offset == DMA_REG_SRC:
            return self.regs["dma_src"]
        if offset == DMA_REG_DST:
            return self.regs["dma_dst"]
        if offset == DMA_REG_LEN:
            return self.regs["dma_len"]
        if offset == DMA_REG_CTRL:
            return self.regs["dma_active"] | (self.regs["dma_error"] << 1)
        return 0

    def mmio_write(self, offset: int, value: int) -> None:
        """Record an MMIO write; it takes effect at the coming clock edge."""
        self._mmio_write = (offset, value)

    # ------------------------------------------------------------------
    # bus mastering
    # ------------------------------------------------------------------
    def request(self, bus: BusStatus, core_is_issuing: bool) -> Optional[BusRequest]:
        """The DMA's bus request for this cycle, if any.

        DMA transfers run *unprivileged*: the engine acts on behalf of
        whoever programmed it, so its accesses are checked against the
        user-mode rules (the conservative hardware policy).
        """
        if not bus.free or core_is_issuing or not self.regs["dma_active"]:
            return None
        state = DmaState(self.regs["dma_state"])
        if state == DmaState.IDLE and self.regs["dma_cnt"] < self.regs["dma_len"]:
            return BusRequest(
                addr=(self.regs["dma_src"] + self.regs["dma_cnt"])
                & self.memmap.addr_mask,
                write=False,
                priv=False,
                src=SRC_DMA,
            )
        if state == DmaState.WR_PEND:
            return BusRequest(
                addr=(self.regs["dma_dst"] + self.regs["dma_cnt"])
                & self.memmap.addr_mask,
                write=True,
                wdata=self.regs["dma_data"],
                priv=False,
                src=SRC_DMA,
            )
        return None

    def step(
        self,
        bus: BusStatus,
        issued: Optional[BusRequest],
        viol: bool,
        rdata: Optional[int],
    ) -> None:
        """Clock edge.

        ``issued`` is the request the bus accepted this cycle (ours or the
        core's); ``viol`` is the MPU violation output visible this cycle;
        ``rdata`` is the read data the bus is latching (None if none).
        """
        regs = self.regs
        nxt = dict(regs)
        state = DmaState(regs["dma_state"])

        our_issue = issued is not None and issued.src == SRC_DMA
        our_commit = (not bus.free) and bus.stage == 2 and bus.src == SRC_DMA

        if state == DmaState.IDLE:
            if regs["dma_active"] and regs["dma_cnt"] >= regs["dma_len"]:
                nxt["dma_active"] = 0  # transfer complete
                nxt["dma_cnt"] = 0
            elif our_issue:
                nxt["dma_state"] = DmaState.RD_INFLIGHT
        elif state == DmaState.RD_INFLIGHT:
            if our_commit:
                if viol:
                    nxt["dma_active"] = 0
                    nxt["dma_error"] = 1
                    nxt["dma_cnt"] = 0
                    nxt["dma_state"] = DmaState.IDLE
                else:
                    # Without a grant rdata stays None and dma_data holds its
                    # stale value — a silently-blocked read beat.
                    if rdata is not None:
                        nxt["dma_data"] = rdata & self.memmap.data_mask
                    nxt["dma_state"] = DmaState.WR_PEND
        elif state == DmaState.WR_PEND:
            if our_issue:
                nxt["dma_state"] = DmaState.WR_INFLIGHT
        elif state == DmaState.WR_INFLIGHT:
            if our_commit:
                if viol:
                    nxt["dma_active"] = 0
                    nxt["dma_error"] = 1
                    nxt["dma_cnt"] = 0
                else:
                    nxt["dma_cnt"] = (regs["dma_cnt"] + 1) & self.memmap.addr_mask
                nxt["dma_state"] = DmaState.IDLE

        # MMIO writes win over the engine's own updates.
        if self._mmio_write is not None:
            offset, value = self._mmio_write
            if offset == DMA_REG_SRC:
                nxt["dma_src"] = value & self.memmap.addr_mask
            elif offset == DMA_REG_DST:
                nxt["dma_dst"] = value & self.memmap.addr_mask
            elif offset == DMA_REG_LEN:
                nxt["dma_len"] = value & self.memmap.addr_mask
            elif offset == DMA_REG_CTRL:
                nxt["dma_active"] = value & 1
                nxt["dma_error"] = 0
                nxt["dma_cnt"] = 0
                nxt["dma_state"] = DmaState.IDLE
            self._mmio_write = None

        self.regs = nxt

    # checkpoint support -------------------------------------------------
    def get_registers(self) -> Dict[str, int]:
        return dict(self.regs)

    def set_registers(self, values: Mapping[str, int]) -> None:
        for name, value in values.items():
            self.regs[name] = value & self._specs[name].mask
