"""The processor core (behavioural).

A compact in-order core: one instruction per cycle except loads/stores,
which take four (issue, MPU check, commit, writeback) through the bus
pipeline.  It implements the privilege machinery the benchmarks need —
user/privileged modes, a trap vector, SVC/ERET, privileged CSRs — and is
the consumer of the MPU's responding signals: a ``viol_q`` during the
commit stage of its own transaction makes it take the MPU-violation trap
instead of completing the access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.rtl.device import RegisterSpec
from repro.soc.bus import BusRequest, BusStatus, SRC_CORE
from repro.soc.isa import Csr, Opcode, TrapCause, csr_is_privileged, decode
from repro.soc.memmap import MemoryMap, DEFAULT_MEMORY_MAP
from repro.soc.mpu import CFG_FIELD_BASE, CFG_FIELD_PERM, CFG_FIELD_TOP, MpuOutputs


class CoreState(enum.IntEnum):
    RUN = 0
    MEM1 = 1   # transaction captured, MPU checking
    MEM2 = 2   # commit stage: observe grant_q / viol_q
    MEM3 = 3   # writeback (loads), advance pc
    HALT = 4


@dataclass
class CoreComb:
    """Everything the core decides combinationally in one cycle."""

    next_regs: Dict[str, int]
    request: Optional[BusRequest] = None
    cfg_write: Optional[Tuple[int, int, int]] = None  # (region, field, data)
    flag_clear: bool = False


def core_register_specs(memmap: MemoryMap = DEFAULT_MEMORY_MAP) -> Dict[str, RegisterSpec]:
    specs: Dict[str, RegisterSpec] = {
        "core_pc": RegisterSpec(memmap.addr_bits),
        # Reset in privileged mode, like any real boot flow.
        "core_mode": RegisterSpec(1, init=1),
        "core_state": RegisterSpec(3),
        "core_trapvec": RegisterSpec(memmap.addr_bits),
        "core_epc": RegisterSpec(memmap.addr_bits),
        "core_cause": RegisterSpec(2),
        "core_mem_rd": RegisterSpec(3),
        "core_mem_is_load": RegisterSpec(1),
    }
    for i in range(1, 8):
        specs[f"core_gpr{i}"] = RegisterSpec(memmap.data_bits)
    return specs


class Core:
    """Behavioural core; registers prefixed ``core_``."""

    def __init__(self, memmap: MemoryMap = DEFAULT_MEMORY_MAP):
        self.memmap = memmap
        self._specs = core_register_specs(memmap)
        self.regs: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        self.regs = {name: spec.init for name, spec in self._specs.items()}

    def register_specs(self) -> Dict[str, RegisterSpec]:
        return dict(self._specs)

    # ------------------------------------------------------------------
    # register-file helpers
    # ------------------------------------------------------------------
    def _read_gpr(self, regs: Mapping[str, int], index: int) -> int:
        if index == 0:
            return 0
        return regs[f"core_gpr{index}"]

    @staticmethod
    def _write_gpr(nxt: Dict[str, int], index: int, value: int, mask: int) -> None:
        if index != 0:
            nxt[f"core_gpr{index}"] = value & mask

    @property
    def halted(self) -> bool:
        return self.regs["core_state"] == CoreState.HALT

    # ------------------------------------------------------------------
    # combinational cycle logic
    # ------------------------------------------------------------------
    def compute(self, mpu: MpuOutputs, bus: BusStatus, memory) -> CoreComb:
        regs = self.regs
        nxt = dict(regs)
        comb = CoreComb(next_regs=nxt)
        state = CoreState(regs["core_state"])
        memmap = self.memmap
        dmask = memmap.data_mask
        amask = memmap.addr_mask
        pc = regs["core_pc"]

        if state == CoreState.HALT:
            return comb

        if state == CoreState.MEM1:
            nxt["core_state"] = CoreState.MEM2
            return comb

        if state == CoreState.MEM2:
            if bus.src == SRC_CORE and bus.stage == 2:
                if mpu.viol_q:
                    self._trap(nxt, TrapCause.MPU_VIOLATION, return_pc=pc + 1)
                else:
                    # Granted — or silently blocked (viol_q suppressed but no
                    # grant): either way the pipeline must drain.
                    nxt["core_state"] = CoreState.MEM3
            else:  # pragma: no cover - protocol keeps this unreachable
                nxt["core_state"] = CoreState.MEM3
            return comb

        if state == CoreState.MEM3:
            if regs["core_mem_is_load"]:
                self._write_gpr(nxt, regs["core_mem_rd"], bus.rdata_q, dmask)
            nxt["core_pc"] = (pc + 1) & amask
            nxt["core_state"] = CoreState.RUN
            return comb

        # ---------------- CoreState.RUN: fetch + execute ----------------
        instr = decode(memory.fetch(pc))
        op = instr.opcode
        rs1 = self._read_gpr(regs, instr.rs1)
        rs2 = self._read_gpr(regs, instr.rs2)
        next_pc = (pc + 1) & amask

        if op == Opcode.NOP:
            pass
        elif op == Opcode.HALT:
            nxt["core_state"] = CoreState.HALT
            next_pc = pc
        elif op == Opcode.LI:
            self._write_gpr(nxt, instr.rd, instr.imm, dmask)
        elif op == Opcode.LUI:
            self._write_gpr(nxt, instr.rd, (instr.imm & 0xFFFF) << 16, dmask)
        elif op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                    Opcode.XOR, Opcode.SHL, Opcode.SHR):
            self._write_gpr(nxt, instr.rd, _alu(op, rs1, rs2, dmask), dmask)
        elif op == Opcode.ADDI:
            self._write_gpr(nxt, instr.rd, rs1 + instr.imm, dmask)
        elif op in (Opcode.LW, Opcode.SW):
            if bus.free:
                addr = (rs1 + instr.imm) & amask
                comb.request = BusRequest(
                    addr=addr,
                    write=(op == Opcode.SW),
                    wdata=rs2,
                    priv=bool(regs["core_mode"]),
                    src=SRC_CORE,
                )
                nxt["core_mem_rd"] = instr.rd
                nxt["core_mem_is_load"] = 1 if op == Opcode.LW else 0
                nxt["core_state"] = CoreState.MEM1
            # Bus busy: retry this instruction next cycle.
            next_pc = pc
        elif op == Opcode.BEQ:
            next_pc = (instr.imm & amask) if rs1 == rs2 else next_pc
        elif op == Opcode.BNE:
            next_pc = (instr.imm & amask) if rs1 != rs2 else next_pc
        elif op == Opcode.JMP:
            next_pc = instr.imm & amask
        elif op == Opcode.JAL:
            self._write_gpr(nxt, instr.rd, pc + 1, dmask)
            next_pc = instr.imm & amask
        elif op == Opcode.CSRR:
            self._write_gpr(nxt, instr.rd, self._csr_read(instr.imm, mpu), dmask)
        elif op == Opcode.CSRW:
            next_pc = self._csr_write(comb, nxt, instr.imm, rs1, pc, next_pc)
        elif op == Opcode.SVC:
            self._trap(nxt, TrapCause.SVC, return_pc=pc + 1)
            next_pc = nxt["core_pc"]
        elif op == Opcode.ERET:
            nxt["core_mode"] = 0
            next_pc = regs["core_epc"]

        if nxt["core_state"] not in (CoreState.MEM1, CoreState.HALT):
            nxt["core_pc"] = next_pc & amask
        return comb

    # ------------------------------------------------------------------
    # CSR / trap helpers
    # ------------------------------------------------------------------
    def _csr_read(self, index: int, mpu: MpuOutputs) -> int:
        if index == Csr.TRAPVEC:
            return self.regs["core_trapvec"]
        if index == Csr.EPC:
            return self.regs["core_epc"]
        if index == Csr.CAUSE:
            return self.regs["core_cause"]
        if index == Csr.VIOLFLAG:
            return mpu.sticky_flag
        if index == Csr.VIOLADDR:
            return mpu.viol_addr
        return 0  # MPU config is write-only from the core's side

    def _csr_write(
        self,
        comb: CoreComb,
        nxt: Dict[str, int],
        index: int,
        value: int,
        pc: int,
        next_pc: int,
    ) -> int:
        if csr_is_privileged(index, self.memmap.n_mpu_regions) and not self.regs["core_mode"]:
            self._trap(nxt, TrapCause.ILLEGAL_CSR, return_pc=pc + 1)
            return nxt["core_pc"]
        amask = self.memmap.addr_mask
        if index == Csr.TRAPVEC:
            nxt["core_trapvec"] = value & amask
        elif index == Csr.EPC:
            nxt["core_epc"] = value & amask
        elif index == Csr.CAUSE:
            nxt["core_cause"] = value & 0x3
        elif index == Csr.VIOLFLAG:
            comb.flag_clear = True
        elif Csr.MPU_CFG_BASE <= index < Csr.MPU_CFG_BASE + 4 * self.memmap.n_mpu_regions:
            offset = index - Csr.MPU_CFG_BASE
            region, cfg_field = divmod(offset, 4)
            if cfg_field in (CFG_FIELD_BASE, CFG_FIELD_TOP, CFG_FIELD_PERM):
                comb.cfg_write = (region, cfg_field, value & amask)
        return next_pc

    def _trap(self, nxt: Dict[str, int], cause: TrapCause, return_pc: int) -> None:
        nxt["core_epc"] = return_pc & self.memmap.addr_mask
        nxt["core_cause"] = int(cause) & 0x3
        nxt["core_mode"] = 1
        nxt["core_pc"] = self.regs["core_trapvec"]
        nxt["core_state"] = CoreState.RUN

    # ------------------------------------------------------------------
    # state exchange
    # ------------------------------------------------------------------
    def commit(self, next_regs: Dict[str, int]) -> None:
        self.regs = next_regs

    def get_registers(self) -> Dict[str, int]:
        return dict(self.regs)

    def set_registers(self, values: Mapping[str, int]) -> None:
        for name, value in values.items():
            self.regs[name] = value & self._specs[name].mask


def _alu(op: Opcode, a: int, b: int, mask: int) -> int:
    if op == Opcode.ADD:
        return a + b
    if op == Opcode.SUB:
        return a - b
    if op == Opcode.AND:
        return a & b
    if op == Opcode.OR:
        return a | b
    if op == Opcode.XOR:
        return a ^ b
    if op == Opcode.SHL:
        return a << (b & 31)
    if op == Opcode.SHR:
        return (a & mask) >> (b & 31)
    raise ValueError(f"not an ALU opcode: {op}")
