"""Memory map and platform constants of the evaluation SoC.

Addresses are 16-bit **word** addresses (the data width is 32 bits).  The
default map::

    0x0000 .. 0x0FFF   general RAM: code + attacker data (user accessible)
    0x1000 .. 0x10FF   protected RAM window (privileged-only via MPU)
    0x1100 .. 0x17FF   more general RAM
    0x1800 .. 0x1803   DMA controller registers (MMIO, privileged-only)

The protected window is ordinary RAM — only the MPU makes it privileged.
That is the point of the paper's threat model: defeat the MPU and the
"protection" evaporates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MpuRegionInit:
    """Boot-time MPU region programming (what the firmware configures)."""

    base: int
    top: int
    read: bool = True
    write: bool = True
    privileged_only: bool = False
    enabled: bool = True

    def perm_bits(self) -> int:
        """Pack into the 4-bit perm field: [3]=EN [2]=PRIV [1]=W [0]=R."""
        return (
            (1 if self.read else 0)
            | ((1 if self.write else 0) << 1)
            | ((1 if self.privileged_only else 0) << 2)
            | ((1 if self.enabled else 0) << 3)
        )


@dataclass(frozen=True)
class MemoryMap:
    """All platform constants in one place."""

    ram_words: int = 0x1800
    protected_base: int = 0x1000
    protected_top: int = 0x10FF
    dma_mmio_base: int = 0x1800
    dma_mmio_top: int = 0x1803
    n_mpu_regions: int = 8
    addr_bits: int = 16
    data_bits: int = 32

    def default_regions(self) -> List[MpuRegionInit]:
        """The boot firmware's MPU programming.

        Region 0: user RAM below the protected window, any mode, RW.
        Region 1: the protected window, privileged-only RW.
        Region 2: user RAM above the protected window, any mode, RW.
        Region 3: DMA MMIO registers, privileged-only RW.
        Remaining regions disabled.
        """
        regions = [
            MpuRegionInit(base=0x0000, top=self.protected_base - 1),
            MpuRegionInit(
                base=self.protected_base,
                top=self.protected_top,
                privileged_only=True,
            ),
            MpuRegionInit(base=self.protected_top + 1, top=self.ram_words - 1),
            MpuRegionInit(
                base=self.dma_mmio_base,
                top=self.dma_mmio_top,
                privileged_only=True,
            ),
        ]
        while len(regions) < self.n_mpu_regions:
            regions.append(
                MpuRegionInit(base=0, top=0, read=False, write=False, enabled=False)
            )
        return regions

    def is_protected(self, addr: int) -> bool:
        return self.protected_base <= addr <= self.protected_top

    def is_dma_mmio(self, addr: int) -> bool:
        return self.dma_mmio_base <= addr <= self.dma_mmio_top

    @property
    def addr_mask(self) -> int:
        return (1 << self.addr_bits) - 1

    @property
    def data_mask(self) -> int:
        return (1 << self.data_bits) - 1


DEFAULT_MEMORY_MAP = MemoryMap()

# DMA register offsets within its MMIO window.
DMA_REG_SRC = 0
DMA_REG_DST = 1
DMA_REG_LEN = 2
DMA_REG_CTRL = 3  # bit0 = start/active, bit1 = error (read-only)
