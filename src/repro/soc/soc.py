"""Top-level SoC: core + MPU + bus + memory + DMA.

Implements :class:`repro.rtl.Device`, so the RTL simulator can golden-run,
checkpoint, restart and fault-inject it.  Each :meth:`step` follows a strict
two-phase discipline — all combinational decisions are taken against the
*current* register state, then every sequential element commits at once —
which is what makes the behavioural model cycle-equivalent to a synchronous
netlist.

The MPU's registers appear in the SoC manifest under the **same names** as
the DFFs of the elaborated MPU netlist (``cfg_base0`` … ``viol_addr``);
this shared naming is the cross-level contract the SSF engine relies on
when it hands RTL state to the gate-level simulator and writes latched bit
errors back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.rtl.device import Device, RegisterSpec
from repro.soc.bus import Bus, BusRequest, BusStatus, SRC_CORE
from repro.soc.core import Core, CoreState
from repro.soc.dma import Dma
from repro.soc.memmap import MemoryMap, DEFAULT_MEMORY_MAP
from repro.soc.memory import Memory
from repro.soc.mpu import BASELINE_VARIANT, MpuBehavioral, MpuInputs, MpuVariant


@dataclass
class MpuTraceEntry:
    """Per-cycle record used by the pre-characterization.

    ``inputs`` are the MPU port values during the cycle and ``state`` the
    MPU register values at the start of it — exactly the two things the
    bit-parallel gate-level re-simulation needs.
    """

    cycle: int
    inputs: Dict[str, int]
    state: Dict[str, int]


class Soc(Device):
    """The complete device under evaluation."""

    def __init__(
        self,
        memmap: MemoryMap = DEFAULT_MEMORY_MAP,
        mpu_variant: MpuVariant = BASELINE_VARIANT,
    ):
        self.memmap = memmap
        self.mpu_variant = mpu_variant
        self.core = Core(memmap)
        self.mpu = MpuBehavioral(memmap, mpu_variant)
        self.bus = Bus(memmap)
        self.dma = Dma(memmap)
        self.memory = Memory(memmap)
        self._image: List[int] = []
        self._image_base = 0
        self.record_mpu_trace = False
        self.mpu_trace: List[MpuTraceEntry] = []
        self._cycle = 0

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------
    def load_program(self, words: List[int], base: int = 0) -> None:
        """Install a program image; it survives :meth:`reset`."""
        self._image = list(words)
        self._image_base = base
        self.memory.load_image(self._image, base)

    # ------------------------------------------------------------------
    # Device protocol
    # ------------------------------------------------------------------
    def register_specs(self) -> Dict[str, RegisterSpec]:
        specs: Dict[str, RegisterSpec] = {}
        for part in (self.core, self.mpu, self.bus, self.dma):
            for name, spec in part.register_specs().items():
                if name in specs:
                    raise SimulationError(f"register name collision: {name!r}")
                specs[name] = spec
        return specs

    def reset(self) -> None:
        self.core.reset()
        self.mpu.reset()
        self.bus.reset()
        self.dma.reset()
        self.memory.reset()
        if self._image:
            self.memory.load_image(self._image, self._image_base)
        self.mpu_trace = []
        self._cycle = 0

    def step(self) -> None:
        # ---------------- phase 1: combinational ----------------
        mpu_out = self.mpu.outputs()
        bus_status = self.bus.status()
        core_comb = self.core.compute(mpu_out, bus_status, self.memory)
        dma_req = self.dma.request(bus_status, core_comb.request is not None)
        issued: Optional[BusRequest] = core_comb.request or dma_req

        # Commit stage of an in-flight transaction (writes apply "at the
        # end" of the cycle; reads produce data the bus latches).
        rdata: Optional[int] = None
        if bus_status.stage == 2 and not bus_status.free:
            rdata = self.bus.commit_cycle(bool(mpu_out.grant_q), self.memory, self.dma)

        mpu_inputs = MpuInputs(
            in_addr=issued.addr if issued else 0,
            in_write=1 if (issued and issued.write) else 0,
            in_priv=1 if (issued and issued.priv) else 0,
            in_valid=1 if issued else 0,
            cfg_we=1 if core_comb.cfg_write else 0,
            cfg_index=core_comb.cfg_write[0] if core_comb.cfg_write else 0,
            cfg_field=core_comb.cfg_write[1] if core_comb.cfg_write else 0,
            cfg_wdata=core_comb.cfg_write[2] if core_comb.cfg_write else 0,
            flag_clear=1 if core_comb.flag_clear else 0,
        )

        if self.record_mpu_trace:
            self.mpu_trace.append(
                MpuTraceEntry(
                    cycle=self._cycle,
                    inputs=mpu_inputs.as_port_dict(),
                    state=self.mpu.get_registers(),
                )
            )

        # ---------------- phase 2: commit ----------------
        self.mpu.step(mpu_inputs)
        self.bus.step(issued, rdata)
        self.dma.step(bus_status, issued, bool(mpu_out.viol_q), rdata)
        self.core.commit(core_comb.next_regs)
        self._cycle += 1

    def get_registers(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for part in (self.core, self.mpu, self.bus, self.dma):
            out.update(part.get_registers())
        return out

    def set_registers(self, values: Mapping[str, int]) -> None:
        core_vals: Dict[str, int] = {}
        mpu_vals: Dict[str, int] = {}
        bus_vals: Dict[str, int] = {}
        dma_vals: Dict[str, int] = {}
        for name, value in values.items():
            if name.startswith("core_"):
                core_vals[name] = value
            elif name.startswith("bus_"):
                bus_vals[name] = value
            elif name.startswith("dma_"):
                dma_vals[name] = value
            else:
                mpu_vals[name] = value
        if core_vals:
            self.core.set_registers(core_vals)
        if mpu_vals:
            self.mpu.set_registers(mpu_vals)
        if bus_vals:
            self.bus.set_registers(bus_vals)
        if dma_vals:
            self.dma.set_registers(dma_vals)

    def get_arrays(self) -> Dict[str, List[int]]:
        return {"ram": self.memory.snapshot()}

    def set_arrays(self, arrays: Mapping[str, List[int]]) -> None:
        if "ram" in arrays:
            self.memory.restore(list(arrays["ram"]))

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        return self.core.halted

    def mpu_register_names(self) -> List[str]:
        return list(self.mpu.register_specs().keys())

    def run_until_halt(self, max_cycles: int = 100_000) -> int:
        """Step until the core halts; returns the cycle count."""
        cycles = 0
        while not self.halted:
            if cycles >= max_cycles:
                raise SimulationError(
                    f"program did not halt within {max_cycles} cycles"
                )
            self.step()
            cycles += 1
        return cycles
