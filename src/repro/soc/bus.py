"""System bus.

Single outstanding transaction, fixed three-stage protocol aligned with the
MPU pipeline (see :mod:`repro.soc.mpu`):

* stage 0 / idle — a master (core has priority over DMA) may issue; the
  request is presented to the MPU inputs and captured into the bus
  registers at the edge;
* stage 1 — the MPU evaluates the captured request;
* stage 2 — commit: if ``grant_q`` the operation touches memory or MMIO
  (write applies, read data latches into ``rdata_q``); if ``viol_q`` the
  operation is aborted; either way the bus frees.

Crucially, the bus keeps its **own copy** of the address/data: the MPU
checks its captured ``req_addr`` while the bus commits ``addr``.  A fault
that corrupts the MPU's copy between capture and commit therefore bypasses
the policy without altering the attacked operation — one of the attack
paths the paper's framework is built to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.rtl.device import RegisterSpec
from repro.soc.memmap import (
    DMA_REG_CTRL,
    DMA_REG_DST,
    DMA_REG_LEN,
    DMA_REG_SRC,
    MemoryMap,
    DEFAULT_MEMORY_MAP,
)

SRC_CORE = 0
SRC_DMA = 1


@dataclass(frozen=True)
class BusRequest:
    """A master's request for this cycle."""

    addr: int
    write: bool
    wdata: int = 0
    priv: bool = False
    src: int = SRC_CORE


@dataclass(frozen=True)
class BusStatus:
    """What masters can observe about the bus this cycle."""

    free: bool          # a new request can be issued this cycle
    stage: int          # 0 idle, 1 checking, 2 committing
    src: int            # owner of the in-flight transaction
    write: bool
    rdata_q: int        # read data from the last committed read


def bus_register_specs(memmap: MemoryMap = DEFAULT_MEMORY_MAP) -> Dict[str, RegisterSpec]:
    return {
        "bus_pending": RegisterSpec(1),
        "bus_stage": RegisterSpec(2),
        "bus_addr": RegisterSpec(memmap.addr_bits),
        "bus_wdata": RegisterSpec(memmap.data_bits),
        "bus_write": RegisterSpec(1),
        "bus_src": RegisterSpec(1),
        "bus_rdata": RegisterSpec(memmap.data_bits),
    }


class Bus:
    """Behavioural bus; registers prefixed ``bus_`` in the SoC manifest."""

    def __init__(self, memmap: MemoryMap = DEFAULT_MEMORY_MAP):
        self.memmap = memmap
        self._specs = bus_register_specs(memmap)
        self.regs: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        self.regs = {name: spec.init for name, spec in self._specs.items()}

    def register_specs(self) -> Dict[str, RegisterSpec]:
        return dict(self._specs)

    def status(self) -> BusStatus:
        return BusStatus(
            free=not self.regs["bus_pending"],
            stage=self.regs["bus_stage"],
            src=self.regs["bus_src"],
            write=bool(self.regs["bus_write"]),
            rdata_q=self.regs["bus_rdata"],
        )

    def commit_cycle(
        self,
        grant: bool,
        memory,
        dma,
    ) -> Optional[int]:
        """Stage-2 combinational work: returns read data to latch, applies
        writes.  Call only when ``stage == 2``.  MMIO decodes here."""
        if not grant:
            return None
        addr = self.regs["bus_addr"]
        if self.regs["bus_write"]:
            if self.memmap.is_dma_mmio(addr):
                dma.mmio_write(addr - self.memmap.dma_mmio_base, self.regs["bus_wdata"])
            else:
                memory.write(addr, self.regs["bus_wdata"])
            return None
        if self.memmap.is_dma_mmio(addr):
            return dma.mmio_read(addr - self.memmap.dma_mmio_base)
        return memory.read(addr)

    def step(self, request: Optional[BusRequest], rdata: Optional[int]) -> None:
        """Clock edge: advance the transaction pipeline."""
        regs = self.regs
        nxt = dict(regs)
        if regs["bus_pending"]:
            if regs["bus_stage"] == 1:
                nxt["bus_stage"] = 2
            else:  # stage 2 just committed (or aborted)
                nxt["bus_pending"] = 0
                nxt["bus_stage"] = 0
                if rdata is not None:
                    nxt["bus_rdata"] = rdata & self.memmap.data_mask
        elif request is not None:
            nxt["bus_pending"] = 1
            nxt["bus_stage"] = 1
            nxt["bus_addr"] = request.addr & self.memmap.addr_mask
            nxt["bus_wdata"] = request.wdata & self.memmap.data_mask
            nxt["bus_write"] = 1 if request.write else 0
            nxt["bus_src"] = request.src
        self.regs = nxt

    # checkpoint support -------------------------------------------------
    def get_registers(self) -> Dict[str, int]:
        return dict(self.regs)

    def set_registers(self, values: Mapping[str, int]) -> None:
        for name, value in values.items():
            self.regs[name] = value & self._specs[name].mask
