"""The device under evaluation: a small microcontroller with an MPU.

This package is the substitute for the commercial processor the paper
evaluates (see DESIGN.md, substitution table).  It contains:

* :mod:`repro.soc.isa` / :mod:`repro.soc.assembler` — a 32-bit RISC ISA and
  a two-pass assembler for the attacker workloads.
* :mod:`repro.soc.core` — the behavioural processor core (privilege modes,
  traps, CSRs, 4-cycle bus transactions).
* :mod:`repro.soc.mpu` — the memory protection unit, in **two bit-exact
  forms**: a behavioural model for fast RTL simulation and an elaborated
  gate-level netlist for the fault-injection cycle.  Their shared register
  manifest is the cross-level contract.
* :mod:`repro.soc.bus` / :mod:`repro.soc.memory` / :mod:`repro.soc.dma` —
  the interconnect, RAM (with an MPU-protected window), and a DMA
  peripheral whose transfers are also MPU-checked.
* :mod:`repro.soc.soc` — the top-level :class:`Soc`
  (:class:`repro.rtl.Device` implementation).
* :mod:`repro.soc.programs` — benchmark programs (illegal memory write /
  read, DMA exfiltration) and synthetic pre-characterization workloads.
"""

from repro.soc.isa import Instruction, Opcode, decode, encode
from repro.soc.assembler import assemble
from repro.soc.memmap import MemoryMap, DEFAULT_MEMORY_MAP
from repro.soc.mpu import (
    BASELINE_VARIANT,
    MpuBehavioral,
    MpuConfigView,
    MpuSemantics,
    MpuVariant,
    build_mpu_netlist,
    mpu_decision,
)
from repro.soc.soc import Soc
from repro.soc.programs import (
    BenchmarkProgram,
    illegal_write_benchmark,
    illegal_read_benchmark,
    dma_exfiltration_benchmark,
    reconfig_workload,
    synthetic_workload,
)

__all__ = [
    "Instruction",
    "Opcode",
    "decode",
    "encode",
    "assemble",
    "MemoryMap",
    "DEFAULT_MEMORY_MAP",
    "BASELINE_VARIANT",
    "MpuBehavioral",
    "MpuConfigView",
    "MpuSemantics",
    "MpuVariant",
    "build_mpu_netlist",
    "mpu_decision",
    "Soc",
    "BenchmarkProgram",
    "illegal_write_benchmark",
    "illegal_read_benchmark",
    "dma_exfiltration_benchmark",
    "reconfig_workload",
    "synthetic_workload",
]
