"""Main memory of the SoC.

A flat word-addressed RAM.  The protected window (see
:class:`repro.soc.memmap.MemoryMap`) is physically ordinary RAM — only the
MPU makes it privileged, which is exactly the paper's attack premise.
Instruction fetches read the array directly (the evaluated security policy
covers data accesses); data accesses go through the bus and MPU.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.errors import SimulationError
from repro.soc.memmap import MemoryMap, DEFAULT_MEMORY_MAP


class Memory:
    """Word-addressed RAM with snapshot/restore for checkpoints."""

    def __init__(self, memmap: MemoryMap = DEFAULT_MEMORY_MAP):
        self.memmap = memmap
        self.data: List[int] = [0] * memmap.ram_words

    def reset(self) -> None:
        self.data = [0] * self.memmap.ram_words

    def load_image(self, words: List[int], base: int = 0) -> None:
        """Load a program image (and keep it across reset via reload)."""
        if base + len(words) > self.memmap.ram_words:
            raise SimulationError(
                f"image of {len(words)} words at {base:#x} exceeds RAM"
            )
        for i, word in enumerate(words):
            self.data[base + i] = word & self.memmap.data_mask

    def in_range(self, addr: int) -> bool:
        return 0 <= addr < self.memmap.ram_words

    def read(self, addr: int) -> int:
        if not self.in_range(addr):
            return 0  # unmapped reads return zero (bus-quiet default)
        return self.data[addr]

    def write(self, addr: int, value: int) -> None:
        if not self.in_range(addr):
            return  # unmapped writes are dropped
        self.data[addr] = value & self.memmap.data_mask

    def fetch(self, addr: int) -> int:
        """Instruction fetch (not MPU-checked)."""
        return self.read(addr)

    # checkpoint support -------------------------------------------------
    def snapshot(self) -> List[int]:
        return list(self.data)

    def restore(self, words: List[int]) -> None:
        if len(words) != self.memmap.ram_words:
            raise SimulationError("RAM snapshot has wrong size")
        self.data = list(words)
