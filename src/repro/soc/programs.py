"""Attacker workloads and synthetic pre-characterization programs.

The paper's benchmark is "written in C++ [and] includes illegal memory write
and read operations"; ours are written in the SoC's assembly.  Every
benchmark follows the same shape:

1. **boot** (privileged): program the MPU regions, plant the secret, set the
   trap vector and drop to user mode;
2. **user prologue**: benign loads/stores (gives the pre-characterization
   realistic switching activity);
3. **the malicious operation** — an access the MPU policy forbids (this is
   the paper's target cycle ``Tt`` neighbourhood);
4. **user epilogue** and ``halt``.

The violation handler increments a counter in user RAM, so "the system
detected the attack" is observable as ``counter > 0`` or the MPU sticky
flag.  A *successful* attack commits the malicious operation **and** leaves
both clean — exactly the paper's illegal-transition-without-response
criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.soc.assembler import AssembledProgram, assemble
from repro.soc.isa import Csr
from repro.soc.memmap import (
    DMA_REG_CTRL,
    DMA_REG_DST,
    DMA_REG_LEN,
    DMA_REG_SRC,
    MemoryMap,
    DEFAULT_MEMORY_MAP,
    MpuRegionInit,
)
from repro.utils.rng import SeedLike, as_generator

# Fixed data locations (user RAM, word addresses).
COUNTER_ADDR = 0x0300
USER_BUFFER = 0x0200
LEAK_ADDR = 0x0210
SECRET_ADDR = 0x1040
SECRET_VALUE = 0xC0DE
ATTACK_VALUE = 0xBEEF
PROTECTED_TARGET = 0x1050


@dataclass
class IllegalAccess:
    """Metadata about one malicious access (for the analytical evaluator)."""

    addr: int
    write: bool
    priv: bool = False


@dataclass
class BenchmarkProgram:
    """An assembled workload plus everything needed to judge an attack."""

    name: str
    kind: str  # "write" | "read" | "dma" | "synthetic"
    program: AssembledProgram
    illegal_accesses: List[IllegalAccess]
    counter_addr: int = COUNTER_ADDR
    protected_addr: int = PROTECTED_TARGET
    attack_value: int = ATTACK_VALUE
    secret_addr: int = SECRET_ADDR
    secret_value: int = SECRET_VALUE
    leak_addr: int = LEAK_ADDR
    cycle_slack: int = 80

    # ------------------------------------------------------------------
    # outcome predicates (evaluated on a finished SoC)
    # ------------------------------------------------------------------
    def detected(self, soc) -> bool:
        """Did any protection mechanism notice the attack?"""
        sticky = bool(soc.mpu.regs["sticky_flag"])
        counter = soc.memory.read(self.counter_addr) > 0
        dma_error = bool(soc.dma.regs["dma_error"]) if self.kind == "dma" else False
        return sticky or counter or dma_error

    def malicious_op_committed(self, soc) -> bool:
        """Did the forbidden operation actually take effect?"""
        if self.kind == "write":
            return soc.memory.read(self.protected_addr) == self.attack_value
        if self.kind == "read":
            return soc.memory.read(self.leak_addr) == self.secret_value
        if self.kind == "dma":
            return soc.memory.read(self.leak_addr) == self.secret_value
        return False

    def attack_succeeded(self, soc) -> bool:
        """The paper's indicator ``e``: bypass committed and undetected."""
        return self.malicious_op_committed(soc) and not self.detected(soc)


def _region_setup_asm(regions: List[MpuRegionInit]) -> str:
    lines = []
    for i, region in enumerate(regions):
        base_csr = Csr.MPU_CFG_BASE + 4 * i
        lines.append(f"    li   r1, {region.base}")
        lines.append(f"    csrw {base_csr}, r1")
        lines.append(f"    li   r1, {region.top}")
        lines.append(f"    csrw {base_csr + 1}, r1")
        lines.append(f"    li   r1, {region.perm_bits()}")
        lines.append(f"    csrw {base_csr + 2}, r1")
    return "\n".join(lines)


_TRAP_HANDLER = f"""
trap_handler:
    ; record the violation, then resume after the faulting instruction
    li   r6, {COUNTER_ADDR}
    lw   r5, r6, 0
    addi r5, r5, 1
    sw   r5, r6, 0
    eret
"""


def _boot_asm(
    regions: List[MpuRegionInit],
    plant_secret: bool,
) -> str:
    secret = ""
    if plant_secret:
        secret = f"""
    li   r1, {SECRET_VALUE}
    li   r2, {SECRET_ADDR}
    sw   r1, r2, 0
"""
    return f"""
boot:
{_region_setup_asm(regions)}
{secret}
    li   r1, =trap_handler
    csrw {int(Csr.TRAPVEC)}, r1
    li   r1, =user_main
    csrw {int(Csr.EPC)}, r1
    eret
"""


_BENIGN_LOOP = f"""
    ; benign user activity: walk a buffer with stores and loads
    li   r3, {USER_BUFFER}
    li   r4, 6
benign_loop:
    sw   r4, r3, 0
    lw   r5, r3, 0
    add  r6, r6, r5
    addi r3, r3, 2
    addi r4, r4, -1
    bne  r4, r0, benign_loop
"""


def illegal_write_benchmark(
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
) -> BenchmarkProgram:
    """Unprivileged store into the MPU-protected window (paper's scenario 1)."""
    source = f"""
    jmp boot
{_TRAP_HANDLER}
{_boot_asm(memmap.default_regions(), plant_secret=True)}
user_main:
{_BENIGN_LOOP}
    ; ---- the malicious operation ----
    li   r2, {ATTACK_VALUE}
    li   r1, {PROTECTED_TARGET}
    sw   r2, r1, 0
    ; ---- user epilogue ----
    li   r3, {USER_BUFFER + 1}
    lw   r5, r3, 0
    add  r6, r6, r5
    sw   r6, r3, 1
    halt
"""
    return BenchmarkProgram(
        name="illegal_write",
        kind="write",
        program=assemble(source),
        illegal_accesses=[IllegalAccess(PROTECTED_TARGET, write=True)],
    )


def illegal_read_benchmark(
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
) -> BenchmarkProgram:
    """Unprivileged load of a protected secret, then exfiltration to user RAM."""
    source = f"""
    jmp boot
{_TRAP_HANDLER}
{_boot_asm(memmap.default_regions(), plant_secret=True)}
user_main:
{_BENIGN_LOOP}
    ; ---- the malicious operation: read the secret ----
    li   r1, {SECRET_ADDR}
    lw   r2, r1, 0
    ; exfiltrate whatever was read
    li   r3, {LEAK_ADDR}
    sw   r2, r3, 0
    ; ---- user epilogue ----
    lw   r5, r3, 0
    add  r6, r6, r5
    halt
"""
    return BenchmarkProgram(
        name="illegal_read",
        kind="read",
        program=assemble(source),
        illegal_accesses=[IllegalAccess(SECRET_ADDR, write=False)],
    )


def dma_exfiltration_benchmark(
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
) -> BenchmarkProgram:
    """User-mode DMA programmed to copy one protected word to user RAM.

    The DMA MMIO window is opened to user mode here (region 3 loses its
    privileged-only bit) — the "driver exposes DMA to userspace"
    configuration — but the DMA's *transfers* are still checked as
    unprivileged, so the read of the protected source violates.  The attack
    surface is the check of the DMA read beat.
    """
    regions = memmap.default_regions()
    regions[3] = MpuRegionInit(
        base=memmap.dma_mmio_base,
        top=memmap.dma_mmio_top,
        privileged_only=False,
    )
    mmio = memmap.dma_mmio_base
    source = f"""
    jmp boot
{_TRAP_HANDLER}
{_boot_asm(regions, plant_secret=True)}
user_main:
{_BENIGN_LOOP}
    ; ---- program the DMA: one word, protected -> user RAM ----
    li   r1, {SECRET_ADDR}
    li   r2, {mmio + DMA_REG_SRC}
    sw   r1, r2, 0
    li   r1, {LEAK_ADDR}
    li   r2, {mmio + DMA_REG_DST}
    sw   r1, r2, 0
    li   r1, 1
    li   r2, {mmio + DMA_REG_LEN}
    sw   r1, r2, 0
    li   r1, 1
    li   r2, {mmio + DMA_REG_CTRL}
    sw   r1, r2, 0
    ; ---- poll until the DMA goes idle ----
    li   r3, 1
poll:
    lw   r5, r2, 0
    and  r5, r5, r3
    bne  r5, r0, poll
    halt
"""
    return BenchmarkProgram(
        name="dma_exfiltration",
        kind="dma",
        program=assemble(source),
        illegal_accesses=[IllegalAccess(SECRET_ADDR, write=False)],
        cycle_slack=120,
    )


def reconfig_workload(
    seed: SeedLike = 0,
    n_phases: int = 10,
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
) -> BenchmarkProgram:
    """Synthetic workload with periodic MPU *reconfiguration*.

    Real firmware reprograms the MPU on context switches; this workload
    models that: every phase executes an ``svc`` whose handler flips the
    configuration between the locked-down default and an "open" layout
    (user region grown over the protected window, region 1 no longer
    privileged-only), then probes the protected window at varying offsets.

    This is the *excitation* benchmark of the pre-characterization: the
    decision-critical configuration bits actually toggle here, and their
    toggles are followed (at the probe offsets) by responding-signal
    toggles, which is precisely what the bit-flip correlation ``Corr_i``
    measures.  The static :func:`synthetic_workload` remains the right
    input for the lifetime/contamination campaign (attack benchmarks do
    not reconfigure, so lifetimes there follow the static overwrite
    pattern).
    """
    rng = as_generator(seed)
    top0_csr = Csr.MPU_CFG_BASE + 0 * 4 + 1
    perm1_csr = Csr.MPU_CFG_BASE + 1 * 4 + 2
    default_top0 = memmap.protected_base - 1
    # The "open" layout grows the user region over the whole address space
    # (a boot-time configuration on real parts), so every top-bound bit
    # that can grant the protected window toggles and earns correlation.
    open_top0 = 0xFFFF
    default_perm1 = 0b1111  # EN | PRIV | W | R
    open_perm1 = 0b1011     # EN | W | R
    toggle_addr = COUNTER_ADDR + 4

    handler = f"""
trap_handler:
    csrr r5, {int(Csr.CAUSE)}
    li   r6, 3            ; TrapCause.SVC
    beq  r5, r6, reconfig
    ; MPU violation: bump the counter and resume
    li   r6, {COUNTER_ADDR}
    lw   r5, r6, 0
    addi r5, r5, 1
    sw   r5, r6, 0
    eret
reconfig:
    li   r6, {toggle_addr}
    lw   r5, r6, 0
    bne  r5, r0, open_layout
    ; -> locked layout (the boot default)
    li   r1, {default_top0}
    csrw {top0_csr}, r1
    li   r1, {default_perm1}
    csrw {perm1_csr}, r1
    li   r5, 1
    sw   r5, r6, 0
    eret
open_layout:
    li   r1, {open_top0}
    csrw {top0_csr}, r1
    li   r1, {open_perm1}
    csrw {perm1_csr}, r1
    sw   r0, r6, 0
    eret
"""
    blocks: List[str] = []
    for phase in range(n_phases):
        pad = int(rng.integers(0, 4))
        filler = "\n".join("    add  r7, r7, r7" for _ in range(pad))
        # A burst of probes at staggered offsets after the reconfiguration,
        # so the critical configuration bits earn correlation mass at many
        # unrolled frames (not just one).
        probe_lines: List[str] = []
        for _ in range(int(rng.integers(3, 6))):
            probe = int(
                rng.integers(memmap.protected_base, memmap.protected_top + 1)
            )
            user = int(rng.integers(0x0080, 0x0F00))
            inner_pad = "\n".join(
                "    add  r7, r7, r7" for _ in range(int(rng.integers(0, 3)))
            )
            probe_lines.append(f"""
{inner_pad}
    li   r1, {probe}
    lw   r6, r1, 0
    li   r1, {user}
    sw   r6, r1, 0
""")
        blocks.append(f"""
    svc
{filler}
{''.join(probe_lines)}
""")
    body = "\n".join(blocks)
    source = f"""
    jmp boot
{handler}
{_boot_asm(memmap.default_regions(), plant_secret=True)}
user_main:
{body}
    halt
"""
    return BenchmarkProgram(
        name=f"reconfig_{seed}",
        kind="synthetic",
        program=assemble(source),
        illegal_accesses=[],
    )


def synthetic_workload(
    seed: SeedLike = 0,
    n_blocks: int = 12,
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
) -> BenchmarkProgram:
    """Randomized mixed workload for the pre-characterization step.

    Alternates user-mode blocks of benign accesses at pseudo-random
    addresses with occasional illegal probes into the protected window, so
    the switching signatures cover both granted and violating paths (the
    bit-flip correlation needs the responding signals to toggle).
    """
    rng = as_generator(seed)
    blocks: List[str] = []
    for b in range(n_blocks):
        addr = int(rng.integers(0x0080, 0x0FF0))
        count = int(rng.integers(2, 5))
        value = int(rng.integers(1, 1 << 16))
        blocks.append(f"""
    li   r3, {addr}
    li   r4, {count}
    li   r5, {value}
syn_loop_{b}:
    sw   r5, r3, 0
    lw   r6, r3, 0
    add  r7, r7, r6
    addi r3, r3, 1
    addi r4, r4, -1
    bne  r4, r0, syn_loop_{b}
""")
        if rng.random() < 0.4:
            probe = int(
                rng.integers(memmap.protected_base, memmap.protected_top + 1)
            )
            write = bool(rng.integers(0, 2))
            if write:
                blocks.append(f"""
    li   r1, {probe}
    sw   r7, r1, 0
""")
            else:
                blocks.append(f"""
    li   r1, {probe}
    lw   r6, r1, 0
""")
    body = "\n".join(blocks)
    source = f"""
    jmp boot
{_TRAP_HANDLER}
{_boot_asm(memmap.default_regions(), plant_secret=True)}
user_main:
{body}
    halt
"""
    return BenchmarkProgram(
        name=f"synthetic_{seed}",
        kind="synthetic",
        program=assemble(source),
        illegal_accesses=[],
    )
