"""Instruction set of the evaluation SoC.

A deliberately small 32-bit RISC ISA — the attack surface under study is the
MPU, not the core, so the ISA only needs enough to express the attacker
workloads: ALU ops, loads/stores (MPU-checked), branches, CSR access for MPU
configuration, and privilege transitions (SVC/ERET).

Encoding (32 bits)::

    [31:26] opcode   [25:23] rd   [22:20] rs1   [19:17] rs2   [16:0] imm17

``imm17`` is sign-extended where an immediate is used as an offset or value.
Registers are r0..r7; r0 is hardwired to zero.  Addresses are 16-bit word
addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AssemblyError

N_REGS = 8
IMM_BITS = 17
IMM_MASK = (1 << IMM_BITS) - 1
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1
WORD_MASK = 0xFFFFFFFF
ADDR_MASK = 0xFFFF


class Opcode(enum.IntEnum):
    """All instruction opcodes."""

    NOP = 0
    HALT = 1
    LI = 2      # rd <- sext(imm)
    LUI = 3     # rd <- imm << 16
    ADD = 4     # rd <- rs1 + rs2
    SUB = 5
    AND = 6
    OR = 7
    XOR = 8
    SHL = 9     # rd <- rs1 << (rs2 & 31)
    SHR = 10    # rd <- rs1 >> (rs2 & 31), logical
    ADDI = 11   # rd <- rs1 + sext(imm)
    LW = 12     # rd <- mem[rs1 + sext(imm)]  (MPU checked)
    SW = 13     # mem[rs1 + sext(imm)] <- rs2 (MPU checked)
    BEQ = 14    # if rs1 == rs2: pc <- imm (absolute)
    BNE = 15
    JMP = 16    # pc <- imm
    JAL = 17    # rd <- pc + 1; pc <- imm
    CSRR = 18   # rd <- csr[imm]
    CSRW = 19   # csr[imm] <- rs1   (privileged for protected CSRs)
    SVC = 20    # trap into privileged mode (cause = SVC)
    ERET = 21   # pc <- EPC, mode <- user


# Opcodes whose imm field is consumed (for assembler validation).
_USES_IMM = {
    Opcode.LI,
    Opcode.LUI,
    Opcode.ADDI,
    Opcode.LW,
    Opcode.SW,
    Opcode.BEQ,
    Opcode.BNE,
    Opcode.JMP,
    Opcode.JAL,
    Opcode.CSRR,
    Opcode.CSRW,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for field_name in ("rd", "rs1", "rs2"):
            value = getattr(self, field_name)
            if not 0 <= value < N_REGS:
                raise AssemblyError(
                    f"{field_name}={value} out of range for {self.opcode.name}"
                )
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise AssemblyError(
                f"immediate {self.imm} does not fit in {IMM_BITS} bits"
            )

    def __str__(self) -> str:
        return (
            f"{self.opcode.name} rd=r{self.rd} rs1=r{self.rs1} "
            f"rs2=r{self.rs2} imm={self.imm}"
        )


def encode(instr: Instruction) -> int:
    """Pack an instruction into its 32-bit memory representation."""
    imm = instr.imm & IMM_MASK
    return (
        (int(instr.opcode) << 26)
        | (instr.rd << 23)
        | (instr.rs1 << 20)
        | (instr.rs2 << 17)
        | imm
    ) & WORD_MASK


def decode(word: int) -> Instruction:
    """Unpack a 32-bit word; unknown opcodes decode as NOP (a real core
    would fault, but decoding garbage as NOP keeps fault simulation robust
    when errors corrupt instruction words)."""
    op_bits = (word >> 26) & 0x3F
    try:
        opcode = Opcode(op_bits)
    except ValueError:
        return Instruction(Opcode.NOP)
    imm = word & IMM_MASK
    if imm >= (1 << (IMM_BITS - 1)):
        imm -= 1 << IMM_BITS
    return Instruction(
        opcode=opcode,
        rd=(word >> 23) & 0x7,
        rs1=(word >> 20) & 0x7,
        rs2=(word >> 17) & 0x7,
        imm=imm,
    )


def uses_imm(opcode: Opcode) -> bool:
    return opcode in _USES_IMM


class Csr(enum.IntEnum):
    """Control/status register indices.

    ``MPU_CFG_BASE + region*4 + field`` addresses the MPU configuration port
    (field 0 = base, 1 = top, 2 = perm); see :mod:`repro.soc.mpu`.
    """

    TRAPVEC = 0x01
    EPC = 0x02
    CAUSE = 0x03
    VIOLFLAG = 0x04  # read: sticky violation flag; write: clear
    VIOLADDR = 0x05
    MPU_CFG_BASE = 0x10  # 0x10 .. 0x10 + 4*n_regions - 1


class TrapCause(enum.IntEnum):
    NONE = 0
    MPU_VIOLATION = 1
    ILLEGAL_CSR = 2
    SVC = 3


# CSRs writable only in privileged mode.
PRIVILEGED_CSRS = {Csr.TRAPVEC, Csr.EPC, Csr.CAUSE, Csr.VIOLFLAG}


def csr_is_privileged(index: int, n_regions: int) -> bool:
    """Whether writing CSR ``index`` requires privileged mode."""
    if Csr.MPU_CFG_BASE <= index < Csr.MPU_CFG_BASE + 4 * n_regions:
        return True
    try:
        return Csr(index) in PRIVILEGED_CSRS
    except ValueError:
        return False
