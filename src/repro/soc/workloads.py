"""Parameterized attacker-workload generation.

The paper notes its results "depend on the systems, benchmarks and
uncertainty of attack process"; this module makes the benchmark axis
explorable.  :func:`generate_workload` builds illegal-write/read programs
with controllable structure:

* **benign intensity** — how much legitimate memory traffic surrounds the
  attack (affects switching activity, masking, and the pipeline's
  occupancy);
* **attack position** — early or late in the program (affects how much
  history the checkpoints must carry);
* **repetition** — the attacker may retry the illegal access several
  times (each retry is another target opportunity);
* **DMA background** — a long *legal* DMA copy can run concurrently, so
  bus arbitration perturbs the attack timing like a busy real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AssemblyError
from repro.soc.assembler import assemble
from repro.soc.memmap import (
    DMA_REG_CTRL,
    DMA_REG_DST,
    DMA_REG_LEN,
    DMA_REG_SRC,
    MemoryMap,
    DEFAULT_MEMORY_MAP,
)
from repro.soc.programs import (
    ATTACK_VALUE,
    COUNTER_ADDR,
    LEAK_ADDR,
    PROTECTED_TARGET,
    SECRET_ADDR,
    SECRET_VALUE,
    USER_BUFFER,
    BenchmarkProgram,
    IllegalAccess,
    _TRAP_HANDLER,
    _boot_asm,
)
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of a generated attacker workload."""

    kind: str = "write"              # "write" | "read"
    benign_intensity: int = 6        # iterations of benign traffic loops
    n_attacks: int = 1               # repeated illegal accesses
    attack_spacing: int = 3          # benign ops between repeated attacks
    prologue_blocks: int = 1         # benign blocks before the first attack
    epilogue_blocks: int = 1         # benign blocks after the last attack
    dma_background: bool = False     # legal DMA copy running concurrently
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.kind not in ("write", "read"):
            raise AssemblyError(f"unknown workload kind {self.kind!r}")
        if self.benign_intensity < 0 or self.n_attacks < 1:
            raise AssemblyError("bad workload parameters")


def _benign_block(rng, label: str, iterations: int) -> str:
    if iterations == 0:
        return "    nop"
    addr = int(rng.integers(0x0080, 0x0F00))
    stride = int(rng.integers(1, 4))
    return f"""
    li   r3, {addr}
    li   r4, {iterations}
{label}:
    sw   r4, r3, 0
    lw   r5, r3, 0
    add  r6, r6, r5
    addi r3, r3, {stride}
    addi r4, r4, -1
    bne  r4, r0, {label}
"""


def _attack_block(kind: str, index: int) -> str:
    if kind == "write":
        return f"""
    li   r2, {ATTACK_VALUE}
    li   r1, {PROTECTED_TARGET}
    sw   r2, r1, 0          ; illegal write #{index}
"""
    return f"""
    li   r1, {SECRET_ADDR}
    lw   r2, r1, 0          ; illegal read #{index}
    li   r3, {LEAK_ADDR}
    sw   r2, r3, 0
"""


def _dma_kickoff(memmap: MemoryMap) -> str:
    """Start a long, fully legal DMA copy before dropping privilege."""
    mmio = memmap.dma_mmio_base
    return f"""
    li   r1, 0x0400
    li   r2, {mmio + DMA_REG_SRC}
    sw   r1, r2, 0
    li   r1, 0x0600
    li   r2, {mmio + DMA_REG_DST}
    sw   r1, r2, 0
    li   r1, 48
    li   r2, {mmio + DMA_REG_LEN}
    sw   r1, r2, 0
    li   r1, 1
    li   r2, {mmio + DMA_REG_CTRL}
    sw   r1, r2, 0
"""


def generate_workload(
    params: WorkloadParams = WorkloadParams(),
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
) -> BenchmarkProgram:
    """Assemble one parameterized attacker workload."""
    rng = as_generator(params.seed)
    blocks: List[str] = []
    label_counter = 0

    def benign() -> str:
        nonlocal label_counter
        label_counter += 1
        return _benign_block(
            rng, f"wl_loop_{label_counter}", params.benign_intensity
        )

    for _ in range(params.prologue_blocks):
        blocks.append(benign())
    for attack_index in range(params.n_attacks):
        blocks.append(_attack_block(params.kind, attack_index))
        if attack_index < params.n_attacks - 1:
            for _ in range(params.attack_spacing):
                blocks.append(benign())
    for _ in range(params.epilogue_blocks):
        blocks.append(benign())

    source = f"""
    jmp boot
{_TRAP_HANDLER}
{_boot_asm(memmap.default_regions(), plant_secret=True)}
    .org 0x100
user_main:
{"".join(blocks)}
    halt
"""
    if params.dma_background:
        # The DMA kickoff must run privileged: splice it into the boot
        # sequence just before the jump target is armed (a unique line).
        marker = "    li   r1, =user_main"
        if marker not in source:  # pragma: no cover - template invariant
            raise AssemblyError("boot template changed; cannot splice DMA kickoff")
        source = source.replace(marker, _dma_kickoff(memmap) + marker, 1)

    illegal = (
        IllegalAccess(PROTECTED_TARGET, write=True)
        if params.kind == "write"
        else IllegalAccess(SECRET_ADDR, write=False)
    )
    name = (
        f"gen_{params.kind}_b{params.benign_intensity}"
        f"_a{params.n_attacks}{'_dma' if params.dma_background else ''}"
    )
    return BenchmarkProgram(
        name=name,
        kind=params.kind,
        program=assemble(source),
        illegal_accesses=[illegal],
        cycle_slack=120 + 40 * params.n_attacks,
    )
