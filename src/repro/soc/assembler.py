"""Two-pass assembler for the SoC's ISA.

Syntax, one statement per line::

    ; comment
    label:
        li   r1, 0x1050        ; immediates: decimal, hex, or =label
        sw   r2, r1, 0         ; sw rs2, rs1, offset
        lw   r3, r1, 0         ; lw rd, rs1, offset
        beq  r3, r0, done      ; branch targets: labels or numbers
        csrw 0x10, r1          ; csrw csr, rs1
        csrr r4, 0x04          ; csrr rd, csr
        .org 0x20              ; move the location counter
        .word 0xdeadbeef       ; literal data word
    done:
        halt

Register operands are ``r0``..``r7``.  ``=label`` uses a label's address as
an immediate (e.g. ``li r1, =buffer``).  The assembler produces a dense word
image starting at address 0 (gaps filled with zeros).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.soc.isa import Instruction, Opcode, encode, uses_imm

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_REG_RE = re.compile(r"^r([0-7])$")


@dataclass
class AssembledProgram:
    """Result of assembling one source file."""

    words: List[int]
    labels: Dict[str, int]
    source: str = ""

    def label(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise AssemblyError(f"unknown label {name!r}") from None

    def __len__(self) -> int:
        return len(self.words)


# operand signature per mnemonic: sequence of 'd' (rd), '1' (rs1),
# '2' (rs2), 'i' (imm).  The order matches the assembly syntax.
_SIGNATURES: Dict[str, Tuple[Opcode, str]] = {
    "nop": (Opcode.NOP, ""),
    "halt": (Opcode.HALT, ""),
    "li": (Opcode.LI, "di"),
    "lui": (Opcode.LUI, "di"),
    "add": (Opcode.ADD, "d12"),
    "sub": (Opcode.SUB, "d12"),
    "and": (Opcode.AND, "d12"),
    "or": (Opcode.OR, "d12"),
    "xor": (Opcode.XOR, "d12"),
    "shl": (Opcode.SHL, "d12"),
    "shr": (Opcode.SHR, "d12"),
    "addi": (Opcode.ADDI, "d1i"),
    "lw": (Opcode.LW, "d1i"),
    "sw": (Opcode.SW, "21i"),
    "beq": (Opcode.BEQ, "12i"),
    "bne": (Opcode.BNE, "12i"),
    "jmp": (Opcode.JMP, "i"),
    "jal": (Opcode.JAL, "di"),
    "csrr": (Opcode.CSRR, "di"),
    "csrw": (Opcode.CSRW, "i1"),
    "svc": (Opcode.SVC, ""),
    "eret": (Opcode.ERET, ""),
    "mov": (Opcode.ADD, "d1"),  # pseudo: mov rd, rs1  ->  add rd, rs1, r0
}


def _strip(line: str) -> str:
    for marker in (";", "#", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_value(token: str, labels: Optional[Dict[str, int]], lineno: int) -> int:
    token = token.strip()
    if token.startswith("="):
        token = token[1:]
    try:
        return int(token, 0)
    except ValueError:
        pass
    if labels is None:
        return 0  # first pass: size only
    if token in labels:
        return labels[token]
    raise AssemblyError(f"line {lineno}: unknown symbol {token!r}")


def _parse_reg(token: str, lineno: int) -> int:
    match = _REG_RE.match(token.strip())
    if not match:
        raise AssemblyError(f"line {lineno}: expected register, got {token!r}")
    return int(match.group(1))


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(source: str) -> AssembledProgram:
    """Assemble a source string into a word image.

    Two passes: the first resolves label addresses (tracking ``.org``), the
    second emits machine words.
    """
    labels: Dict[str, int] = {}
    _walk(source, labels, emit=None)  # pass 1: label addresses
    words: Dict[int, int] = {}
    _walk(source, labels, emit=words)  # pass 2: code
    if not words:
        raise AssemblyError("program is empty")
    size = max(words) + 1
    image = [0] * size
    for addr, word in words.items():
        image[addr] = word
    return AssembledProgram(words=image, labels=labels, source=source)


def _walk(
    source: str,
    labels: Dict[str, int],
    emit: Optional[Dict[int, int]],
) -> None:
    resolving = emit is not None
    pc = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            name = match.group(1)
            if not resolving:
                if name in labels:
                    raise AssemblyError(f"line {lineno}: duplicate label {name!r}")
                labels[name] = pc
            line = match.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic == ".org":
            pc = _parse_value(rest, labels if resolving else None, lineno)
            if pc < 0:
                raise AssemblyError(f"line {lineno}: negative .org")
            continue
        if mnemonic == ".word":
            for token in _split_operands(rest):
                if resolving:
                    value = _parse_value(token, labels, lineno) & 0xFFFFFFFF
                    if emit is not None and pc in emit:
                        raise AssemblyError(f"line {lineno}: overlap at {pc:#x}")
                    if emit is not None:
                        emit[pc] = value
                pc += 1
            continue
        if mnemonic not in _SIGNATURES:
            raise AssemblyError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        opcode, signature = _SIGNATURES[mnemonic]
        operands = _split_operands(rest)
        if len(operands) != len(signature):
            raise AssemblyError(
                f"line {lineno}: {mnemonic} takes {len(signature)} operands, "
                f"got {len(operands)}"
            )
        if resolving:
            fields = {"rd": 0, "rs1": 0, "rs2": 0, "imm": 0}
            for spec, token in zip(signature, operands):
                if spec == "d":
                    fields["rd"] = _parse_reg(token, lineno)
                elif spec == "1":
                    fields["rs1"] = _parse_reg(token, lineno)
                elif spec == "2":
                    fields["rs2"] = _parse_reg(token, lineno)
                elif spec == "i":
                    fields["imm"] = _parse_value(token, labels, lineno)
            try:
                instr = Instruction(opcode=opcode, **fields)
            except AssemblyError as exc:
                raise AssemblyError(f"line {lineno}: {exc}") from None
            if emit is not None:
                if pc in emit:
                    raise AssemblyError(f"line {lineno}: overlap at {pc:#x}")
                emit[pc] = encode(instr)
        pc += 1
