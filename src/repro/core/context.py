"""Evaluation context: everything wired together for one benchmark.

:func:`build_context` performs the framework's setup stages once:

1. elaborate the MPU netlist and place it;
2. golden-run the benchmark with checkpoints and the MPU port trace;
3. locate the target cycle ``Tt`` (the check cycle of the malicious
   access);
4. optionally run the full pre-characterization on a synthetic workload.

The resulting :class:`EvaluationContext` is immutable from the engine's
point of view and can be shared by many campaigns (different samplers,
attack specs, hardening what-ifs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.gatesim.timing import TimingModel
from repro.netlist.graph import Netlist
from repro.netlist.placement import GridPlacer, Placement
from repro.precharac.characterization import (
    CharacterizationConfig,
    SystemCharacterization,
    precharacterize,
)
from repro.rtl.simulator import GoldenRun, RtlSimulator
from repro.soc.memmap import MemoryMap, DEFAULT_MEMORY_MAP
from repro.soc.mpu import (
    BASELINE_VARIANT,
    MpuConfigView,
    MpuVariant,
    build_mpu_netlist,
    default_responding_signals,
    mpu_decision,
)
from repro.soc.programs import BenchmarkProgram, reconfig_workload, synthetic_workload
from repro.soc.soc import Soc


@dataclass
class EvaluationContext:
    """Shared, read-only state for SSF campaigns on one benchmark."""

    memmap: MemoryMap
    benchmark: BenchmarkProgram
    soc: Soc
    simulator: RtlSimulator
    netlist: Netlist
    placement: Placement
    timing: TimingModel
    golden: GoldenRun
    n_cycles: int
    target_cycle: int
    mpu_trace: List
    responding: Tuple[int, ...]
    characterization: Optional[SystemCharacterization] = None
    mpu_variant: MpuVariant = BASELINE_VARIANT

    def violation_check_cycles(self) -> List[int]:
        """All cycles in the golden run whose MPU check violated."""
        return find_violation_cycles(self.mpu_trace, self.memmap.n_mpu_regions)


def find_violation_cycles(mpu_trace: Sequence, n_regions: int) -> List[int]:
    """Cycles ``c`` whose captured request violates (``viol_q`` latches at
    the end of ``c``)."""
    cycles = []
    for entry in mpu_trace:
        state = entry.state
        if not state["req_valid"]:
            continue
        cfg = MpuConfigView.from_registers(state, n_regions)
        if mpu_decision(
            cfg,
            state["req_addr"],
            bool(state["req_write"]),
            bool(state["req_priv"]),
        ):
            cycles.append(entry.cycle)
    return cycles


def build_context(
    benchmark: BenchmarkProgram,
    memmap: MemoryMap = DEFAULT_MEMORY_MAP,
    timing: Optional[TimingModel] = None,
    placement_seed: int = 7,
    checkpoint_interval: int = 25,
    characterize: bool = True,
    charac_config: Optional[CharacterizationConfig] = None,
    synthetic_seed: int = 11,
    mpu_variant: MpuVariant = BASELINE_VARIANT,
) -> EvaluationContext:
    """Assemble an :class:`EvaluationContext` for one benchmark."""
    timing = timing or TimingModel()
    netlist = build_mpu_netlist(memmap, mpu_variant)
    placement = GridPlacer(pitch_um=2.0, jitter=0.25, seed=placement_seed).place(
        netlist
    )
    responding = tuple(default_responding_signals(netlist))

    # Golden run of the attacked benchmark, ports traced.
    soc = Soc(memmap, mpu_variant)
    soc.load_program(benchmark.program.words)
    soc.reset()
    halt_cycles = soc.run_until_halt()
    n_cycles = halt_cycles + benchmark.cycle_slack

    simulator = RtlSimulator(soc)
    soc.record_mpu_trace = True
    golden = simulator.golden_run(n_cycles, checkpoint_interval, collect_traces=False)
    soc.record_mpu_trace = False
    mpu_trace = list(soc.mpu_trace)

    check_cycles = find_violation_cycles(mpu_trace, memmap.n_mpu_regions)
    if benchmark.illegal_accesses and not check_cycles:
        raise EvaluationError(
            f"benchmark {benchmark.name!r} never triggered an MPU violation; "
            "cannot locate the target cycle"
        )
    target_cycle = check_cycles[0] if check_cycles else n_cycles // 2

    characterization: Optional[SystemCharacterization] = None
    if characterize:
        syn = synthetic_workload(seed=synthetic_seed, memmap=memmap)
        syn_soc = Soc(memmap, mpu_variant)
        syn_soc.load_program(syn.program.words)
        syn_soc.reset()
        syn_halt = syn_soc.run_until_halt()
        syn_cycles = syn_halt + 10
        syn_soc.record_mpu_trace = True
        RtlSimulator(syn_soc).golden_run(
            syn_cycles, checkpoint_interval, collect_traces=False
        )
        syn_soc.record_mpu_trace = False
        syn_trace = list(syn_soc.mpu_trace)

        # Excitation run for the correlation step: same platform, but with
        # MPU reconfiguration so configuration state actually toggles.
        exc = reconfig_workload(seed=synthetic_seed + 1, memmap=memmap)
        exc_soc = Soc(memmap, mpu_variant)
        exc_soc.load_program(exc.program.words)
        exc_soc.reset()
        exc_halt = exc_soc.run_until_halt()
        exc_soc.record_mpu_trace = True
        RtlSimulator(exc_soc).golden_run(
            exc_halt + 10, checkpoint_interval, collect_traces=False
        )
        exc_trace = list(exc_soc.mpu_trace)

        characterization = precharacterize(
            netlist,
            responding,
            syn_trace,
            syn_soc,
            n_cycles=syn_cycles,
            config=charac_config,
            excitation_trace=exc_trace,
        )

    return EvaluationContext(
        memmap=memmap,
        benchmark=benchmark,
        soc=soc,
        simulator=simulator,
        netlist=netlist,
        placement=placement,
        timing=timing,
        golden=golden,
        n_cycles=n_cycles,
        target_cycle=target_cycle,
        mpu_trace=mpu_trace,
        responding=responding,
        characterization=characterization,
        mpu_variant=mpu_variant,
    )
