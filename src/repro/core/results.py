"""Result records of the SSF evaluation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.attack.spec import AttackSample
from repro.sampling.estimator import SsfEstimator


class OutcomeCategory(enum.Enum):
    """Where one fault-attack run terminated in the Fig. 5 flow."""

    MASKED = "masked"                # no register latched an error
    MEMORY_ONLY = "memory_only"      # errors confined to memory-type regs
    NEEDS_RTL = "needs_rtl"          # computation-type regs hit: RTL resume
    OUT_OF_RANGE = "out_of_range"    # injection cycle before reset


@dataclass(frozen=True)
class SampleRecord:
    """One fault-attack run."""

    sample: AttackSample
    e: int                                     # success indicator
    category: OutcomeCategory
    flipped_bits: FrozenSet[Tuple[str, int]]
    injection_cycle: int
    n_pulses_injected: int = 0
    n_pulses_latched: int = 0
    analytical: bool = False                   # evaluated without RTL resume

    @property
    def contribution(self) -> float:
        """This record's term in the SSF average: ``w · e``."""
        return self.sample.weight * self.e


@dataclass
class CampaignResult:
    """A finished (or converged) evaluation campaign."""

    strategy: str
    records: List[SampleRecord]
    estimator: SsfEstimator
    wall_time_s: float = 0.0
    # Serialized repro.obs.MetricsRegistry snapshot recorded during the
    # run (None when the producer ran unobserved).
    metrics: Optional[List[dict]] = None

    @property
    def ssf(self) -> float:
        return self.estimator.ssf

    @property
    def variance(self) -> float:
        return self.estimator.variance

    @property
    def n_samples(self) -> int:
        return len(self.records)

    @property
    def n_success(self) -> int:
        return sum(r.e for r in self.records)

    def category_counts(self) -> Dict[OutcomeCategory, int]:
        counts: Dict[OutcomeCategory, int] = {c: 0 for c in OutcomeCategory}
        for record in self.records:
            counts[record.category] += 1
        return counts

    def category_fractions(self) -> Dict[OutcomeCategory, float]:
        counts = self.category_counts()
        total = max(1, len(self.records))
        return {c: n / total for c, n in counts.items()}

    def rtl_resume_fraction(self) -> float:
        """Share of runs that needed the expensive RTL resume (Fig. 10(a))."""
        return self.category_fractions()[OutcomeCategory.NEEDS_RTL]

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "strategy": self.strategy,
            "wall_time_s": round(self.wall_time_s, 3),
            **self.estimator.summary(),
        }
        out["categories"] = {
            c.value: n for c, n in self.category_counts().items() if n
        }
        return out
