"""Parallel Monte Carlo campaigns.

SSF samples are independent, so a campaign splits perfectly across
processes.  ``parallel_evaluate`` forks workers (each inherits the
evaluation context copy-on-write, so no re-setup cost), runs a chunk per
worker with an independent seed stream, and merges the per-worker
estimators exactly (Welford merge, see
:meth:`repro.utils.stats.RunningStats.merge`).

Only available on platforms with the ``fork`` start method (Linux); on
anything else — or with ``n_workers=1`` — it falls back to the sequential
engine, so callers need no platform logic.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional

from repro.core.engine import CrossLevelEngine
from repro.core.results import CampaignResult
from repro.errors import EvaluationError
from repro.sampling.base import Sampler
from repro.sampling.estimator import SsfEstimator


def _split_counts(total: int, n_workers: int) -> List[int]:
    base, extra = divmod(total, n_workers)
    return [base + (1 if i < extra else 0) for i in range(n_workers)]


def _worker(engine, sampler, n_samples, seed, index, queue) -> None:
    try:
        result = engine.evaluate(sampler, n_samples, seed=seed)
        queue.put((index, result.records))
    except Exception as exc:  # pragma: no cover - surfaced to the parent
        queue.put((index, exc))


def parallel_evaluate(
    engine: CrossLevelEngine,
    sampler: Sampler,
    n_samples: int,
    seed: int = 0,
    n_workers: Optional[int] = None,
) -> CampaignResult:
    """Run a campaign across worker processes and merge the results.

    Seeds are ``seed + worker_index``, so the result is deterministic for a
    given (seed, n_workers) — but differs from the sequential run with the
    same seed (different stream layout).
    """
    if n_samples <= 0:
        raise EvaluationError("n_samples must be positive")
    if n_workers is None:
        n_workers = min(4, multiprocessing.cpu_count())
    methods = multiprocessing.get_all_start_methods()
    if n_workers <= 1 or "fork" not in methods:
        return engine.evaluate(sampler, n_samples, seed=seed)

    ctx = multiprocessing.get_context("fork")
    queue: multiprocessing.Queue = ctx.Queue()
    counts = _split_counts(n_samples, n_workers)
    start = time.perf_counter()
    processes = []
    for index, count in enumerate(counts):
        if count == 0:
            continue
        process = ctx.Process(
            target=_worker,
            args=(engine, sampler, count, seed + index, index, queue),
        )
        process.start()
        processes.append(process)

    chunks: dict = {}
    for _ in processes:
        index, payload = queue.get()
        if isinstance(payload, Exception):
            for process in processes:
                process.terminate()
            raise EvaluationError(f"worker {index} failed: {payload}") from payload
        chunks[index] = payload
    for process in processes:
        process.join()

    estimator = SsfEstimator(record_history=True)
    records = []
    for index in sorted(chunks):
        for record in chunks[index]:
            estimator.push(record.sample, record.e)
            records.append(record)
    return CampaignResult(
        strategy=f"{sampler.name} (x{len(processes)} workers)",
        records=records,
        estimator=estimator,
        wall_time_s=time.perf_counter() - start,
    )
