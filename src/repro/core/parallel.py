"""Parallel Monte Carlo campaigns (compatibility wrapper).

SSF samples are independent, so a campaign splits perfectly across
processes.  ``parallel_evaluate`` keeps its historical signature but now
delegates to the campaign subsystem's work-stealing scheduler
(:mod:`repro.campaign.scheduler`): the campaign is cut into small chunks
that idle workers pull from a shared queue, so stragglers no longer gate
the wall time, and per-chunk seed streams are spawned from the root seed
via ``numpy.random.SeedSequence`` — the old ``seed + worker_index``
scheme collided across campaigns (campaign seed 0 / worker 1 reused
campaign seed 1 / worker 0's stream).

The parent polls workers instead of blocking on the result queue, so a
worker that dies without reporting (e.g. OOM-kill) raises
:class:`~repro.errors.EvaluationError` instead of hanging forever.

Only available on platforms with the ``fork`` start method (Linux); on
anything else — or with ``n_workers=1`` — it falls back to the sequential
engine, so callers need no platform logic.

New code that wants durability, adaptive stopping, or telemetry should
use :class:`repro.campaign.CampaignRunner` directly.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from typing import Dict, List, Optional

from repro.core.engine import CrossLevelEngine
from repro.core.results import CampaignResult, SampleRecord
from repro.errors import EvaluationError
from repro.sampling.base import Sampler
from repro.sampling.estimator import SsfEstimator


def _split_counts(total: int, n_workers: int) -> List[int]:
    """Legacy static split (kept for callers that want a fixed layout)."""
    base, extra = divmod(total, n_workers)
    return [base + (1 if i < extra else 0) for i in range(n_workers)]


def _chunk_plan(n_samples: int, n_workers: int, chunk_size: Optional[int]):
    from repro.campaign.scheduler import Chunk

    if chunk_size is None:
        # ~4 chunks per worker: fine enough to absorb stragglers, coarse
        # enough that per-chunk overhead stays negligible.
        chunk_size = max(1, math.ceil(n_samples / (4 * n_workers)))
    full, rest = divmod(n_samples, chunk_size)
    sizes = [chunk_size] * full + ([rest] if rest else [])
    return [Chunk(i, n) for i, n in enumerate(sizes)]


def parallel_evaluate(
    engine: CrossLevelEngine,
    sampler: Sampler,
    n_samples: int,
    seed: int = 0,
    n_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    poll_interval_s: float = 0.5,
) -> CampaignResult:
    """Run a campaign across worker processes and merge the results.

    Chunk ``i`` draws from the ``i``-th ``SeedSequence`` child spawned
    from ``seed``, and chunks are merged in index order — so the result
    is deterministic for a given (seed, n_samples, chunk_size) no matter
    how many workers ran it or in what order chunks finished.  It still
    differs from the sequential run with the same seed (different stream
    layout).
    """
    if n_samples <= 0:
        raise EvaluationError("n_samples must be positive")
    if n_workers is None:
        n_workers = min(4, multiprocessing.cpu_count())
    methods = multiprocessing.get_all_start_methods()
    if n_workers <= 1 or "fork" not in methods:
        return engine.evaluate(sampler, n_samples, seed=seed)

    from repro.campaign.scheduler import ChunkResult, WorkStealingScheduler
    from repro.obs.engine_metrics import metrics_from_records
    from repro.obs.metrics import MetricsRegistry

    chunks = _chunk_plan(n_samples, n_workers, chunk_size)
    scheduler = WorkStealingScheduler(
        engine,
        sampler,
        seed=seed,
        n_workers=n_workers,
        poll_interval_s=poll_interval_s,
    )
    start = time.perf_counter()
    completed: Dict[int, ChunkResult] = {}

    def collect(result: ChunkResult) -> bool:
        completed[result.index] = result
        return True

    scheduler.run(chunks, collect)

    estimator = SsfEstimator(record_history=True)
    records: List[SampleRecord] = []
    merged = MetricsRegistry()
    for index in sorted(completed):
        chunk = completed[index]
        for record in chunk.records:
            estimator.push(record.sample, record.e)
            records.append(record)
        # Merge per-chunk metrics in index order so the merged snapshot
        # is deterministic regardless of worker count (rebuilt from the
        # records when the engine ran unobserved).
        snapshot = chunk.metrics
        if snapshot is None:
            snapshot = metrics_from_records(chunk.records).snapshot()
        merged.merge_snapshot(snapshot)
    return CampaignResult(
        strategy=f"{sampler.name} (x{scheduler.n_workers_used} workers)",
        records=records,
        estimator=estimator,
        wall_time_s=time.perf_counter() - start,
        metrics=merged.snapshot(),
    )
