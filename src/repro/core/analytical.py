"""Analytical outcome evaluation for memory-type faults (Section 5.2).

When every latched error sits in a *memory-type* register, the attack
outcome is "not determined by the timing distance ... but mainly by the
functionality of the memory-type registers" (paper, Observation 3).  For
the MPU that functionality is the pure decision function
:func:`repro.soc.mpu.mpu_decision` over the (now corrupted) configuration,
so the outcome follows from the golden run's request trace without any
re-simulation:

* a fault that sets the sticky violation flag means the attack is detected
  -> ``e = 0``;
* otherwise, replay every request issued at or after the injection cycle
  against the corrupted configuration: the attack succeeds iff the
  benchmark's illegal access is now *granted* while no previously-granted
  request turns into a violation (which would fire the handler and flag
  detection).

The equivalence of this evaluation with full RTL re-simulation for
memory-type faults is asserted by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.soc.mpu import BASELINE_VARIANT, MpuSemantics, MpuVariant
from repro.soc.memmap import DEFAULT_MEMORY_MAP, MemoryMap
from repro.soc.programs import BenchmarkProgram


@dataclass(frozen=True)
class _Request:
    issue_cycle: int
    addr: int
    write: bool
    priv: bool


class AnalyticalEvaluator:
    """Replays the golden request trace against a corrupted MPU state.

    Variant-aware: the decision function is the same
    :class:`~repro.soc.mpu.MpuSemantics` the behavioural model uses, so a
    parity-protected MPU correctly turns an unmatched configuration flip
    into a fail-secure violation (-> attack detected, ``e = 0``).
    """

    def __init__(
        self,
        benchmark: BenchmarkProgram,
        mpu_trace: Sequence,
        n_regions: int,
        memmap: Optional[MemoryMap] = None,
        variant: MpuVariant = BASELINE_VARIANT,
    ):
        self.benchmark = benchmark
        self.n_regions = n_regions
        self.semantics = MpuSemantics(memmap or DEFAULT_MEMORY_MAP, variant)
        if not mpu_trace:
            raise EvaluationError("analytical evaluator needs the golden MPU trace")
        self._trace = list(mpu_trace)
        self._requests: List[_Request] = [
            _Request(
                issue_cycle=entry.cycle,
                addr=entry.inputs["in_addr"],
                write=bool(entry.inputs["in_write"]),
                priv=bool(entry.inputs["in_priv"]),
            )
            for entry in self._trace
            if entry.inputs["in_valid"]
        ]

    # ------------------------------------------------------------------
    def _states_at(
        self, cycle: int, flips: FrozenSet[Tuple[str, int]]
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(golden, faulty) register states effective for checks after
        ``cycle``."""
        idx = min(max(cycle, 0), len(self._trace) - 1)
        golden = dict(self._trace[idx].state)
        faulty = dict(golden)
        for reg, bit in flips:
            if reg in faulty:
                faulty[reg] = faulty[reg] ^ (1 << bit)
        return golden, faulty

    def _decision_state_differs(
        self, golden: Dict[str, int], faulty: Dict[str, int]
    ) -> bool:
        """Did any configuration (or parity) register change?"""
        for name in golden:
            if name.startswith("cfg_") and golden[name] != faulty[name]:
                return True
        return False

    def _is_illegal_target(self, request: _Request) -> bool:
        return any(
            request.addr == ia.addr
            and request.write == ia.write
            and request.priv == ia.priv
            for ia in self.benchmark.illegal_accesses
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        flipped_bits: FrozenSet[Tuple[str, int]],
        injection_cycle: int,
    ) -> int:
        """The success indicator ``e`` for a memory-type-only fault."""
        # A fault that raises the sticky flag is itself a detection.
        if ("sticky_flag", 0) in flipped_bits:
            return 0

        golden, faulty = self._states_at(injection_cycle + 1, flipped_bits)
        if not self._decision_state_differs(golden, faulty):
            # No configuration register was touched (e.g. viol_addr or idle
            # DMA registers): decisions are unchanged, the illegal access
            # stays blocked.
            return 0

        violates = self.semantics.violates
        target_seen = False
        target_granted = True
        for request in self._requests:
            affected = request.issue_cycle >= injection_cycle
            state = faulty if affected else golden
            viol = violates(state, request.addr, request.write, request.priv)
            if self._is_illegal_target(request):
                target_seen = True
                if viol or not affected:
                    target_granted = False
            else:
                golden_viol = violates(
                    golden, request.addr, request.write, request.priv
                )
                if viol and not golden_viol:
                    # A benign request now violates: handler fires, counter
                    # increments -> detected.
                    return 0
        return 1 if (target_seen and target_granted) else 0
