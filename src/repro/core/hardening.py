"""SSF attribution and the selective-hardening study (Section 6).

From a finished campaign, :func:`attribute_ssf` splits the SSF estimate
over the register bits whose corruption drove each successful attack.  The
paper's observation — a tiny fraction of registers carries almost all of
the SSF — then motivates :class:`HardeningStudy`: replace only those flops
with resilient designs ([19, 20]: ~10x better resilience at ~3x cell area)
and evaluate the security gain against the area cost.

The SSF reduction model follows the paper's own arithmetic: a contribution
whose *necessary* faulty bits are hardened is attenuated by the resilience
factor.  Necessity is established with an **outcome oracle** — the engine's
analytical evaluator (memory-type faults) or an RTL probe — that re-judges
a record with a subset of its bit flips removed: radiation spots flip many
incidental neighbours, and crediting those would dilute the paper's
"3% of registers carry >95% of SSF" observation into noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.results import CampaignResult, SampleRecord
from repro.errors import EvaluationError
from repro.netlist.graph import Netlist

RegisterBit = Tuple[str, int]

# Re-evaluates a record with an altered flip set: (record, flips) -> e.
OutcomeOracle = Callable[[SampleRecord, FrozenSet[RegisterBit]], int]


def necessary_bits(
    record: SampleRecord, oracle: OutcomeOracle
) -> FrozenSet[RegisterBit]:
    """The bits actually responsible for this successful attack.

    First choice: bits whose individual removal defeats the attack
    (*necessary* bits).  When none exists — e.g. two independently
    sufficient flips landed in one radiation spot — the bits that succeed
    *alone* are credited instead.  Only if neither analysis identifies
    culprits (a genuinely conjunctive multi-bit interaction) is the whole
    flip set credited.
    """
    flips = record.flipped_bits
    necessary = frozenset(
        bit for bit in flips if oracle(record, flips - {bit}) == 0
    )
    if necessary:
        return necessary
    sufficient = frozenset(
        bit for bit in flips if oracle(record, frozenset({bit})) == 1
    )
    return sufficient if sufficient else flips


def attribute_ssf(
    result: CampaignResult, oracle: Optional[OutcomeOracle] = None
) -> Dict[RegisterBit, float]:
    """Per-register-bit share of the SSF estimate.

    Every successful record contributes ``w·e/N`` to SSF.  With an oracle,
    the contribution is credited only to the record's *necessary* bits;
    without one, to every flipped bit (each is jointly responsible).
    """
    n = max(1, result.n_samples)
    shares: Dict[RegisterBit, float] = {}
    for record in result.records:
        if not record.e:
            continue
        contribution = record.contribution / n
        bits = (
            necessary_bits(record, oracle) if oracle else record.flipped_bits
        )
        for bit in bits:
            shares[bit] = shares.get(bit, 0.0) + contribution
    return shares


def critical_bits(
    shares: Dict[RegisterBit, float], coverage: float = 0.95
) -> List[RegisterBit]:
    """Smallest prefix of bits (by share) that covers ``coverage`` of the
    attributable SSF."""
    if not 0 < coverage <= 1:
        raise EvaluationError("coverage must be in (0, 1]")
    total = sum(shares.values())
    if total <= 0:
        return []
    ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
    picked: List[RegisterBit] = []
    acc = 0.0
    for bit, share in ranked:
        picked.append(bit)
        acc += share
        if acc >= coverage * total:
            break
    return picked


@dataclass
class HardeningOutcome:
    """Result of one hardening what-if."""

    hardened_bits: List[RegisterBit]
    ssf_before: float
    ssf_after: float
    area_before_um2: float
    area_after_um2: float
    covered_share: float

    @property
    def ssf_improvement(self) -> float:
        if self.ssf_after <= 0:
            return float("inf")
        return self.ssf_before / self.ssf_after

    @property
    def area_overhead(self) -> float:
        if self.area_before_um2 <= 0:
            return 0.0
        return self.area_after_um2 / self.area_before_um2 - 1.0

    def summary(self) -> Dict[str, object]:
        return {
            "n_hardened_bits": len(self.hardened_bits),
            "ssf_before": self.ssf_before,
            "ssf_after": self.ssf_after,
            "ssf_improvement_x": round(self.ssf_improvement, 2),
            "area_overhead_pct": round(100 * self.area_overhead, 3),
            "covered_ssf_share_pct": round(100 * self.covered_share, 2),
        }


class HardeningStudy:
    """Selective hardening of the most SSF-critical register bits."""

    def __init__(
        self,
        netlist: Netlist,
        result: CampaignResult,
        resilience_factor: float = 10.0,
        area_factor: float = 3.0,
        oracle: Optional[OutcomeOracle] = None,
    ):
        if resilience_factor <= 1:
            raise EvaluationError("resilience factor must exceed 1")
        if area_factor < 1:
            raise EvaluationError("area factor must be at least 1")
        self.netlist = netlist
        self.result = result
        self.resilience_factor = resilience_factor
        self.area_factor = area_factor
        self.oracle = oracle
        self.shares = attribute_ssf(result, oracle)

    def total_register_bits(self) -> int:
        return sum(1 for node in self.netlist.nodes if node.is_dff)

    def harden(self, bits: Sequence[RegisterBit]) -> HardeningOutcome:
        """Evaluate hardening exactly the given bits."""
        hardened: Set[RegisterBit] = set(bits)
        n = max(1, self.result.n_samples)
        ssf_before = self.result.ssf
        ssf_after = 0.0
        covered = 0.0
        for record in self.result.records:
            if not record.e:
                continue
            contribution = record.contribution / n
            hit = record.flipped_bits & hardened
            if not hit:
                ssf_after += contribution
                continue
            # Each hardened flop only flips with probability 1/R.  The
            # attack survives either with all its flips (prob (1/R)^k) or
            # by succeeding without the hardened flips at all (oracle).
            survive_all = self.resilience_factor ** (-len(hit))
            if record.flipped_bits <= hardened:
                residual = 0.0
            elif self.oracle is not None:
                residual = float(
                    self.oracle(record, record.flipped_bits - hit)
                )
            else:
                residual = 1.0  # conservative without an oracle
            p_success = survive_all + (1.0 - survive_all) * residual
            ssf_after += contribution * p_success
            if p_success < 1.0:
                covered += contribution
        area_before = self.netlist.area()
        area_after = self.netlist.area(
            hardened={bit: self.area_factor for bit in hardened}
        )
        covered_share = covered / ssf_before if ssf_before > 0 else 0.0
        return HardeningOutcome(
            hardened_bits=list(bits),
            ssf_before=ssf_before,
            ssf_after=ssf_after,
            area_before_um2=area_before,
            area_after_um2=area_after,
            covered_share=covered_share,
        )

    def harden_for_coverage(self, coverage: float = 0.95) -> HardeningOutcome:
        """Harden the smallest bit set covering the given SSF share."""
        return self.harden(critical_bits(self.shares, coverage))

    def pareto(self, steps: Sequence[float] = (0.5, 0.8, 0.9, 0.95, 0.99)) -> List[HardeningOutcome]:
        """Hardening outcomes across a sweep of coverage targets."""
        return [self.harden_for_coverage(c) for c in steps]
