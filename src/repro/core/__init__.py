"""The cross-level Monte Carlo SSF evaluation engine (Section 5).

This is the paper's primary contribution, assembled from the substrates:

* :mod:`repro.core.context` — :func:`build_context` wires a benchmark, the
  elaborated MPU netlist, placement, the golden run with checkpoints, the
  target cycle, and (optionally) the full pre-characterization into one
  :class:`EvaluationContext`.
* :mod:`repro.core.engine` — :class:`CrossLevelEngine` implements the
  Fig. 5 flow: two-step sampling, restart from the nearest golden
  checkpoint, gate-level fault injection at the injection cycle, register
  classification, analytical evaluation or RTL resume, outcome comparison.
* :mod:`repro.core.analytical` — the simulation-free evaluator for faults
  confined to memory-type registers.
* :mod:`repro.core.hardening` — per-register SSF attribution and the
  selective-hardening study (Section 6's 6.5x / <2% area result).
"""

from repro.core.context import EvaluationContext, build_context
from repro.core.engine import CrossLevelEngine, EngineConfig
from repro.core.analytical import AnalyticalEvaluator
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.core.hardening import HardeningStudy, attribute_ssf
from repro.core.exhaustive import ExhaustiveResult, enumerate_single_bit_faults
from repro.core.parallel import parallel_evaluate

__all__ = [
    "EvaluationContext",
    "build_context",
    "CrossLevelEngine",
    "EngineConfig",
    "AnalyticalEvaluator",
    "CampaignResult",
    "OutcomeCategory",
    "SampleRecord",
    "HardeningStudy",
    "attribute_ssf",
    "ExhaustiveResult",
    "enumerate_single_bit_faults",
    "parallel_evaluate",
]
