"""The cross-level Monte Carlo engine (Fig. 5 of the paper).

Per sample:

1. draw ``(t, p)`` from the active sampling strategy (with its importance
   weight);
2. restart the RTL simulation from the nearest golden checkpoint and run to
   the injection cycle ``Te = Tt - t``;
3. switch to gate level for the injection cycle: generate the technique's
   voltage transients / direct flops upsets, propagate, and collect the
   register bits latched wrong;
4. if nothing latched — masked, done.  If only memory-type registers are
   hit — analytical evaluation.  Otherwise write the bit errors back into
   the RTL state and resume simulation to the end of the benchmark;
5. the success indicator compares the final state against the golden
   outcome (malicious operation committed *and* undetected).

Observability: with ``observe=True`` (the default) each ``evaluate`` call
records per-stage wall times, outcome counters, and the masking funnel
into a fresh :class:`~repro.obs.metrics.MetricsRegistry`, snapshotted onto
the returned :class:`CampaignResult` — the unit the campaign scheduler
serializes per chunk and merges deterministically.  A recording
:class:`~repro.obs.tracing.Tracer` additionally captures one span per
stage per sample.  With ``observe=False`` and the default
:data:`~repro.obs.tracing.NULL_TRACER`, the per-sample flow runs
uninstrumented (no clocks, no registry) — the baseline the
``benchmarks/test_obs_overhead.py`` guard compares against.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec
from repro.core.analytical import AnalyticalEvaluator
from repro.core.context import EvaluationContext
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.errors import EvaluationError
from repro.gatesim.transient import TransientSimulator
from repro.obs.engine_metrics import (
    observe_baseline_store,
    observe_batch,
    observe_batch_fallback,
    observe_batch_timing,
    observe_batched_sample,
    observe_record,
    observe_timing,
)
from repro.obs.logging import warn_once
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_CLOCK, NULL_TRACER, StageClock
from repro.rtl.checkpoint import Checkpoint
from repro.sampling.base import Sampler
from repro.sampling.estimator import SsfEstimator
from repro.utils.rng import SeedLike, as_generator, sample_seed_sequence


#: Evaluation backends an engine variant string may select.
ENGINE_VARIANTS = ("exact", "surrogate")


@dataclass
class EngineConfig:
    """Engine behaviour knobs."""

    # Which evaluation backend to build: "exact" is the cross-level
    # gate-accurate engine, "surrogate" the calibrated RTL-level SEU
    # surrogate (repro.surrogate).  Construction-time selection happens
    # in CampaignSpec.build_runtime / the CLI; the engine itself only
    # validates the name so a typo fails with the valid variants listed
    # instead of a generic downstream error.
    engine: str = "exact"
    # Use the analytical evaluator when all faulty bits are memory-type.
    analytical_memory_eval: bool = True
    # Stop early once the estimator converges (see SsfEstimator.converged).
    #
    # Precedence: this is an *engine-level* rule that only governs direct
    # ``engine.evaluate`` calls.  Under campaign orchestration
    # (repro.campaign), the campaign's stopping rule — which sees the
    # merged cross-chunk estimator — takes precedence; an engine-level
    # stop merely truncates the individual chunk it fires in, which
    # changes the chunk plan's sample counts and breaks the
    # worker-count-independence guarantee.  The campaign runner emits a
    # one-time warning (via the repro.obs logger) when both are active;
    # prefer ``StoppingConfig(mode="risk" | "ci")`` for campaigns.
    stop_on_convergence: bool = False
    convergence_rel_tol: float = 0.05
    min_samples: int = 200
    # Evaluate campaigns through the batched kernel (run_batch): samples
    # sharing an injection cycle are packed into one gate-level call over
    # a shared cycle baseline.  Engages for every seed kind (SeedSequence,
    # int, Generator, None — per-sample streams or the legacy shared
    # stream, consumed in the exact scalar order) and any impact_cycles
    # (samples stay batched while the RTL trajectory is still golden and
    # diverge to a scalar continuation on their first latched flip);
    # bit-identical to the scalar path either way.  ``--no-batch`` /
    # CampaignSpec(batch=False) is the escape hatch; an engine-level
    # convergence stop also falls back to the scalar loop (early exit
    # would waste the pre-drawn batch), surfaced via the
    # engine_batch_fallback_total counter.
    batch: bool = True
    # Max (injection cycle -> baseline/checkpoint) entries kept per engine.
    baseline_cache_size: int = 128
    # Max memoized classification outcomes (see _finish_diverged): the
    # post-divergence verdict is a pure function of (restored cycle,
    # flipped bits), so batches with few distinct flip patterns pay one
    # RTL resume / analytical call per pattern instead of per sample.
    outcome_cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_VARIANTS:
            raise EvaluationError(
                f"unknown engine variant {self.engine!r}: valid variants "
                f"are {', '.join(ENGINE_VARIANTS)}"
            )


class CrossLevelEngine:
    """Runs fault-attack campaigns against one evaluation context."""

    def __init__(
        self,
        context: EvaluationContext,
        spec: AttackSpec,
        config: Optional[EngineConfig] = None,
        tracer=None,
        observe: bool = True,
        baseline_store=None,
    ):
        self.context = context
        self.spec = spec
        self.config = config or EngineConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.observe = observe
        self.transient_sim = TransientSimulator(context.netlist, context.timing)
        # Per-(injection cycle) baseline cache for the batched kernel: the
        # post-step RTL snapshot, the recorded MPU trace entry, and the
        # shared gate-level CycleBaseline.  LRU-bounded; persists across
        # evaluate calls (one engine lives per scheduler worker, so the
        # cache also spans chunks).
        self._cycle_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        # Optional persistent tier behind the LRU (duck-typed; see
        # repro.service.artifacts.CycleBaselineStore): consulted on an LRU
        # miss before recomputing, written through on every compute, so
        # repeat campaigns on the same (design, workload) skip golden
        # simulation even across processes.
        self.baseline_store = baseline_store
        self._store_reported = (0, 0, 0, 0)
        # Memoized post-divergence outcomes, keyed on
        # (restored cycle, flipped bits, impact_cycles); LRU-bounded.
        self._outcome_cache: "OrderedDict[tuple, int]" = OrderedDict()
        self._analytical: Optional[AnalyticalEvaluator] = None
        if context.characterization is not None:
            self._analytical = AnalyticalEvaluator(
                context.benchmark,
                context.mpu_trace,
                context.memmap.n_mpu_regions,
                memmap=context.memmap,
                variant=context.mpu_variant,
            )

    # ------------------------------------------------------------------
    # single-sample flow
    # ------------------------------------------------------------------
    def run_sample(
        self, sample: AttackSample, rng: np.random.Generator, clock=NULL_CLOCK
    ) -> SampleRecord:
        """Evaluate one attack sample.

        ``clock`` marks stage boundaries (see
        :data:`repro.obs.engine_metrics.STAGES`); the default null clock
        keeps the uninstrumented path free of timing calls.
        """
        context = self.context
        injection_cycle = context.target_cycle - sample.t
        # Negative t (injection after the target) can overrun the run end;
        # either direction out of the simulated window is a guaranteed miss.
        if injection_cycle < 0 or injection_cycle >= context.n_cycles:
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.OUT_OF_RANGE,
                flipped_bits=frozenset(),
                injection_cycle=injection_cycle,
            )

        # Steps 3+4: RTL to the injection cycle, then gate-level simulation
        # of each impacted cycle, with latched errors written back into the
        # RTL state as they occur (multi-cycle impact per Section 3.2).
        simulator = context.simulator
        soc = context.soc
        simulator.restart_from(context.golden, injection_cycle)
        clock.lap("restart")
        impact_cycles = getattr(self.spec.technique, "impact_cycles", 1)

        flipped: frozenset = frozenset()
        n_injected = n_latched = 0
        for _ in range(impact_cycles):
            if simulator.cycle >= context.n_cycles:
                break
            soc.record_mpu_trace = True
            soc.mpu_trace = []
            simulator.step()
            soc.record_mpu_trace = False
            entry = soc.mpu_trace[-1]
            clock.lap("rtl_step")

            injection = self.spec.build_injection(context.placement, sample, rng)
            result = self.transient_sim.simulate_cycle(
                entry.inputs, entry.state, injection
            )
            n_injected += result.n_pulses_injected
            n_latched += result.n_pulses_latched
            clock.lap("transient")
            if result.flipped_bits:
                masks: Dict[str, int] = {}
                for register, bit in result.flipped_bits:
                    masks[register] = masks.get(register, 0) | (1 << bit)
                simulator.inject_bit_errors(masks)
                # A bit flipped twice is back to fault-free: symmetric diff.
                flipped = flipped ^ frozenset(result.flipped_bits)
                clock.lap("writeback")

        if not flipped:
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.MASKED,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
            )

        memory_only = self._all_memory_type(flipped)
        clock.lap("classify")
        category = (
            OutcomeCategory.MEMORY_ONLY if memory_only else OutcomeCategory.NEEDS_RTL
        )

        if (
            memory_only
            and impact_cycles == 1
            and self.config.analytical_memory_eval
            and self._analytical is not None
        ):
            e = self._analytical.evaluate(flipped, injection_cycle)
            clock.lap("analytical")
            return SampleRecord(
                sample=sample,
                e=e,
                category=category,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
                analytical=True,
            )

        # Step 5: the errors are already in the RTL state; resume to the end.
        simulator.run_to(context.n_cycles)
        clock.lap("rtl_resume")
        e = 1 if context.benchmark.attack_succeeded(soc) else 0
        clock.lap("compare")
        return SampleRecord(
            sample=sample,
            e=e,
            category=category,
            flipped_bits=flipped,
            injection_cycle=injection_cycle,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
        )

    def _all_memory_type(self, flipped: FrozenSet[Tuple[str, int]]) -> bool:
        characterization = self.context.characterization
        if characterization is None:
            return False
        return all(characterization.is_memory_type(reg, bit) for reg, bit in flipped)

    # ------------------------------------------------------------------
    # batched flow
    # ------------------------------------------------------------------
    @property
    def baseline_cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the per-cycle baseline cache so far."""
        return self._cache_hits, self._cache_misses

    def run_batch(
        self,
        samples: Sequence[AttackSample],
        rngs: Optional[Sequence[np.random.Generator]] = None,
        registry: Optional[MetricsRegistry] = None,
        clock=NULL_CLOCK,
        injections: Optional[Sequence[List]] = None,
    ) -> List[SampleRecord]:
        """Evaluate a batch of samples, one record per sample, in order.

        Samples sharing an injection cycle are packed into gate-level
        :meth:`~repro.gatesim.transient.TransientSimulator.
        simulate_cycle_batch` calls over the cached cycle baselines, so
        the RTL restart/step and the golden logic evaluation happen once
        per distinct cycle instead of once per sample.  Multi-cycle
        techniques stay batched while every sample's RTL trajectory is
        still golden — each impact cycle of a group shares that cycle's
        baseline — and a sample whose first flips latch at step ``s``
        diverges to a scalar continuation over its remaining cycles
        (per-sample writeback makes the state diverge from there, so
        there is nothing left to share).

        ``rngs`` must hold one generator per sample (each consumed
        exactly as the scalar path would consume it: all of a sample's
        per-cycle injections are drawn up front, which matches the scalar
        interleaving because the simulation stages consume no RNG);
        omitted, every sample gets a fresh independent stream.
        Alternatively, ``injections`` supplies the pre-drawn per-cycle
        injection list of every sample (empty for out-of-range samples)
        and no RNG is touched.  Records are bit-identical to
        ``run_sample`` on each sample.
        """
        context = self.context
        impact_cycles = getattr(self.spec.technique, "impact_cycles", 1)
        n = len(samples)
        records: List[Optional[SampleRecord]] = [None] * n
        cycles: List[int] = []
        for i, sample in enumerate(samples):
            injection_cycle = context.target_cycle - sample.t
            cycles.append(injection_cycle)
            if injection_cycle < 0 or injection_cycle >= context.n_cycles:
                records[i] = SampleRecord(
                    sample=sample,
                    e=0,
                    category=OutcomeCategory.OUT_OF_RANGE,
                    flipped_bits=frozenset(),
                    injection_cycle=injection_cycle,
                )
        if injections is None:
            if rngs is None:
                rngs = [as_generator(None) for _ in samples]
            if len(rngs) != n:
                raise EvaluationError("run_batch needs one rng per sample")
            injections = [
                []
                if records[i] is not None
                else self._draw_injections(samples[i], cycles[i], rngs[i])
                for i in range(n)
            ]
        elif len(injections) != n:
            raise EvaluationError("run_batch needs one injection list per sample")

        hits_before, misses_before = self._cache_hits, self._cache_misses
        groups: "OrderedDict[int, List[int]]" = OrderedDict()
        for i in range(n):
            if records[i] is None:
                groups.setdefault(cycles[i], []).append(i)

        batch_sizes: List[int] = []
        for injection_cycle, indices in groups.items():
            n_exec = min(impact_cycles, context.n_cycles - injection_cycle)
            active = list(indices)
            n_injected = dict.fromkeys(indices, 0)
            n_latched = dict.fromkeys(indices, 0)
            for step in range(n_exec):
                entry, post_step, baseline = self._cycle_state(
                    injection_cycle + step, registry
                )
                clock.lap("restart")
                results = self.transient_sim.simulate_cycle_batch(
                    entry.inputs,
                    entry.state,
                    [injections[i][step] for i in active],
                    baseline=baseline,
                )
                batch_sizes.append(len(active))
                clock.lap("transient")
                still_golden: List[int] = []
                for i, result in zip(active, results):
                    n_injected[i] += result.n_pulses_injected
                    n_latched[i] += result.n_pulses_latched
                    if not result.flipped_bits:
                        still_golden.append(i)
                        continue
                    start = time.perf_counter() if registry is not None else 0.0
                    records[i] = self._finish_diverged(
                        samples[i],
                        cycles[i],
                        frozenset(result.flipped_bits),
                        post_step,
                        injections[i][step + 1 :],
                        n_injected[i],
                        n_latched[i],
                        impact_cycles,
                        clock,
                    )
                    if registry is not None:
                        observe_batched_sample(
                            registry, records[i], time.perf_counter() - start
                        )
                active = still_golden
                if not active:
                    break
            for i in active:
                records[i] = SampleRecord(
                    sample=samples[i],
                    e=0,
                    category=OutcomeCategory.MASKED,
                    flipped_bits=frozenset(),
                    injection_cycle=cycles[i],
                    n_pulses_injected=n_injected[i],
                    n_pulses_latched=n_latched[i],
                )
        if registry is not None:
            observe_batch(
                registry,
                batch_sizes,
                self._cache_hits - hits_before,
                self._cache_misses - misses_before,
            )
            self._report_store_traffic(registry)
        return records  # type: ignore[return-value]

    def _draw_injections(
        self, sample: AttackSample, injection_cycle: int, rng
    ) -> List:
        """Pre-draw one sample's per-impact-cycle injections, in order.

        Consumes the sample's stream exactly as the scalar loop would:
        ``run_sample`` interleaves (RTL step, build_injection, simulate)
        per cycle, but only ``build_injection`` touches the RNG, so
        drawing all of a sample's injections back-to-back is the same
        stream consumption.
        """
        n_exec = min(
            getattr(self.spec.technique, "impact_cycles", 1),
            self.context.n_cycles - injection_cycle,
        )
        return [
            self.spec.build_injection(self.context.placement, sample, rng)
            for _ in range(n_exec)
        ]

    def _cycle_state(
        self, injection_cycle: int, registry: Optional[MetricsRegistry]
    ):
        """The shared per-cycle state: trace entry, snapshot, baseline.

        An LRU miss consults the persistent baseline store (when
        configured) before recomputing: a store hit means the RTL
        restart/step and golden gate evaluation of this cycle were paid
        by an earlier campaign, possibly in another process.  A full
        miss restarts the RTL from the nearest golden checkpoint, steps
        through the injection cycle recording the MPU trace, snapshots
        the post-step state (so faulty samples can resume without
        repeating the restart), evaluates the golden gate-level
        baseline — and writes the result through to the store.
        """
        cached = self._cycle_cache.get(injection_cycle)
        if cached is not None:
            self._cycle_cache.move_to_end(injection_cycle)
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        if self.baseline_store is not None:
            state = self.baseline_store.load(injection_cycle)
            if state is not None:
                self._insert_cycle_state(injection_cycle, state)
                return state
        context = self.context
        simulator = context.simulator
        soc = context.soc
        simulator.restart_from(context.golden, injection_cycle)
        soc.record_mpu_trace = True
        soc.mpu_trace = []
        simulator.step()
        soc.record_mpu_trace = False
        entry = soc.mpu_trace[-1]
        post_step = Checkpoint.capture(soc, simulator.cycle)
        baseline = self.transient_sim.make_baseline(entry.inputs, entry.state)
        state = (entry, post_step, baseline)
        self._insert_cycle_state(injection_cycle, state)
        if self.baseline_store is not None:
            self.baseline_store.save(injection_cycle, *state)
        return state

    def _insert_cycle_state(self, injection_cycle: int, state: tuple) -> None:
        self._cycle_cache[injection_cycle] = state
        while len(self._cycle_cache) > self.config.baseline_cache_size:
            self._cycle_cache.popitem(last=False)

    @property
    def baseline_store_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the persistent baseline store so far."""
        if self.baseline_store is None:
            return (0, 0)
        return (self.baseline_store.hits, self.baseline_store.misses)

    def warm_baseline_cache(self) -> int:
        """Pre-load persisted cycle baselines into the LRU; returns count.

        Called at campaign start (``CampaignSpec.build_runtime``) so the
        first chunk already runs against warm state; each loaded cycle
        counts as a store hit.  Cycles absent from the store are left to
        the lazy path — probing them is not a demand miss.
        """
        store = self.baseline_store
        if store is None:
            return 0
        loaded = 0
        for cycle in range(self.context.n_cycles):
            if len(self._cycle_cache) >= self.config.baseline_cache_size:
                break
            if cycle in self._cycle_cache:
                continue
            state = store.load(cycle, probe=True)
            if state is not None:
                self._insert_cycle_state(cycle, state)
                loaded += 1
        return loaded

    def _report_store_traffic(self, registry: MetricsRegistry) -> None:
        """Forward baseline-store counter deltas into ``registry``."""
        store = self.baseline_store
        if store is None:
            return
        current = (store.hits, store.misses, store.rejected, store.writes)
        delta = tuple(c - p for c, p in zip(current, self._store_reported))
        self._store_reported = current
        observe_baseline_store(registry, *delta)

    def _write_back(self, flipped: FrozenSet[Tuple[str, int]]) -> None:
        """Inject latched-wrong bits into the live RTL state."""
        masks: Dict[str, int] = {}
        for register, bit in flipped:
            masks[register] = masks.get(register, 0) | (1 << bit)
        self.context.simulator.inject_bit_errors(masks)

    def _finish_diverged(
        self,
        sample: AttackSample,
        injection_cycle: int,
        flipped: FrozenSet[Tuple[str, int]],
        post_step: Checkpoint,
        remaining: List,
        n_injected: int,
        n_latched: int,
        impact_cycles: int,
        clock=NULL_CLOCK,
    ) -> SampleRecord:
        """Scalar continuation of one batched sample after its first flips.

        ``remaining`` holds the sample's pre-drawn injections for impact
        cycles after the one that flipped.  With none left, the verdict
        is a pure function of (restored cycle, flipped bits) — the RTL
        resume starts from a canonical checkpoint and the analytical
        evaluator is deterministic — so it is memoized across the batch
        (and the engine's lifetime) in ``_outcome_cache``.  With cycles
        left, the sample replays them exactly as ``run_sample`` would:
        per-cycle RTL step, gate simulation, and writeback on a now
        per-sample faulty trajectory (including flips cancelling back to
        a masked outcome via the symmetric difference).
        """
        context = self.context
        simulator = context.simulator
        soc = context.soc
        if remaining:
            post_step.restore(soc)
            simulator.cycle = post_step.cycle
            self._write_back(flipped)
            clock.lap("writeback")
            for injection in remaining:
                if simulator.cycle >= context.n_cycles:
                    break
                soc.record_mpu_trace = True
                soc.mpu_trace = []
                simulator.step()
                soc.record_mpu_trace = False
                entry = soc.mpu_trace[-1]
                clock.lap("rtl_step")
                result = self.transient_sim.simulate_cycle(
                    entry.inputs, entry.state, injection
                )
                n_injected += result.n_pulses_injected
                n_latched += result.n_pulses_latched
                clock.lap("transient")
                if result.flipped_bits:
                    self._write_back(frozenset(result.flipped_bits))
                    flipped = flipped ^ frozenset(result.flipped_bits)
                    clock.lap("writeback")
            if not flipped:
                return SampleRecord(
                    sample=sample,
                    e=0,
                    category=OutcomeCategory.MASKED,
                    flipped_bits=flipped,
                    injection_cycle=injection_cycle,
                    n_pulses_injected=n_injected,
                    n_pulses_latched=n_latched,
                )
            memory_only = self._all_memory_type(flipped)
            clock.lap("classify")
            category = (
                OutcomeCategory.MEMORY_ONLY
                if memory_only
                else OutcomeCategory.NEEDS_RTL
            )
            # impact_cycles > 1 here, so the analytical gate is closed
            # (run_sample requires impact_cycles == 1); resume in place.
            simulator.run_to(context.n_cycles)
            clock.lap("rtl_resume")
            e = 1 if context.benchmark.attack_succeeded(soc) else 0
            clock.lap("compare")
            return SampleRecord(
                sample=sample,
                e=e,
                category=category,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
            )

        memory_only = self._all_memory_type(flipped)
        clock.lap("classify")
        category = (
            OutcomeCategory.MEMORY_ONLY if memory_only else OutcomeCategory.NEEDS_RTL
        )
        analytical = (
            memory_only
            and impact_cycles == 1
            and self.config.analytical_memory_eval
            and self._analytical is not None
        )
        key = (post_step.cycle, flipped, impact_cycles)
        e = self._outcome_cache.get(key)
        if e is not None:
            self._outcome_cache.move_to_end(key)
        else:
            if analytical:
                e = self._analytical.evaluate(flipped, injection_cycle)
                clock.lap("analytical")
            else:
                # Resume from the shared post-step snapshot: equivalent to
                # the scalar restart+step (the snapshot is complete).
                post_step.restore(soc)
                simulator.cycle = post_step.cycle
                self._write_back(flipped)
                clock.lap("writeback")
                simulator.run_to(context.n_cycles)
                clock.lap("rtl_resume")
                e = 1 if context.benchmark.attack_succeeded(soc) else 0
                clock.lap("compare")
            self._outcome_cache[key] = e
            while len(self._outcome_cache) > self.config.outcome_cache_size:
                self._outcome_cache.popitem(last=False)
        return SampleRecord(
            sample=sample,
            e=e,
            category=category,
            flipped_bits=flipped,
            injection_cycle=injection_cycle,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
            analytical=analytical,
        )

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    def evaluate(
        self,
        sampler: Sampler,
        n_samples: int,
        seed: SeedLike = None,
        progress: Optional[Callable[[int, SsfEstimator], None]] = None,
    ) -> CampaignResult:
        """Run a Monte Carlo campaign with the given strategy.

        Seed policy: a ``SeedSequence`` seed (the campaign path — the
        scheduler passes each chunk's spawned child) derives one
        *independent* child stream per sample via
        :func:`~repro.utils.rng.sample_seed_sequence`, so the draw and the
        injection of sample ``i`` never share RNG state with sample
        ``i±1`` and any sample is replayable in isolation.  An int /
        ``Generator`` / ``None`` seed keeps the legacy single shared
        stream (stable for callers that pin integer seeds in tests).

        Both seed kinds run through the batched kernel (bit-identical to
        the scalar loop either way); ``batch=False`` and engine-level
        ``stop_on_convergence`` fall back to the scalar loop, counted in
        ``engine_batch_fallback_total`` and warned about once.
        """
        if n_samples <= 0:
            raise EvaluationError("n_samples must be positive")
        reason = self._batch_fallback_reason()
        if reason is None:
            return self._evaluate_batched(sampler, n_samples, seed, progress)
        self._warn_batch_fallback(reason, seed)
        per_sample_base = seed if isinstance(seed, np.random.SeedSequence) else None
        rng = None if per_sample_base is not None else as_generator(seed)
        estimator = SsfEstimator(record_history=True)
        records = []
        tracer = self.tracer
        registry = MetricsRegistry() if self.observe else None
        if registry is not None:
            observe_batch_fallback(registry, reason)
        observing = registry is not None or tracer.enabled
        start = time.perf_counter()
        for i in range(n_samples):
            if per_sample_base is not None:
                rng = as_generator(sample_seed_sequence(per_sample_base, i))
            if observing:
                clock = StageClock()
                sample = sampler.sample(rng)
                clock.lap("draw")
                record = self.run_sample(sample, rng, clock=clock)
                if registry is not None:
                    observe_record(registry, record)
                    observe_timing(
                        registry,
                        record,
                        clock.stage_totals(),
                        clock.total_seconds(),
                    )
                if tracer.enabled:
                    tracer.add_laps(clock.laps, sample=i)
            else:
                sample = sampler.sample(rng)
                record = self.run_sample(sample, rng)
            estimator.push(sample, record.e)
            records.append(record)
            if progress is not None:
                progress(i, estimator)
            if self.config.stop_on_convergence and estimator.converged(
                self.config.convergence_rel_tol, self.config.min_samples
            ):
                break
        wall = time.perf_counter() - start
        return CampaignResult(
            strategy=sampler.name,
            records=records,
            estimator=estimator,
            wall_time_s=wall,
            metrics=registry.snapshot() if registry is not None else None,
        )

    def _batch_fallback_reason(self) -> Optional[str]:
        """Why ``evaluate`` must take the scalar loop, or None to batch."""
        if not self.config.batch:
            return "disabled"
        if self.config.stop_on_convergence:
            # The batched kernel pre-draws and evaluates the whole budget;
            # an engine-level early stop would discard most of that work,
            # so convergence-stopped calls keep the incremental loop.
            return "stop_on_convergence"
        return None

    def _warn_batch_fallback(self, reason: str, seed: SeedLike) -> None:
        seed_kind = type(seed).__name__ if seed is not None else "None"
        impact_cycles = getattr(self.spec.technique, "impact_cycles", 1)
        warn_once(
            f"engine-batch-fallback-{reason}",
            f"batched kernel disengaged ({reason}): evaluating through the "
            f"scalar loop (seed kind={seed_kind}, "
            f"impact_cycles={impact_cycles})",
        )

    def _evaluate_batched(
        self,
        sampler: Sampler,
        n_samples: int,
        seed: SeedLike,
        progress: Optional[Callable[[int, SsfEstimator], None]],
    ) -> CampaignResult:
        """Batched campaign body: draw everything, dispatch run_batch.

        Bit-identical to the scalar loop for every seed kind.  A
        ``SeedSequence`` derives one independent stream per sample (any
        consumption order is the scalar order).  An int / ``Generator`` /
        ``None`` seed keeps the single shared stream, consumed in the
        exact scalar interleaving: sample ``i``'s draw, then all of
        sample ``i``'s per-cycle injections, then sample ``i+1``'s draw —
        the simulation stages between them consume no RNG.  The estimator
        consumes outcomes in original sample order (Welford updates are
        order-sensitive in float).  An engine-level convergence stop
        truncates the returned records at the same boundary the scalar
        loop would — the already-computed tail is simply discarded.
        """
        estimator = SsfEstimator(record_history=True)
        registry = MetricsRegistry() if self.observe else None
        tracer = self.tracer
        observing = registry is not None or tracer.enabled
        start = time.perf_counter()
        clock = StageClock() if observing else NULL_CLOCK
        context = self.context
        if isinstance(seed, np.random.SeedSequence):
            rngs = [
                as_generator(sample_seed_sequence(seed, i))
                for i in range(n_samples)
            ]
        else:
            shared = as_generator(seed)
            rngs = [shared] * n_samples
        samples: List[AttackSample] = []
        injections: List[List] = []
        for i in range(n_samples):
            sample = sampler.sample(rngs[i])
            samples.append(sample)
            injection_cycle = context.target_cycle - sample.t
            if injection_cycle < 0 or injection_cycle >= context.n_cycles:
                injections.append([])
            else:
                injections.append(
                    self._draw_injections(sample, injection_cycle, rngs[i])
                )
        clock.lap("draw")
        records = self.run_batch(
            samples, registry=registry, clock=clock, injections=injections
        )
        if registry is not None:
            observe_batch_timing(
                registry, clock.stage_totals(), clock.total_seconds(), n_samples
            )
        if tracer.enabled:
            tracer.add_laps(clock.laps, sample=0)
        kept: List[SampleRecord] = []
        for i, record in enumerate(records):
            if registry is not None:
                observe_record(registry, record)
            estimator.push(samples[i], record.e)
            kept.append(record)
            if progress is not None:
                progress(i, estimator)
            if self.config.stop_on_convergence and estimator.converged(
                self.config.convergence_rel_tol, self.config.min_samples
            ):
                break
        wall = time.perf_counter() - start
        return CampaignResult(
            strategy=sampler.name,
            records=kept,
            estimator=estimator,
            wall_time_s=wall,
            metrics=registry.snapshot() if registry is not None else None,
        )

    # ------------------------------------------------------------------
    # outcome oracle (necessity analysis for attribution / hardening)
    # ------------------------------------------------------------------
    def outcome_oracle(self):
        """A callable ``(record, flips) -> e`` re-judging a record with an
        altered flip set.

        Memory-type-only flip sets are judged analytically (microseconds);
        anything else falls back to a deterministic RTL probe.  Used by
        :func:`repro.core.hardening.attribute_ssf` to find the bits that
        were *necessary* for each successful attack.
        """
        cache: Dict[Tuple[int, FrozenSet[Tuple[str, int]]], int] = {}

        def oracle(record, flips) -> int:
            flips = frozenset(flips)
            if not flips:
                return 0
            key = (record.injection_cycle, flips)
            if key not in cache:
                if self._analytical is not None and self._all_memory_type(flips):
                    cache[key] = self._analytical.evaluate(
                        flips, record.injection_cycle
                    )
                else:
                    cache[key] = self.probe_register_flips(
                        flips, record.injection_cycle
                    )
            return cache[key]

        return oracle

    # ------------------------------------------------------------------
    # deterministic single-fault probe (used by tests and hardening)
    # ------------------------------------------------------------------
    def probe_register_flips(
        self,
        flips: FrozenSet[Tuple[str, int]],
        injection_cycle: int,
    ) -> int:
        """Ground-truth RTL outcome of flipping exact bits at a cycle.

        Bypasses the gate level entirely: restart, step through the
        injection cycle, apply the flips, resume, and judge.  Used to
        validate the analytical evaluator and to attribute SSF.
        """
        context = self.context
        simulator = context.simulator
        simulator.restart_from(context.golden, injection_cycle)
        simulator.step()
        masks: Dict[str, int] = {}
        for register, bit in flips:
            masks[register] = masks.get(register, 0) | (1 << bit)
        simulator.inject_bit_errors(masks)
        simulator.run_to(context.n_cycles)
        return 1 if context.benchmark.attack_succeeded(context.soc) else 0
