"""The cross-level Monte Carlo engine (Fig. 5 of the paper).

Per sample:

1. draw ``(t, p)`` from the active sampling strategy (with its importance
   weight);
2. restart the RTL simulation from the nearest golden checkpoint and run to
   the injection cycle ``Te = Tt - t``;
3. switch to gate level for the injection cycle: generate the technique's
   voltage transients / direct flops upsets, propagate, and collect the
   register bits latched wrong;
4. if nothing latched — masked, done.  If only memory-type registers are
   hit — analytical evaluation.  Otherwise write the bit errors back into
   the RTL state and resume simulation to the end of the benchmark;
5. the success indicator compares the final state against the golden
   outcome (malicious operation committed *and* undetected).

Observability: with ``observe=True`` (the default) each ``evaluate`` call
records per-stage wall times, outcome counters, and the masking funnel
into a fresh :class:`~repro.obs.metrics.MetricsRegistry`, snapshotted onto
the returned :class:`CampaignResult` — the unit the campaign scheduler
serializes per chunk and merges deterministically.  A recording
:class:`~repro.obs.tracing.Tracer` additionally captures one span per
stage per sample.  With ``observe=False`` and the default
:data:`~repro.obs.tracing.NULL_TRACER`, the per-sample flow runs
uninstrumented (no clocks, no registry) — the baseline the
``benchmarks/test_obs_overhead.py`` guard compares against.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec
from repro.core.analytical import AnalyticalEvaluator
from repro.core.context import EvaluationContext
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.errors import EvaluationError
from repro.gatesim.transient import TransientSimulator
from repro.obs.engine_metrics import (
    observe_batch,
    observe_batch_timing,
    observe_batched_sample,
    observe_record,
    observe_timing,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_CLOCK, NULL_TRACER, StageClock
from repro.rtl.checkpoint import Checkpoint
from repro.sampling.base import Sampler
from repro.sampling.estimator import SsfEstimator
from repro.utils.rng import SeedLike, as_generator, sample_seed_sequence


#: Evaluation backends an engine variant string may select.
ENGINE_VARIANTS = ("exact", "surrogate")


@dataclass
class EngineConfig:
    """Engine behaviour knobs."""

    # Which evaluation backend to build: "exact" is the cross-level
    # gate-accurate engine, "surrogate" the calibrated RTL-level SEU
    # surrogate (repro.surrogate).  Construction-time selection happens
    # in CampaignSpec.build_runtime / the CLI; the engine itself only
    # validates the name so a typo fails with the valid variants listed
    # instead of a generic downstream error.
    engine: str = "exact"
    # Use the analytical evaluator when all faulty bits are memory-type.
    analytical_memory_eval: bool = True
    # Stop early once the estimator converges (see SsfEstimator.converged).
    #
    # Precedence: this is an *engine-level* rule that only governs direct
    # ``engine.evaluate`` calls.  Under campaign orchestration
    # (repro.campaign), the campaign's stopping rule — which sees the
    # merged cross-chunk estimator — takes precedence; an engine-level
    # stop merely truncates the individual chunk it fires in, which
    # changes the chunk plan's sample counts and breaks the
    # worker-count-independence guarantee.  The campaign runner emits a
    # one-time warning (via the repro.obs logger) when both are active;
    # prefer ``StoppingConfig(mode="risk" | "ci")`` for campaigns.
    stop_on_convergence: bool = False
    convergence_rel_tol: float = 0.05
    min_samples: int = 200
    # Evaluate campaigns through the batched kernel (run_batch): samples
    # sharing an injection cycle are packed into one gate-level call over
    # a shared cycle baseline.  Only engages when ``evaluate`` is seeded
    # with a SeedSequence (per-sample independent streams make regrouping
    # RNG-safe) and the technique disturbs a single cycle; bit-identical
    # to the scalar path either way.  ``--no-batch`` / CampaignSpec(batch=
    # False) is the escape hatch.
    batch: bool = True
    # Max (injection cycle -> baseline/checkpoint) entries kept per engine.
    baseline_cache_size: int = 128

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_VARIANTS:
            raise EvaluationError(
                f"unknown engine variant {self.engine!r}: valid variants "
                f"are {', '.join(ENGINE_VARIANTS)}"
            )


class CrossLevelEngine:
    """Runs fault-attack campaigns against one evaluation context."""

    def __init__(
        self,
        context: EvaluationContext,
        spec: AttackSpec,
        config: Optional[EngineConfig] = None,
        tracer=None,
        observe: bool = True,
    ):
        self.context = context
        self.spec = spec
        self.config = config or EngineConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.observe = observe
        self.transient_sim = TransientSimulator(context.netlist, context.timing)
        # Per-(injection cycle) baseline cache for the batched kernel: the
        # post-step RTL snapshot, the recorded MPU trace entry, and the
        # shared gate-level CycleBaseline.  LRU-bounded; persists across
        # evaluate calls (one engine lives per scheduler worker, so the
        # cache also spans chunks).
        self._cycle_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._analytical: Optional[AnalyticalEvaluator] = None
        if context.characterization is not None:
            self._analytical = AnalyticalEvaluator(
                context.benchmark,
                context.mpu_trace,
                context.memmap.n_mpu_regions,
                memmap=context.memmap,
                variant=context.mpu_variant,
            )

    # ------------------------------------------------------------------
    # single-sample flow
    # ------------------------------------------------------------------
    def run_sample(
        self, sample: AttackSample, rng: np.random.Generator, clock=NULL_CLOCK
    ) -> SampleRecord:
        """Evaluate one attack sample.

        ``clock`` marks stage boundaries (see
        :data:`repro.obs.engine_metrics.STAGES`); the default null clock
        keeps the uninstrumented path free of timing calls.
        """
        context = self.context
        injection_cycle = context.target_cycle - sample.t
        # Negative t (injection after the target) can overrun the run end;
        # either direction out of the simulated window is a guaranteed miss.
        if injection_cycle < 0 or injection_cycle >= context.n_cycles:
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.OUT_OF_RANGE,
                flipped_bits=frozenset(),
                injection_cycle=injection_cycle,
            )

        # Steps 3+4: RTL to the injection cycle, then gate-level simulation
        # of each impacted cycle, with latched errors written back into the
        # RTL state as they occur (multi-cycle impact per Section 3.2).
        simulator = context.simulator
        soc = context.soc
        simulator.restart_from(context.golden, injection_cycle)
        clock.lap("restart")
        impact_cycles = getattr(self.spec.technique, "impact_cycles", 1)

        flipped: frozenset = frozenset()
        n_injected = n_latched = 0
        for _ in range(impact_cycles):
            if simulator.cycle >= context.n_cycles:
                break
            soc.record_mpu_trace = True
            soc.mpu_trace = []
            simulator.step()
            soc.record_mpu_trace = False
            entry = soc.mpu_trace[-1]
            clock.lap("rtl_step")

            injection = self.spec.build_injection(context.placement, sample, rng)
            result = self.transient_sim.simulate_cycle(
                entry.inputs, entry.state, injection
            )
            n_injected += result.n_pulses_injected
            n_latched += result.n_pulses_latched
            clock.lap("transient")
            if result.flipped_bits:
                masks: Dict[str, int] = {}
                for register, bit in result.flipped_bits:
                    masks[register] = masks.get(register, 0) | (1 << bit)
                simulator.inject_bit_errors(masks)
                # A bit flipped twice is back to fault-free: symmetric diff.
                flipped = flipped ^ frozenset(result.flipped_bits)
                clock.lap("writeback")

        if not flipped:
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.MASKED,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
            )

        memory_only = self._all_memory_type(flipped)
        clock.lap("classify")
        category = (
            OutcomeCategory.MEMORY_ONLY if memory_only else OutcomeCategory.NEEDS_RTL
        )

        if (
            memory_only
            and impact_cycles == 1
            and self.config.analytical_memory_eval
            and self._analytical is not None
        ):
            e = self._analytical.evaluate(flipped, injection_cycle)
            clock.lap("analytical")
            return SampleRecord(
                sample=sample,
                e=e,
                category=category,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
                analytical=True,
            )

        # Step 5: the errors are already in the RTL state; resume to the end.
        simulator.run_to(context.n_cycles)
        clock.lap("rtl_resume")
        e = 1 if context.benchmark.attack_succeeded(soc) else 0
        clock.lap("compare")
        return SampleRecord(
            sample=sample,
            e=e,
            category=category,
            flipped_bits=flipped,
            injection_cycle=injection_cycle,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
        )

    def _all_memory_type(self, flipped: FrozenSet[Tuple[str, int]]) -> bool:
        characterization = self.context.characterization
        if characterization is None:
            return False
        return all(characterization.is_memory_type(reg, bit) for reg, bit in flipped)

    # ------------------------------------------------------------------
    # batched flow
    # ------------------------------------------------------------------
    @property
    def baseline_cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the per-cycle baseline cache so far."""
        return self._cache_hits, self._cache_misses

    def run_batch(
        self,
        samples: Sequence[AttackSample],
        rngs: Optional[Sequence[np.random.Generator]] = None,
        registry: Optional[MetricsRegistry] = None,
        clock=NULL_CLOCK,
    ) -> List[SampleRecord]:
        """Evaluate a batch of samples, one record per sample, in order.

        Samples sharing an injection cycle are packed into a single
        gate-level :meth:`~repro.gatesim.transient.TransientSimulator.
        simulate_cycle_batch` call over the cached cycle baseline, so the
        RTL restart/step and the golden logic evaluation happen once per
        distinct cycle instead of once per sample.  ``rngs`` must hold one
        generator per sample (each consumed exactly as the scalar path
        would consume it); omitted, every sample gets a fresh independent
        stream.  Records are bit-identical to ``run_sample`` on each
        sample.  Techniques disturbing more than one cycle fall back to
        the scalar loop — multi-cycle writeback makes the RTL state
        diverge per sample, so there is nothing to share.
        """
        if rngs is None:
            rngs = [as_generator(None) for _ in samples]
        if len(rngs) != len(samples):
            raise EvaluationError("run_batch needs one rng per sample")
        records: List[Optional[SampleRecord]] = [None] * len(samples)
        if getattr(self.spec.technique, "impact_cycles", 1) != 1:
            for i, (sample, rng) in enumerate(zip(samples, rngs)):
                records[i] = self.run_sample(sample, rng)
            return records  # type: ignore[return-value]

        context = self.context
        hits_before, misses_before = self._cache_hits, self._cache_misses
        groups: "OrderedDict[int, List[int]]" = OrderedDict()
        for i, sample in enumerate(samples):
            injection_cycle = context.target_cycle - sample.t
            if injection_cycle < 0 or injection_cycle >= context.n_cycles:
                records[i] = SampleRecord(
                    sample=sample,
                    e=0,
                    category=OutcomeCategory.OUT_OF_RANGE,
                    flipped_bits=frozenset(),
                    injection_cycle=injection_cycle,
                )
                continue
            groups.setdefault(injection_cycle, []).append(i)

        for injection_cycle, indices in groups.items():
            entry, post_step, baseline = self._cycle_state(
                injection_cycle, registry
            )
            clock.lap("restart")
            injections = [
                self.spec.build_injection(
                    context.placement, samples[i], rngs[i]
                )
                for i in indices
            ]
            results = self.transient_sim.simulate_cycle_batch(
                entry.inputs, entry.state, injections, baseline=baseline
            )
            clock.lap("transient")
            for i, result in zip(indices, results):
                start = time.perf_counter() if registry is not None else 0.0
                records[i] = self._classify_batched(
                    samples[i], injection_cycle, result, post_step, clock
                )
                if registry is not None:
                    observe_batched_sample(
                        registry, records[i], time.perf_counter() - start
                    )
        if registry is not None:
            observe_batch(
                registry,
                [len(indices) for indices in groups.values()],
                self._cache_hits - hits_before,
                self._cache_misses - misses_before,
            )
        return records  # type: ignore[return-value]

    def _cycle_state(
        self, injection_cycle: int, registry: Optional[MetricsRegistry]
    ):
        """The shared per-cycle state: trace entry, snapshot, baseline.

        A miss restarts the RTL from the nearest golden checkpoint, steps
        through the injection cycle recording the MPU trace, snapshots the
        post-step state (so faulty samples can resume without repeating
        the restart), and evaluates the golden gate-level baseline.
        """
        cached = self._cycle_cache.get(injection_cycle)
        if cached is not None:
            self._cycle_cache.move_to_end(injection_cycle)
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        context = self.context
        simulator = context.simulator
        soc = context.soc
        simulator.restart_from(context.golden, injection_cycle)
        soc.record_mpu_trace = True
        soc.mpu_trace = []
        simulator.step()
        soc.record_mpu_trace = False
        entry = soc.mpu_trace[-1]
        post_step = Checkpoint.capture(soc, simulator.cycle)
        baseline = self.transient_sim.make_baseline(entry.inputs, entry.state)
        state = (entry, post_step, baseline)
        self._cycle_cache[injection_cycle] = state
        while len(self._cycle_cache) > self.config.baseline_cache_size:
            self._cycle_cache.popitem(last=False)
        return state

    def _classify_batched(
        self,
        sample: AttackSample,
        injection_cycle: int,
        result,
        post_step: Checkpoint,
        clock=NULL_CLOCK,
    ) -> SampleRecord:
        """Classification tail of run_sample, from a batched gate result."""
        flipped = frozenset(result.flipped_bits)
        n_injected = result.n_pulses_injected
        n_latched = result.n_pulses_latched
        if not flipped:
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.MASKED,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
            )

        memory_only = self._all_memory_type(flipped)
        clock.lap("classify")
        category = (
            OutcomeCategory.MEMORY_ONLY if memory_only else OutcomeCategory.NEEDS_RTL
        )
        if (
            memory_only
            and self.config.analytical_memory_eval
            and self._analytical is not None
        ):
            e = self._analytical.evaluate(flipped, injection_cycle)
            clock.lap("analytical")
            return SampleRecord(
                sample=sample,
                e=e,
                category=category,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_injected=n_injected,
                n_pulses_latched=n_latched,
                analytical=True,
            )

        # Resume from the shared post-step snapshot: equivalent to the
        # scalar restart+step (the snapshot is complete), minus the cost.
        context = self.context
        simulator = context.simulator
        post_step.restore(context.soc)
        simulator.cycle = post_step.cycle
        masks: Dict[str, int] = {}
        for register, bit in flipped:
            masks[register] = masks.get(register, 0) | (1 << bit)
        simulator.inject_bit_errors(masks)
        clock.lap("writeback")
        simulator.run_to(context.n_cycles)
        clock.lap("rtl_resume")
        e = 1 if context.benchmark.attack_succeeded(context.soc) else 0
        clock.lap("compare")
        return SampleRecord(
            sample=sample,
            e=e,
            category=category,
            flipped_bits=flipped,
            injection_cycle=injection_cycle,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
        )

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    def evaluate(
        self,
        sampler: Sampler,
        n_samples: int,
        seed: SeedLike = None,
        progress: Optional[Callable[[int, SsfEstimator], None]] = None,
    ) -> CampaignResult:
        """Run a Monte Carlo campaign with the given strategy.

        Seed policy: a ``SeedSequence`` seed (the campaign path — the
        scheduler passes each chunk's spawned child) derives one
        *independent* child stream per sample via
        :func:`~repro.utils.rng.sample_seed_sequence`, so the draw and the
        injection of sample ``i`` never share RNG state with sample
        ``i±1`` and any sample is replayable in isolation.  An int /
        ``Generator`` / ``None`` seed keeps the legacy single shared
        stream (stable for callers that pin integer seeds in tests).
        """
        if n_samples <= 0:
            raise EvaluationError("n_samples must be positive")
        per_sample_base = seed if isinstance(seed, np.random.SeedSequence) else None
        if (
            self.config.batch
            and per_sample_base is not None
            and getattr(self.spec.technique, "impact_cycles", 1) == 1
        ):
            return self._evaluate_batched(
                sampler, n_samples, per_sample_base, progress
            )
        rng = None if per_sample_base is not None else as_generator(seed)
        estimator = SsfEstimator(record_history=True)
        records = []
        tracer = self.tracer
        registry = MetricsRegistry() if self.observe else None
        observing = registry is not None or tracer.enabled
        start = time.perf_counter()
        for i in range(n_samples):
            if per_sample_base is not None:
                rng = as_generator(sample_seed_sequence(per_sample_base, i))
            if observing:
                clock = StageClock()
                sample = sampler.sample(rng)
                clock.lap("draw")
                record = self.run_sample(sample, rng, clock=clock)
                if registry is not None:
                    observe_record(registry, record)
                    observe_timing(
                        registry,
                        record,
                        clock.stage_totals(),
                        clock.total_seconds(),
                    )
                if tracer.enabled:
                    tracer.add_laps(clock.laps, sample=i)
            else:
                sample = sampler.sample(rng)
                record = self.run_sample(sample, rng)
            estimator.push(sample, record.e)
            records.append(record)
            if progress is not None:
                progress(i, estimator)
            if self.config.stop_on_convergence and estimator.converged(
                self.config.convergence_rel_tol, self.config.min_samples
            ):
                break
        wall = time.perf_counter() - start
        return CampaignResult(
            strategy=sampler.name,
            records=records,
            estimator=estimator,
            wall_time_s=wall,
            metrics=registry.snapshot() if registry is not None else None,
        )

    def _evaluate_batched(
        self,
        sampler: Sampler,
        n_samples: int,
        base: np.random.SeedSequence,
        progress: Optional[Callable[[int, SsfEstimator], None]],
    ) -> CampaignResult:
        """Batched campaign body: draw everything, dispatch run_batch.

        Bit-identical to the scalar loop: each sample's independent RNG
        stream sees the same draw-then-inject call sequence, and the
        estimator consumes outcomes in original sample order (Welford
        updates are order-sensitive in float).  An engine-level
        convergence stop truncates the returned records at the same
        boundary the scalar loop would — the already-computed tail is
        simply discarded.
        """
        estimator = SsfEstimator(record_history=True)
        registry = MetricsRegistry() if self.observe else None
        tracer = self.tracer
        observing = registry is not None or tracer.enabled
        start = time.perf_counter()
        clock = StageClock() if observing else NULL_CLOCK
        rngs = [
            as_generator(sample_seed_sequence(base, i))
            for i in range(n_samples)
        ]
        samples = [sampler.sample(rng) for rng in rngs]
        clock.lap("draw")
        records = self.run_batch(samples, rngs, registry=registry, clock=clock)
        if registry is not None:
            observe_batch_timing(
                registry, clock.stage_totals(), clock.total_seconds(), n_samples
            )
        if tracer.enabled:
            tracer.add_laps(clock.laps, sample=0)
        kept: List[SampleRecord] = []
        for i, record in enumerate(records):
            if registry is not None:
                observe_record(registry, record)
            estimator.push(samples[i], record.e)
            kept.append(record)
            if progress is not None:
                progress(i, estimator)
            if self.config.stop_on_convergence and estimator.converged(
                self.config.convergence_rel_tol, self.config.min_samples
            ):
                break
        wall = time.perf_counter() - start
        return CampaignResult(
            strategy=sampler.name,
            records=kept,
            estimator=estimator,
            wall_time_s=wall,
            metrics=registry.snapshot() if registry is not None else None,
        )

    # ------------------------------------------------------------------
    # outcome oracle (necessity analysis for attribution / hardening)
    # ------------------------------------------------------------------
    def outcome_oracle(self):
        """A callable ``(record, flips) -> e`` re-judging a record with an
        altered flip set.

        Memory-type-only flip sets are judged analytically (microseconds);
        anything else falls back to a deterministic RTL probe.  Used by
        :func:`repro.core.hardening.attribute_ssf` to find the bits that
        were *necessary* for each successful attack.
        """
        cache: Dict[Tuple[int, FrozenSet[Tuple[str, int]]], int] = {}

        def oracle(record, flips) -> int:
            flips = frozenset(flips)
            if not flips:
                return 0
            key = (record.injection_cycle, flips)
            if key not in cache:
                if self._analytical is not None and self._all_memory_type(flips):
                    cache[key] = self._analytical.evaluate(
                        flips, record.injection_cycle
                    )
                else:
                    cache[key] = self.probe_register_flips(
                        flips, record.injection_cycle
                    )
            return cache[key]

        return oracle

    # ------------------------------------------------------------------
    # deterministic single-fault probe (used by tests and hardening)
    # ------------------------------------------------------------------
    def probe_register_flips(
        self,
        flips: FrozenSet[Tuple[str, int]],
        injection_cycle: int,
    ) -> int:
        """Ground-truth RTL outcome of flipping exact bits at a cycle.

        Bypasses the gate level entirely: restart, step through the
        injection cycle, apply the flips, resume, and judge.  Used to
        validate the analytical evaluator and to attribute SSF.
        """
        context = self.context
        simulator = context.simulator
        simulator.restart_from(context.golden, injection_cycle)
        simulator.step()
        masks: Dict[str, int] = {}
        for register, bit in flips:
            masks[register] = masks.get(register, 0) | (1 << bit)
        simulator.inject_bit_errors(masks)
        simulator.run_to(context.n_cycles)
        return 1 if context.benchmark.attack_succeeded(context.soc) else 0
