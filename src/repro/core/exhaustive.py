"""Exhaustive single-bit fault enumeration.

For the restricted attack model "exactly one register bit flips, at a
uniformly chosen timing distance", the fault space is small enough to
enumerate *completely* — giving the exact SSF this model induces.  That
exact value is the validation anchor for the Monte Carlo machinery: a
campaign run with :class:`~repro.attack.techniques.PinpointUpsetTechnique`
over the same support must converge to it (asserted by
``benchmarks/test_exhaustive_validation.py``).

Enumeration is also the practical tool for *small* designs; the paper's
framework exists precisely because it stops scaling — the bench records
the evaluations/second of both approaches.

Seed audit: enumeration is *RNG-free* — outcomes come from deterministic
RTL probes / the analytical evaluator, never from a random stream — so it
cannot alias the Monte Carlo engine's per-sample seed tree no matter how
the two are interleaved (exercised by ``tests/conformance``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.engine import CrossLevelEngine
from repro.errors import EvaluationError

RegisterBit = Tuple[str, int]


@dataclass
class ExhaustiveResult:
    """Complete truth table of the single-bit fault model."""

    bits: List[RegisterBit]
    timing_distances: List[int]
    outcomes: Dict[Tuple[RegisterBit, int], int] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def n_evaluations(self) -> int:
        return len(self.outcomes)

    @property
    def ssf_exact(self) -> float:
        """Exact SSF under uniform (bit, t): the mean of the indicator."""
        if not self.outcomes:
            return 0.0
        return sum(self.outcomes.values()) / len(self.outcomes)

    def successful_faults(self) -> List[Tuple[RegisterBit, int]]:
        return sorted(key for key, e in self.outcomes.items() if e)

    def per_bit_success_count(self) -> Dict[RegisterBit, int]:
        counts: Dict[RegisterBit, int] = {}
        for (bit, _t), e in self.outcomes.items():
            if e:
                counts[bit] = counts.get(bit, 0) + 1
        return counts

    def ssf_of_bit(self, bit: RegisterBit) -> float:
        values = [e for (b, _t), e in self.outcomes.items() if b == bit]
        return sum(values) / len(values) if values else 0.0


def enumerate_single_bit_faults(
    engine: CrossLevelEngine,
    bits: Optional[Sequence[RegisterBit]] = None,
    timing_distances: Optional[Sequence[int]] = None,
    use_analytical: bool = True,
    progress=None,
) -> ExhaustiveResult:
    """Evaluate every (register bit, timing distance) single-bit fault.

    Defaults: every register bit in the responding signals' cones, at
    every timing distance of the engine's attack spec.  Memory-type bits
    are judged analytically when the engine has the characterization
    (bit-exact with RTL, per the analytical-evaluator tests); everything
    else is a deterministic RTL probe.
    """
    context = engine.context
    if bits is None:
        if context.characterization is None:
            raise EvaluationError(
                "no characterization: pass the bit list explicitly"
            )
        bits = context.characterization.cone_register_bits()
    if timing_distances is None:
        timing_distances = [
            t for t in engine.spec.temporal.support() if t >= 0
        ]
    bits = list(bits)
    timing_distances = list(timing_distances)
    if not bits or not timing_distances:
        raise EvaluationError("empty enumeration space")

    analytical = engine._analytical if use_analytical else None
    result = ExhaustiveResult(bits=bits, timing_distances=timing_distances)
    start = time.perf_counter()
    done = 0
    for bit in bits:
        flips: FrozenSet[RegisterBit] = frozenset({bit})
        memory_type = engine._all_memory_type(flips)
        for t in timing_distances:
            injection_cycle = context.target_cycle - t
            if injection_cycle < 0 or injection_cycle >= context.n_cycles:
                e = 0
            elif memory_type and analytical is not None:
                e = analytical.evaluate(flips, injection_cycle)
            else:
                e = engine.probe_register_flips(flips, injection_cycle)
            result.outcomes[(bit, t)] = e
            done += 1
            if progress is not None:
                progress(done, len(bits) * len(timing_distances))
    result.wall_time_s = time.perf_counter() - start
    return result
