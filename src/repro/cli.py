"""Command-line interface.

Exposes the main workflows without writing Python::

    python -m repro info
    python -m repro evaluate --benchmark write --sampler importance -n 1000
    python -m repro characterize --benchmark write --out charac.json
    python -m repro evaluate --benchmark write --charac-cache charac.json
    python -m repro calibrate --benchmark write -n 400 --out cal.json
    python -m repro evaluate --engine surrogate --fidelity two-stage --calibration cal.json
    python -m repro harden --benchmark write -n 1500 --coverage 0.95
    python -m repro countermeasures --benchmark write -n 600
    python -m repro campaign run --benchmark write --stop risk --epsilon 0.02
    python -m repro campaign resume <run-id>
    python -m repro campaign status <run-id> --metrics
    python -m repro obs report <run-id>
    python -m repro serve --runs-dir runs --port 8321
    python -m repro submit --benchmark write -n 500 --url http://localhost:8321
    python -m repro status <job-id> --url http://localhost:8321

All commands print the same tables the library APIs produce; ``--json``
(on ``campaign run/resume/status`` and the service verbs) emits a single
machine-readable JSON document on stdout instead.  Framework errors
(:class:`~repro.errors.ReproError`) print one clean ``error:`` line and
exit 2 — never a raw traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Callable, Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.soc.mpu import MpuVariant
from repro.soc.programs import (
    BenchmarkProgram,
    dma_exfiltration_benchmark,
    illegal_read_benchmark,
    illegal_write_benchmark,
)

BENCHMARKS: Dict[str, Callable[[], BenchmarkProgram]] = {
    "write": illegal_write_benchmark,
    "read": illegal_read_benchmark,
    "dma": dma_exfiltration_benchmark,
}


def _parse_variant(text: str) -> MpuVariant:
    """'none', 'parity', 'dual', 'dual+parity', 'tmr', 'tmr+parity'."""
    return MpuVariant.parse(text)


def _build_context(args):
    from repro.core.context import build_context
    from repro.precharac.persistence import load_characterization

    variant = _parse_variant(getattr(args, "variant", "none"))
    cache = getattr(args, "charac_cache", None)
    if cache:
        import pathlib

        if pathlib.Path(cache).exists():
            context = build_context(
                BENCHMARKS[args.benchmark](),
                characterize=False,
                mpu_variant=variant,
            )
            context.characterization = load_characterization(
                cache, context.netlist
            )
            return context
    return build_context(BENCHMARKS[args.benchmark](), mpu_variant=variant)


def _normalize_fidelity(text: str) -> str:
    """Accept the CLI spelling ``two-stage`` for the spec's ``two_stage``."""
    return text.replace("-", "_")


def _check_engine_args(args) -> str:
    """Validate ``--engine/--fidelity`` before any expensive build.

    ``--engine`` is deliberately *not* an argparse choice: the variant
    list lives in :data:`repro.core.engine.ENGINE_VARIANTS`, and an
    unknown name raises :class:`~repro.errors.EvaluationError` here —
    surfaced by ``main`` as one clean ``error:`` line, exit 2.
    """
    from repro.core.engine import ENGINE_VARIANTS
    from repro.errors import EvaluationError

    name = getattr(args, "engine", "exact")
    if name not in ENGINE_VARIANTS:
        raise EvaluationError(
            f"unknown engine variant {name!r}: valid variants "
            f"are {', '.join(ENGINE_VARIANTS)}"
        )
    fidelity = _normalize_fidelity(getattr(args, "fidelity", "single"))
    if name != "surrogate" and fidelity != "single":
        raise EvaluationError(
            "fidelity 'two_stage' uses the surrogate as the "
            "screening stage; pass --engine surrogate"
        )
    return name


def _surrogate_from_args(engine, sampler, args):
    """Apply ``--engine/--fidelity/--calibration`` to a built engine."""
    if _check_engine_args(args) != "surrogate":
        return engine
    from repro.surrogate import build_surrogate_engine

    print("Preparing surrogate model...", file=sys.stderr)
    return build_surrogate_engine(
        engine,
        sampler,
        fidelity=_normalize_fidelity(getattr(args, "fidelity", "single")),
        calibration=getattr(args, "calibration", None),
        seed=args.seed,
    )


def _make_sampler(name: str, spec, context):
    from repro.sampling import (
        FaninConeSampler,
        ImportanceSampler,
        RandomSampler,
    )

    if name == "random":
        return RandomSampler(spec)
    if name == "cone":
        return FaninConeSampler(spec, context.characterization)
    return ImportanceSampler(
        spec, context.characterization, placement=context.placement
    )


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_info(args) -> int:
    import repro
    from repro.soc.mpu import build_mpu_netlist

    netlist = build_mpu_netlist(variant=_parse_variant(args.variant))
    stats = netlist.stats()
    rows = [
        ["version", repro.__version__],
        ["MPU variant", _parse_variant(args.variant).name],
        ["netlist nodes", stats["total"]],
        ["combinational gates", stats["combinational"]],
        ["flip-flops", stats["dff"]],
        ["cell area (um^2)", f"{netlist.area():.0f}"],
        ["benchmarks", ", ".join(BENCHMARKS)],
    ]
    print(format_table(["property", "value"], rows, title="repro platform"))
    return 0


def cmd_evaluate(args) -> int:
    from repro import default_attack_spec
    from repro.core.engine import CrossLevelEngine, EngineConfig

    _check_engine_args(args)
    print("Building evaluation context...", file=sys.stderr)
    context = _build_context(args)
    spec = default_attack_spec(
        context, window=args.window, subblock_fraction=args.subblock
    )
    if args.impact_cycles > 1:
        spec.technique.impact_cycles = args.impact_cycles
    baseline_store = None
    if getattr(args, "baseline_store", None):
        from repro.service.artifacts import ArtifactStore, baseline_store_for

        baseline_store = baseline_store_for(
            ArtifactStore(args.baseline_store),
            benchmark=args.benchmark,
            variant=args.variant,
            netlist=context.netlist,
        )
    engine = CrossLevelEngine(
        context,
        spec,
        config=EngineConfig(batch=not getattr(args, "no_batch", False)),
        baseline_store=baseline_store,
    )
    engine.warm_baseline_cache()
    sampler = _make_sampler(args.sampler, spec, context)
    engine = _surrogate_from_args(engine, sampler, args)
    surrogate = getattr(args, "engine", "exact") == "surrogate"
    print(f"Running {args.samples} samples ({args.sampler})...", file=sys.stderr)
    if args.workers > 1 and not surrogate:
        from repro.core.parallel import parallel_evaluate

        result = parallel_evaluate(
            engine, sampler, args.samples, seed=args.seed, n_workers=args.workers
        )
    else:
        # SeedSequence seeding: per-sample independent streams (the
        # campaign seed policy), which also lets the batched kernel engage.
        import numpy as np

        result = engine.evaluate(
            sampler, args.samples, seed=np.random.SeedSequence(args.seed)
        )

    rows = [
        ["benchmark", context.benchmark.name],
        ["MPU variant", context.mpu_variant.name],
        ["sampler", args.sampler],
        ["SSF", f"{result.ssf:.5f}"],
        ["sample variance", f"{result.variance:.3e}"],
        ["std error", f"{result.estimator.std_error:.2e}"],
        ["successes", f"{result.n_success}/{result.n_samples}"],
        ["wall time", f"{result.wall_time_s:.1f} s"],
    ]
    if surrogate:
        rows.insert(3, ["engine", f"{args.engine} "
                        f"({_normalize_fidelity(args.fidelity)})"])
        rows.append(["exact-engine samples", engine.exact_invocations])
    for category, count in result.category_counts().items():
        if count:
            rows.append([f"outcome {category.value}", count])
    print(format_table(["quantity", "value"], rows, title="SSF evaluation"))
    return 0


def cmd_characterize(args) -> int:
    from repro.precharac.persistence import save_characterization

    print("Building context + pre-characterization...", file=sys.stderr)
    context = _build_context(args)
    save_characterization(context.characterization, args.out)
    ch = context.characterization
    rows = [
        ["output", args.out],
        ["cone nodes", len(ch.cones.all_nodes())],
        ["memory-type bits", len(ch.memory_type)],
        ["computation-type bits", len(ch.computation_type)],
        ["correlation entries", len(ch.signatures.correlations)],
    ]
    print(format_table(["quantity", "value"], rows, title="Pre-characterization"))
    return 0


def cmd_calibrate(args) -> int:
    from repro import default_attack_spec
    from repro.core.engine import CrossLevelEngine
    from repro.surrogate import (
        CalibrationConfig,
        calibrate,
        save_surrogate_model,
    )

    print("Building evaluation context...", file=sys.stderr)
    context = _build_context(args)
    spec = default_attack_spec(
        context, window=args.window, subblock_fraction=args.subblock
    )
    engine = CrossLevelEngine(context, spec)
    sampler = _make_sampler(args.sampler, spec, context)
    config = CalibrationConfig(
        n_samples=args.samples,
        holdout_fraction=args.holdout,
        cycle_class_width=args.class_width,
        min_observations=args.min_observations,
        seed=args.seed,
    )
    print(
        f"Calibrating surrogate on {args.samples} exact samples...",
        file=sys.stderr,
    )
    model, report = calibrate(engine, sampler, config)
    save_surrogate_model(model, context.netlist, args.out, report=report)
    if getattr(args, "json", False):
        print(json.dumps({"out": args.out, **report.to_dict()},
                         sort_keys=True))
        return 0
    rows = [
        ["output", args.out],
        ["calibration samples", report.n_samples],
        ["fit / holdout", f"{report.n_fit} / {report.n_holdout}"],
        ["fitted cells", report.n_cells],
        ["holdout coverage", f"{report.holdout_coverage:.3f}"],
        ["screen FNR", f"{report.fnr:.3f} "
         f"({report.n_true_positives} holdout hits)"],
        ["multiplicity KS p", f"{report.multiplicity_ks_p_value:.4f}"],
        ["category chi2 p", f"{report.category_chi2_p_value:.4f}"],
    ]
    print(format_table(["quantity", "value"], rows,
                       title="Surrogate calibration"))
    return 0


def cmd_harden(args) -> int:
    from repro import default_attack_spec
    from repro.core.engine import CrossLevelEngine
    from repro.core.hardening import HardeningStudy, attribute_ssf, critical_bits

    print("Building evaluation context...", file=sys.stderr)
    context = _build_context(args)
    spec = default_attack_spec(context, window=args.window)
    engine = CrossLevelEngine(context, spec)
    sampler = _make_sampler("importance", spec, context)
    print(f"Running {args.samples} samples...", file=sys.stderr)
    result = engine.evaluate(sampler, args.samples, seed=args.seed)
    oracle = engine.outcome_oracle()
    study = HardeningStudy(context.netlist, result, oracle=oracle)
    outcome = study.harden_for_coverage(args.coverage)

    shares = attribute_ssf(result, oracle)
    crit = critical_bits(shares, args.coverage)
    rows = [
        ["SSF before", f"{result.ssf:.5f}"],
        ["critical bits", len(crit)],
        ["SSF after hardening", f"{outcome.ssf_after:.5f}"],
        ["improvement", f"{outcome.ssf_improvement:.1f}x"],
        ["area overhead", f"{100 * outcome.area_overhead:.2f} %"],
    ]
    print(format_table(["quantity", "value"], rows, title="Selective hardening"))
    for reg, bit in crit[:12]:
        print(f"  critical: {reg}[{bit}]")
    return 0


def cmd_enumerate(args) -> int:
    from repro import default_attack_spec
    from repro.core.engine import CrossLevelEngine
    from repro.core.exhaustive import enumerate_single_bit_faults

    print("Building evaluation context...", file=sys.stderr)
    context = _build_context(args)
    spec = default_attack_spec(context, window=args.window)
    engine = CrossLevelEngine(context, spec)
    print("Enumerating single-bit register faults...", file=sys.stderr)
    result = enumerate_single_bit_faults(engine)
    rows = [
        ["evaluations", result.n_evaluations],
        ["exact SSF (single-bit-upset model)", f"{result.ssf_exact:.5f}"],
        ["wall time", f"{result.wall_time_s:.1f} s"],
    ]
    print(format_table(["quantity", "value"], rows, title="Exhaustive enumeration"))
    counts = sorted(
        result.per_bit_success_count().items(), key=lambda kv: kv[1], reverse=True
    )
    for (reg, bit), count in counts[:12]:
        print(f"  {reg}[{bit}]: grants at {count}/{len(result.timing_distances)} timing distances")
    return 0


def cmd_export_verilog(args) -> int:
    from repro.netlist.verilog import write_verilog
    from repro.soc.mpu import build_mpu_netlist

    netlist = build_mpu_netlist(variant=_parse_variant(args.variant))
    write_verilog(netlist, args.out, module_name=args.module)
    stats = netlist.stats()
    print(
        f"wrote {args.out}: module {args.module}, "
        f"{stats['combinational']} gates, {stats['dff']} flops"
    )
    return 0


def cmd_countermeasures(args) -> int:
    from repro.countermeasures import CountermeasureStudy, STANDARD_VARIANTS

    variants = (
        [_parse_variant(v) for v in args.variants]
        if args.variants
        else STANDARD_VARIANTS
    )
    study = CountermeasureStudy(
        BENCHMARKS[args.benchmark],
        variants=variants,
        n_samples=args.samples,
        window=args.window,
        seed=args.seed,
    )
    print(f"Evaluating {len(variants)} variants...", file=sys.stderr)
    results = study.run()
    print(
        format_table(
            ["countermeasure", "SSF", "# succ", "improvement", "area overhead"],
            CountermeasureStudy.table_rows(results),
            title="Countermeasure comparison",
        )
    )
    return 0


def _campaign_result_rows(spec, store, result) -> list:
    rows = [
        ["run id", store.run_id],
        ["benchmark", spec.benchmark],
        ["MPU variant", spec.variant],
        ["sampler", spec.sampler],
        ["stopping", spec.stopping.mode],
        ["SSF", f"{result.ssf:.5f}"],
        ["sample variance", f"{result.variance:.3e}"],
        ["std error", f"{result.estimator.std_error:.2e}"],
        ["successes", f"{result.n_success}/{result.n_samples}"],
        ["samples consumed", result.n_samples],
        ["wall time", f"{result.wall_time_s:.1f} s"],
    ]
    checkpoint = store.read_checkpoint()
    if checkpoint.get("stop_reason"):
        rows.append(["stop reason", checkpoint["stop_reason"]])
    return rows


def _campaign_spec_from_args(args):
    from repro.campaign import CampaignSpec, StoppingConfig

    stopping = StoppingConfig(
        mode=args.stop,
        n_samples=args.samples,
        epsilon=args.epsilon,
        delta=args.delta,
        ci_width=args.ci_width,
        min_samples=args.min_samples,
        max_samples=args.max_samples,
    )
    return CampaignSpec(
        benchmark=args.benchmark,
        variant=_parse_variant(args.variant).name,
        sampler=args.sampler,
        window=args.window,
        subblock_fraction=args.subblock,
        impact_cycles=args.impact_cycles,
        seed=args.seed,
        chunk_size=args.chunk_size,
        engine=getattr(args, "engine", "exact"),
        fidelity=_normalize_fidelity(getattr(args, "fidelity", "single")),
        charac_cache=args.charac_cache,
        calibration=getattr(args, "calibration", None),
        trace=getattr(args, "trace", False),
        batch=not getattr(args, "no_batch", False),
        baseline_store=getattr(args, "baseline_store", None),
        stopping=stopping,
    )


def _campaign_json_payload(spec, store, result) -> dict:
    """Machine-readable outcome of a finished ``campaign run/resume``."""
    from repro.campaign import spec_hash
    from repro.service.cache import result_payload

    payload = result_payload(store)
    payload["spec_hash"] = spec_hash(spec)
    payload["wall_time_s"] = result.wall_time_s
    return payload


def cmd_campaign_run(args) -> int:
    from repro.campaign import CampaignRunner, ConsoleProgress, RunStore

    spec = _campaign_spec_from_args(args)
    store = RunStore.create(args.runs_dir, spec, run_id=args.run_id)
    print(f"campaign run {store.run_id} -> {store.path}", file=sys.stderr)
    runner = CampaignRunner(
        spec,
        store=store,
        hooks=ConsoleProgress(every=args.progress_every),
        n_workers=args.workers,
    )
    result = runner.run()
    if getattr(args, "json", False):
        print(json.dumps(_campaign_json_payload(spec, store, result),
                         sort_keys=True))
        return 0
    print(
        format_table(
            ["quantity", "value"],
            _campaign_result_rows(spec, store, result),
            title="Campaign",
        )
    )
    return 0


def cmd_campaign_resume(args) -> int:
    from repro.campaign import CampaignRunner, ConsoleProgress, RunStore

    store = RunStore.open(args.runs_dir, args.run_id)
    spec = store.load_spec()
    print(f"resuming campaign {store.run_id}", file=sys.stderr)
    result = CampaignRunner.resume(
        store,
        hooks=ConsoleProgress(every=args.progress_every),
        n_workers=args.workers,
    )
    if getattr(args, "json", False):
        print(json.dumps(_campaign_json_payload(spec, store, result),
                         sort_keys=True))
        return 0
    print(
        format_table(
            ["quantity", "value"],
            _campaign_result_rows(spec, store, result),
            title="Campaign (resumed)",
        )
    )
    return 0


def cmd_campaign_status(args) -> int:
    from repro.campaign import RunStore

    as_json = getattr(args, "json", False)
    if not args.run_id:
        runs = RunStore.list_runs(args.runs_dir)
        if as_json:
            payload = []
            for run_id in runs:
                checkpoint = RunStore.open(
                    args.runs_dir, run_id
                ).read_checkpoint()
                payload.append(
                    {
                        "run_id": run_id,
                        "status": checkpoint.get("status"),
                        "n_samples": checkpoint.get("n_samples", 0),
                        "ssf": checkpoint.get("ssf"),
                    }
                )
            print(json.dumps({"runs": payload}, sort_keys=True))
            return 0
        if not runs:
            print(f"no campaign runs under {args.runs_dir}")
            return 0
        rows = []
        for run_id in runs:
            store = RunStore.open(args.runs_dir, run_id)
            checkpoint = store.read_checkpoint()
            rows.append(
                [
                    run_id,
                    checkpoint.get("status", "?"),
                    checkpoint.get("n_samples", 0),
                    (
                        f"{checkpoint['ssf']:.5f}"
                        if checkpoint.get("ssf") is not None
                        else "-"
                    ),
                ]
            )
        print(format_table(["run", "status", "samples", "SSF"], rows,
                           title="Campaign runs"))
        return 0

    store = RunStore.open(args.runs_dir, args.run_id)
    spec = store.load_spec()
    checkpoint = store.read_checkpoint()
    if as_json:
        from repro.campaign import spec_hash

        payload = dict(checkpoint)
        payload["run_id"] = store.run_id
        payload["spec_hash"] = spec_hash(spec)
        payload["spec"] = spec.to_dict()
        print(json.dumps(payload, sort_keys=True))
        # Scripts branch on the exit code: an interrupted run is a
        # failed run until something resumes it.
        return 1 if checkpoint.get("status") == "interrupted" else 0
    rows = [
        ["run id", store.run_id],
        ["status", checkpoint.get("status", "?")],
        ["benchmark", spec.benchmark],
        ["sampler", spec.sampler],
        ["stopping", spec.stopping.mode],
        ["samples", checkpoint.get("n_samples", 0)],
        ["successes", checkpoint.get("n_success", 0)],
    ]
    if checkpoint.get("ssf") is not None:
        rows.append(["SSF", f"{checkpoint['ssf']:.5f}"])
    if checkpoint.get("std_error") is not None:
        rows.append(["std error", f"{checkpoint['std_error']:.2e}"])
    if checkpoint.get("target_samples"):
        rows.append(["sample target", checkpoint["target_samples"]])
    if checkpoint.get("stop_reason"):
        rows.append(["stop reason", checkpoint["stop_reason"]])
    print(format_table(["quantity", "value"], rows, title="Campaign status"))

    if getattr(args, "metrics", False):
        from repro.obs.report import outcome_rates, stage_breakdown

        snapshot = store.read_metrics()
        if not snapshot:
            print("\n(no metrics exported yet for this run)")
            return 0
        stages = stage_breakdown(snapshot)
        if stages:
            print()
            print(
                format_table(
                    ["stage", "samples", "total (s)", "mean (s)", "share"],
                    [
                        [
                            row["stage"],
                            row["count"],
                            f"{row['total_s']:.3f}",
                            f"{row['mean_s']:.2e}",
                            f"{100 * row['share']:.1f} %",
                        ]
                        for row in stages
                    ],
                    title="Stage-time breakdown",
                )
            )
        outcomes = outcome_rates(snapshot)
        if outcomes:
            print()
            print(
                format_table(
                    ["outcome", "samples", "rate"],
                    [
                        [category, count, f"{100 * rate:.1f} %"]
                        for category, count, rate in outcomes
                    ],
                    title="Outcome categories",
                )
            )
    return 0


# ----------------------------------------------------------------------
# service verbs
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    import subprocess
    import time

    from repro.service import (
        AsyncServiceServer,
        DISPATCH_FLEET,
        DISPATCH_LOCAL,
        EvaluationService,
        ServiceServer,
    )

    service = EvaluationService(
        args.runs_dir,
        max_concurrency=args.jobs,
        campaign_workers=args.workers,
        dispatch=DISPATCH_FLEET if args.fleet else DISPATCH_LOCAL,
        lease_ttl_s=args.lease_ttl,
    )
    server_cls = AsyncServiceServer if args.async_io else ServiceServer
    server = server_cls(service, host=args.host, port=args.port)
    server.start()
    mode = "fleet" if args.fleet else "local"
    print(
        f"repro service listening on {server.url} "
        f"(runs dir: {args.runs_dir}, dispatch: {mode})",
        file=sys.stderr,
    )
    workers = []
    if args.spawn_workers:
        if not args.fleet:
            print("--spawn-workers requires --fleet", file=sys.stderr)
            server.stop()
            return 2
        for i in range(args.spawn_workers):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--attach",
                        server.url,
                        "--worker-id",
                        f"local-{i}",
                    ]
                )
            )
        print(f"spawned {len(workers)} local workers", file=sys.stderr)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
        server.stop()
    return 0


def cmd_worker(args) -> int:
    from repro.fleet import FleetWorker
    from repro.service import ServiceClient

    client = ServiceClient(args.attach, timeout_s=args.timeout)
    worker = FleetWorker(
        client,
        worker_id=args.worker_id,
        poll_s=args.poll,
        max_chunks=args.max_chunks,
        telemetry=not args.no_telemetry,
        artifacts_dir=args.artifacts_dir,
    )
    print(
        f"worker {worker.worker_id} attached to {args.attach}",
        file=sys.stderr,
    )
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    print(
        f"worker {worker.worker_id}: {worker.chunks_completed} chunks "
        f"completed, {worker.chunks_rejected} rejected",
        file=sys.stderr,
    )
    return 0


def cmd_fleet_status(args) -> int:
    payload = _service_client(args).fleet_status()
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"dispatch: {payload['dispatch']}")
    worker_rows = [
        [w["worker"], w["chunks_completed"], w["samples_total"],
         f"{w['samples_per_s']:.1f}", f"{w['last_seen_s']:.1f}s"]
        for w in payload.get("workers", [])
    ]
    if worker_rows:
        print(format_table(
            ["worker", "chunks", "samples", "samples/s", "last seen"],
            worker_rows, title="Fleet workers",
        ))
    else:
        print("no workers attached")
    run_rows = [
        [r["job_id"], r["run_id"], r["chunks"]["done"],
         r["chunks"]["leased"], r["chunks"]["pending"],
         r["chunks"]["total"]]
        for r in payload.get("runs", [])
    ]
    if run_rows:
        print(format_table(
            ["job", "run", "done", "leased", "pending", "total"],
            run_rows, title="Active fleet runs",
        ))
    return 0


def cmd_top(args) -> int:
    from repro.obs.top import TopApp

    app = TopApp(
        _service_client(args),
        args.job_id,
        interval_s=args.interval,
        ansi=False if args.plain else None,
    )
    try:
        state = app.run()
    except KeyboardInterrupt:
        print("", file=sys.stderr)
        return 130
    return 0 if state.state == "done" else 1


def _service_client(args):
    from repro.service import ServiceClient

    return ServiceClient(args.url)


def _print_job_table(payload: dict, title: str) -> None:
    order = (
        "job_id", "run_id", "state", "cache_hit", "spec_hash", "priority",
        "run_status", "n_samples", "n_samples_live", "ssf", "queue_depth",
        "error",
    )
    rows = [
        [key, payload[key]] for key in order
        if payload.get(key) is not None
    ]
    print(format_table(["field", "value"], rows, title=title))


def cmd_submit(args) -> int:
    client = _service_client(args)
    spec = _campaign_spec_from_args(args)
    response = client.submit(spec, priority=args.priority)
    if args.wait and response["state"] != "done":
        status = client.wait(response["job_id"], timeout_s=args.timeout)
        response = {**response, "state": status["state"]}
        if status.get("error"):
            response["error"] = status["error"]
    if response["state"] == "done":
        result = client.result(response["job_id"])
        response = {**response, "ssf": result["ssf"],
                    "n_samples": result["n_samples"]}
    if args.json:
        print(json.dumps(response, sort_keys=True))
    else:
        _print_job_table(response, title="Submitted campaign")
    return 0 if response["state"] in ("queued", "running", "done") else 1


def cmd_job_status(args) -> int:
    payload = _service_client(args).status(args.job_id)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        _print_job_table(payload, title="Job status")
    return 0


def cmd_job_result(args) -> int:
    client = _service_client(args)
    if args.wait:
        client.wait(args.job_id, timeout_s=args.timeout)
    payload = client.result(args.job_id)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0
    rows = [
        ["job id", payload["job_id"]],
        ["run id", payload["run_id"]],
        ["cache hit", payload["cache_hit"]],
        ["SSF", f"{payload['ssf']:.5f}"],
        [
            f"Wilson CI (z={payload['ci_z']})",
            f"[{payload['ci_low']:.5f}, {payload['ci_high']:.5f}]",
        ],
        ["successes", f"{payload['n_success']}/{payload['n_samples']}"],
    ]
    if payload.get("stop_reason"):
        rows.append(["stop reason", payload["stop_reason"]])
    print(format_table(["quantity", "value"], rows, title="Job result"))
    return 0


def cmd_job_cancel(args) -> int:
    payload = _service_client(args).cancel(args.job_id)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(f"job {payload['job_id']}: {payload['state']}")
    return 0


# ----------------------------------------------------------------------
# hardening sweeps (campaign-of-campaigns)
# ----------------------------------------------------------------------
class _SweepProgressPrinter(threading.Thread):
    """Stream sweep progress events to stderr while the runner works.

    Subscribes to the runner's :class:`~repro.fleet.events.EventBus`
    topic (the same events the service would fan out over SSE) and
    prints one line per ``sweep_progress`` event, so ``repro sweep run``
    shows live fan-out/cache/done counts without polluting stdout —
    ``--json`` output stays a single parseable document.
    """

    def __init__(self, bus, topic: str):
        super().__init__(daemon=True, name="sweep-progress")
        self.bus = bus
        self.topic = topic
        self._halt = threading.Event()
        self._after = 0

    def run(self) -> None:
        from repro.fleet.events import EVENT_END

        while not self._halt.is_set():
            for seq, event in self.bus.wait(
                self.topic, self._after, timeout_s=0.3
            ):
                self._after = seq + 1
                kind = event.get("type")
                if kind == "sweep_progress":
                    print(
                        f"sweep {self.topic}: "
                        f"{event['n_done']}/{event['n_points']} done, "
                        f"{event['n_cached']} cached, "
                        f"{event['states']['running']} running",
                        file=sys.stderr,
                    )
                elif kind == EVENT_END:
                    return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


def _sweep_summary(store, report: dict) -> dict:
    """The stable ``--json`` summary for ``sweep run`` / ``report``."""
    from repro.sweep import sweep_status

    status = sweep_status(store)
    return {
        "sweep_id": store.sweep_id,
        "name": report["name"],
        "sweep_hash": report["sweep_hash"],
        "n_points": report["n_points"],
        "n_duplicates": report["n_duplicates"],
        "n_cached": status["n_cached"],
        "cache_hit_ratio": status["cache_hit_ratio"],
        "pareto": report["pareto"],
        "verdict": report["regression"]["verdict"],
        "report_path": str(store.path / "report.json"),
    }


def cmd_sweep_run(args) -> int:
    import dataclasses as _dataclasses

    from repro.sweep import (
        SweepRunner,
        SweepStore,
        load_sweep_spec,
        render_report_table,
    )

    spec = load_sweep_spec(args.spec)
    if args.baseline:
        spec = _dataclasses.replace(spec, baseline_report=args.baseline)
    if args.sweep_id and SweepStore.exists(args.sweeps_dir, args.sweep_id):
        store = SweepStore.open(args.sweeps_dir, args.sweep_id)
        if store.load_spec().to_dict() != spec.to_dict():
            from repro.errors import SweepError

            raise SweepError(
                f"sweep {args.sweep_id!r} already exists with a "
                f"different spec; pick a fresh --sweep-id"
            )
    else:
        store = SweepStore.create(
            args.sweeps_dir, spec, sweep_id=args.sweep_id
        )
    runner = SweepRunner(
        spec,
        store,
        _service_client(args),
        poll_s=args.poll,
        timeout_s=args.timeout,
        priority=args.priority,
    )
    printer = None
    if not args.quiet:
        printer = _SweepProgressPrinter(runner.events, store.sweep_id)
        printer.start()
    try:
        report = runner.run()
    finally:
        if printer is not None:
            printer.stop()
    if args.json:
        print(json.dumps(_sweep_summary(store, report), sort_keys=True))
    else:
        print(render_report_table(report))
    return 1 if report["regression"]["verdict"] == "regressed" else 0


def cmd_sweep_status(args) -> int:
    from repro.sweep import SweepStore, sweep_status

    store = SweepStore.open(args.sweeps_dir, args.sweep_id)
    client = _service_client(args) if args.url else None
    payload = sweep_status(store, client)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        rows = [
            ["sweep id", payload["sweep_id"]],
            ["name", payload["name"]],
            ["points", payload["n_points"]],
            ["submitted", payload["n_submitted"]],
            ["cached", payload["n_cached"]],
            ["cache hit ratio", f"{payload['cache_hit_ratio']:.2f}"],
            ["states", json.dumps(payload["states"], sort_keys=True)],
            ["complete", payload["complete"]],
            ["verdict", payload["verdict"]],
        ]
        print(format_table(["field", "value"], rows, title="Sweep status"))
    return 0 if payload["complete"] else 1


def cmd_sweep_report(args) -> int:
    from repro.errors import SweepError
    from repro.sweep import SweepStore, render_report_table

    store = SweepStore.open(args.sweeps_dir, args.sweep_id)
    report = store.read_report()
    if report is None:
        raise SweepError(
            f"sweep {args.sweep_id!r} has no report yet: run "
            f"`repro sweep run` to completion first"
        )
    if args.json:
        # The report verb emits the full canonical document (the same
        # bytes-modulo-whitespace as report.json), not the run summary.
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_report_table(report))
    return 1 if report["regression"]["verdict"] == "regressed" else 0


def cmd_conformance(args) -> int:
    from repro.conformance import (
        DESIGNS,
        DifferentialConfig,
        get_design,
        run_design,
    )

    designs = (
        [get_design(name) for name in args.design]
        if args.design
        else list(DESIGNS)
    )
    if getattr(args, "surrogate", False):
        return _conformance_surrogate(args, designs)
    config = DifferentialConfig(
        epsilon=args.epsilon,
        delta=args.delta,
        max_samples=args.max_samples,
        seed=args.seed,
    )
    reports = []
    for design in designs:
        print(
            f"conformance: {design.name} ({design.description})...",
            file=sys.stderr,
        )
        reports.append(run_design(design, config))
    all_passed = all(r.passed for r in reports)
    if args.json:
        payload = {
            "passed": all_passed,
            "reports": [r.to_dict() for r in reports],
        }
        print(json.dumps(payload, sort_keys=True))
        return 0 if all_passed else 1
    for report in reports:
        rows = [
            ["exact SSF (enumeration)", f"{report.exact_ssf:.5f}"],
            ["enumerated faults", report.n_enumerated],
        ]
        for v in report.verdicts:
            rows.extend(
                [
                    [f"{v.sampler}: SSF", f"{v.ssf:.5f}"],
                    [f"{v.sampler}: samples", v.n_samples],
                    [
                        f"{v.sampler}: {v.ci_kind} CI",
                        f"[{v.ci_low:.5f}, {v.ci_high:.5f}]",
                    ],
                    [
                        f"{v.sampler}: covers exact",
                        "yes" if v.covers_exact else "NO",
                    ],
                    [
                        f"{v.sampler}: outcome mismatches",
                        v.n_outcome_mismatches,
                    ],
                    [
                        f"{v.sampler}: g_(T,P) fit p-value",
                        f"{v.gof.p_value:.4f}" if v.gof else "-",
                    ],
                    [f"{v.sampler}: verdict", "PASS" if v.passed else "FAIL"],
                ]
            )
        print(
            format_table(
                ["quantity", "value"],
                rows,
                title=f"Conformance: {report.design}",
            )
        )
        print()
    print("conformance:", "PASS" if all_passed else "FAIL")
    return 0 if all_passed else 1


def _conformance_surrogate(args, designs) -> int:
    """``repro conformance --surrogate``: surrogate-vs-exact SSF error."""
    from repro.conformance import (
        SurrogateConformanceConfig,
        SurrogateConformanceReport,
        run_surrogate_design,
    )
    from repro.surrogate import CalibrationConfig

    config = SurrogateConformanceConfig(
        n_samples=args.surrogate_samples,
        tolerance=args.tolerance,
        seed=args.seed,
        calibration=CalibrationConfig(
            n_samples=args.calibration_samples, seed=args.seed
        ),
    )
    report = SurrogateConformanceReport()
    for design in designs:
        print(
            f"surrogate conformance: {design.name} "
            f"({design.description})...",
            file=sys.stderr,
        )
        report.verdicts.append(run_surrogate_design(design, config))
    payload = report.to_dict()
    if getattr(args, "report_out", None):
        import pathlib

        out = pathlib.Path(args.report_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, sort_keys=True, indent=2))
        print(f"surrogate error report -> {out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, sort_keys=True))
        return 0 if report.passed else 1
    for v in report.verdicts:
        rows = [
            ["exact SSF (enumeration)", f"{v.exact_ssf:.5f}"],
            ["surrogate SSF", f"{v.surrogate_ssf:.5f}"],
            ["surrogate |error|",
             f"{v.surrogate_error:.5f} (bound {v.surrogate_bound:.5f})"],
            ["two-stage SSF", f"{v.two_stage_ssf:.5f}"],
            ["two-stage |error|",
             f"{v.two_stage_error:.5f} (bound {v.two_stage_bound:.5f})"],
            ["exact-engine samples",
             f"{v.exact_invocations}/{v.n_samples}"],
            ["screen FNR", f"{v.fnr:.3f}"],
            ["holdout coverage", f"{v.holdout_coverage:.3f}"],
            ["verdict", "PASS" if v.passed else "FAIL"],
        ]
        print(
            format_table(
                ["quantity", "value"],
                rows,
                title=f"Surrogate conformance: {v.design}",
            )
        )
        print()
    print("surrogate conformance:", "PASS" if report.passed else "FAIL",
          f"(max |error| {report.max_error:.5f})")
    return 0 if report.passed else 1


def cmd_replay(args) -> int:
    from repro.campaign import RunStore
    from repro.conformance import replay_sample

    store = RunStore.open(args.runs_dir, args.run_id)
    print(
        f"replaying sample {args.sample} of run {store.run_id} "
        f"(rebuilding spec runtime)...",
        file=sys.stderr,
    )
    outcome = replay_sample(store, args.sample)
    if args.json:
        print(json.dumps(outcome.to_dict(), sort_keys=True))
        return 0 if outcome.bit_identical else 1
    rows = [
        ["run id", outcome.run_id],
        ["sample index", outcome.sample_index],
        ["chunk / offset", f"{outcome.chunk_index} / {outcome.chunk_offset}"],
        ["logged (t, centre)", f"({outcome.logged['t']}, {outcome.logged['centre']})"],
        ["logged outcome e", outcome.logged["e"]],
        ["replayed outcome e", outcome.replayed["e"]],
        [
            "bit-identical",
            "yes" if outcome.bit_identical else "NO",
        ],
    ]
    if not outcome.bit_identical:
        rows.append(["diverging fields", ", ".join(outcome.diff())])
    print(format_table(["quantity", "value"], rows, title="Sample replay"))
    return 0 if outcome.bit_identical else 1


def cmd_obs_report(args) -> int:
    from repro.campaign import RunStore
    from repro.obs.report import render_report

    store = RunStore.open(args.runs_dir, args.run_id)
    snapshot = store.read_metrics()
    if not snapshot:
        print(
            f"run {store.run_id} has no metrics.jsonl yet "
            f"(campaign never checkpointed?)",
            file=sys.stderr,
        )
        return 1
    print(
        render_report(
            snapshot, top_n=args.top, title=f"Run report: {store.run_id}"
        )
    )
    return 0


# ----------------------------------------------------------------------
# argument plumbing
# ----------------------------------------------------------------------
def _add_common(parser: argparse.ArgumentParser, with_sampler: bool = True) -> None:
    parser.add_argument(
        "--benchmark", choices=sorted(BENCHMARKS), default="write"
    )
    parser.add_argument("--variant", default="none",
                        help="none | parity | dual | dual+parity | tmr | tmr+parity")
    parser.add_argument("-n", "--samples", type=int, default=1000)
    parser.add_argument("--window", type=int, default=50)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--charac-cache", default=None,
                        help="JSON file from `characterize` to reuse")
    if with_sampler:
        parser.add_argument(
            "--sampler",
            choices=("random", "cone", "importance"),
            default="importance",
        )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    # --engine takes a free string on purpose: the variant list lives in
    # repro.core.engine.ENGINE_VARIANTS and an unknown name surfaces as
    # one `error:` line (exit 2) naming the valid variants.
    parser.add_argument("--engine", default="exact",
                        help="evaluation backend: exact | surrogate")
    parser.add_argument("--fidelity", default="single",
                        help="single | two-stage (surrogate screens, "
                        "exact confirms surrogate-positive hits)")
    parser.add_argument("--calibration", default=None,
                        help="surrogate calibration artifact from "
                        "`repro calibrate` (loaded if present, written "
                        "after an in-process fit otherwise)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-level Monte Carlo fault-attack vulnerability "
        "evaluation (DAC 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="platform summary")
    p.add_argument("--variant", default="none")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("evaluate", help="estimate the SSF of a benchmark")
    _add_common(p)
    p.add_argument("--subblock", type=float, default=0.125,
                   help="fraction of the MPU the attacker can aim at")
    p.add_argument("--impact-cycles", type=int, default=1,
                   help="consecutive cycles disturbed per injection")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel worker processes (fork platforms)")
    p.add_argument("--no-batch", action="store_true", dest="no_batch",
                   help="disable the batched sampling kernel (use the "
                   "scalar reference path)")
    p.add_argument("--baseline-store", default=None, metavar="DIR",
                   help="artifact-store root for persistent per-cycle "
                   "baselines (warm-starts repeat evaluations; never "
                   "changes the estimate)")
    _add_engine_flags(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser(
        "calibrate",
        help="fit the SEU surrogate model against the exact engine "
        "and persist it (with a goodness-of-fit report)",
    )
    _add_common(p)
    p.add_argument("--subblock", type=float, default=0.125,
                   help="spatial subblock fraction of the attack spec")
    p.add_argument("--holdout", type=float, default=0.2,
                   help="fraction of the budget held out for GOF + FNR")
    p.add_argument("--class-width", type=int, default=8,
                   help="injection cycles per cycle-class bucket")
    p.add_argument("--min-observations", type=int, default=4,
                   help="observations below which a cell falls back to "
                   "the exact engine")
    p.add_argument("--out", default="calibration.json",
                   help="artifact path (load with --calibration)")
    p.add_argument("--json", action="store_true",
                   help="emit the calibration report as JSON on stdout")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser(
        "enumerate",
        help="exhaustive single-bit register-fault census (exact SSF)",
    )
    _add_common(p, with_sampler=False)
    p.set_defaults(func=cmd_enumerate)

    p = sub.add_parser("export-verilog", help="emit the MPU netlist as Verilog")
    p.add_argument("--variant", default="none")
    p.add_argument("--out", default="mpu.v")
    p.add_argument("--module", default="mpu")
    p.set_defaults(func=cmd_export_verilog)

    p = sub.add_parser("characterize", help="run + save the pre-characterization")
    _add_common(p, with_sampler=False)
    p.add_argument("--out", default="characterization.json")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("harden", help="critical-register hardening study")
    _add_common(p, with_sampler=False)
    p.add_argument("--coverage", type=float, default=0.95)
    p.set_defaults(func=cmd_harden)

    p = sub.add_parser(
        "campaign",
        help="durable, resumable campaigns with adaptive stopping",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    pr = campaign_sub.add_parser("run", help="start a durable campaign")
    _add_common(pr)
    pr.add_argument("--subblock", type=float, default=0.125,
                    help="fraction of the MPU the attacker can aim at")
    pr.add_argument("--impact-cycles", type=int, default=1,
                    help="consecutive cycles disturbed per injection")
    pr.add_argument("--workers", type=int, default=1,
                    help="parallel worker processes (fork platforms)")
    pr.add_argument("--stop", choices=("fixed", "risk", "ci"),
                    default="fixed",
                    help="stopping rule: fixed N, (eps, delta) risk "
                    "target, or Wilson CI width")
    pr.add_argument("--epsilon", type=float, default=0.02,
                    help="risk mode: absolute SSF error target")
    pr.add_argument("--delta", type=float, default=0.05,
                    help="risk mode: failure probability")
    pr.add_argument("--ci-width", type=float, default=0.05,
                    help="ci mode: Wilson interval width target")
    pr.add_argument("--min-samples", type=int, default=200,
                    help="adaptive modes: samples before first stop check")
    pr.add_argument("--max-samples", type=int, default=100_000,
                    help="adaptive modes: hard sample cap")
    pr.add_argument("--chunk-size", type=int, default=50,
                    help="samples per work-stealing chunk")
    pr.add_argument("--runs-dir", default="runs",
                    help="directory holding durable run state")
    pr.add_argument("--run-id", default=None,
                    help="explicit run id (default: random)")
    pr.add_argument("--progress-every", type=int, default=1,
                    help="print progress every N chunks")
    pr.add_argument("--trace", action="store_true",
                    help="record spans to runs/<run-id>/trace.json "
                    "(Chrome trace_event format)")
    pr.add_argument("--no-batch", action="store_true", dest="no_batch",
                    help="disable the batched sampling kernel (use the "
                    "scalar reference path)")
    pr.add_argument("--baseline-store", default=None, metavar="DIR",
                    help="artifact-store root for persistent per-cycle "
                    "baselines (warm-starts repeat campaigns; excluded "
                    "from the spec hash)")
    _add_engine_flags(pr)
    pr.add_argument("--json", action="store_true",
                    help="emit the outcome as one JSON document on stdout")
    pr.set_defaults(func=cmd_campaign_run)

    pr = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign exactly"
    )
    pr.add_argument("run_id", help="run id to resume")
    pr.add_argument("--runs-dir", default="runs")
    pr.add_argument("--workers", type=int, default=1)
    pr.add_argument("--progress-every", type=int, default=1)
    pr.add_argument("--json", action="store_true",
                    help="emit the outcome as one JSON document on stdout")
    pr.set_defaults(func=cmd_campaign_resume)

    pr = campaign_sub.add_parser(
        "status", help="inspect one run (or list all runs)"
    )
    pr.add_argument("run_id", nargs="?", default=None)
    pr.add_argument("--runs-dir", default="runs")
    pr.add_argument("--metrics", action="store_true",
                    help="also render stage-time breakdown and outcome "
                    "rates from the run's exported metrics")
    pr.add_argument("--json", action="store_true",
                    help="emit status as JSON; exits 1 for an "
                    "interrupted run")
    pr.set_defaults(func=cmd_campaign_status)

    p = sub.add_parser(
        "obs", help="observability reports from exported run metrics"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    pr = obs_sub.add_parser(
        "report",
        help="render stage times, masking funnel, outcome rates, and "
        "slowest samples from a run's metrics.jsonl",
    )
    pr.add_argument("run_id", help="campaign run id")
    pr.add_argument("--runs-dir", default="runs")
    pr.add_argument("--top", type=int, default=10,
                    help="slowest-sample rows to show")
    pr.set_defaults(func=cmd_obs_report)

    p = sub.add_parser(
        "conformance",
        help="differential correctness gate: exhaustive oracle vs the "
        "Monte Carlo engine on the registry designs",
    )
    p.add_argument("--design", action="append", default=None,
                   help="registry design name (repeatable; default: all)")
    p.add_argument("--epsilon", type=float, default=0.05,
                   help="risk-target absolute SSF error")
    p.add_argument("--delta", type=float, default=0.05,
                   help="risk-target failure probability")
    p.add_argument("--max-samples", type=int, default=20_000,
                   help="hard sample cap per sampler")
    p.add_argument("--surrogate", action="store_true",
                   help="check the surrogate family instead: calibrate "
                   "per design and bound the surrogate-vs-exact SSF "
                   "error against the exhaustive oracle")
    p.add_argument("--surrogate-samples", type=int, default=4000,
                   help="MC budget per surrogate engine variant")
    p.add_argument("--calibration-samples", type=int, default=600,
                   help="exact-sample budget of the per-design fit")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="certified |SSF error| bound (plus a z*SE "
                   "sampling-noise margin)")
    p.add_argument("--report-out", default=None,
                   help="also write the surrogate error report JSON "
                   "to this path (CI artifact)")
    p.add_argument("--seed", type=int, default=7,
                   help="root seed of the differential seed tree")
    p.add_argument("--json", action="store_true",
                   help="emit the reports as one JSON document on stdout")
    p.set_defaults(func=cmd_conformance)

    p = sub.add_parser(
        "replay",
        help="re-execute one logged campaign sample from its seed "
        "lineage and check the outcome is bit-identical",
    )
    p.add_argument("run_id", help="campaign run id")
    p.add_argument("--sample", type=int, required=True,
                   help="global sample index within the run's chunk log")
    p.add_argument("--runs-dir", default="runs")
    p.add_argument("--json", action="store_true",
                   help="emit the comparison as JSON; exits 1 on "
                   "divergence")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("countermeasures", help="compare MPU variants")
    _add_common(p, with_sampler=False)
    p.add_argument("--variants", nargs="*", default=None,
                   help="variant names (default: the standard five)")
    p.set_defaults(func=cmd_countermeasures)

    # ------------------------------------------------------------------
    # service verbs
    # ------------------------------------------------------------------
    p = sub.add_parser(
        "serve",
        help="run the SSF evaluation service (job queue + result cache "
        "+ HTTP API)",
    )
    p.add_argument("--runs-dir", default="runs",
                   help="directory holding durable runs and job state")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    p.add_argument("--jobs", type=int, default=1,
                   help="campaigns executed concurrently")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes per campaign (fork platforms)")
    p.add_argument("--fleet", action="store_true",
                   help="dispatch chunks to attached fleet workers over "
                   "HTTP instead of evaluating in-process")
    p.add_argument("--lease-ttl", type=float, default=10.0,
                   help="fleet chunk lease TTL in seconds (heartbeats "
                   "renew it; expired leases are re-issued)")
    p.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                   help="launch N local fleet workers attached to this "
                   "coordinator (requires --fleet)")
    p.add_argument("--async-io", action="store_true",
                   help="serve with the asyncio front-end (cheap SSE "
                   "streaming for many watchers)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a fleet worker: lease chunks from a coordinator, "
        "evaluate them, stream results back",
    )
    p.add_argument("--attach", required=True, metavar="URL",
                   help="base URL of the coordinator (`repro serve --fleet`)")
    p.add_argument("--worker-id", default=None,
                   help="stable worker name (default: host-pid-random)")
    p.add_argument("--poll", type=float, default=0.5,
                   help="idle poll interval in seconds")
    p.add_argument("--max-chunks", type=int, default=None,
                   help="exit after serving this many chunks (testing)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request HTTP timeout in seconds")
    p.add_argument("--no-telemetry", action="store_true",
                   dest="no_telemetry",
                   help="do not ship spans/metrics/logs with chunk "
                   "results (shipping is always non-semantic: the "
                   "estimate is identical either way)")
    p.add_argument("--artifacts-dir", default=None, metavar="DIR",
                   help="local artifact-store root for persistent "
                   "per-cycle baselines (warm-starts the engine on "
                   "every leased chunk; never changes results)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("fleet", help="fleet introspection verbs")
    fleet_sub = p.add_subparsers(dest="fleet_cmd", required=True)
    pf = fleet_sub.add_parser(
        "status", help="workers, leases, and chunk progress"
    )
    pf.add_argument("--url", default="http://127.0.0.1:8321",
                    help="base URL of a running `repro serve`")
    pf.add_argument("--json", action="store_true",
                    help="emit the response as JSON on stdout")
    pf.set_defaults(func=cmd_fleet_status)

    p = sub.add_parser(
        "top", help="live dashboard for a running fleet campaign"
    )
    p.add_argument("job_id")
    p.add_argument("--url", default="http://127.0.0.1:8321",
                   help="base URL of a running `repro serve`")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds")
    p.add_argument("--plain", action="store_true",
                   help="append one status line per tick instead of "
                   "repainting (automatic when stdout is not a TTY)")
    p.set_defaults(func=cmd_top)

    def _client_flags(pc, with_json=True):
        pc.add_argument("--url", default="http://127.0.0.1:8321",
                        help="base URL of a running `repro serve`")
        if with_json:
            pc.add_argument("--json", action="store_true",
                            help="emit the response as JSON on stdout")

    p = sub.add_parser(
        "submit", help="submit a campaign spec to a running service"
    )
    _add_common(p)
    p.add_argument("--subblock", type=float, default=0.125)
    p.add_argument("--impact-cycles", type=int, default=1)
    p.add_argument("--stop", choices=("fixed", "risk", "ci"),
                   default="fixed")
    p.add_argument("--epsilon", type=float, default=0.02)
    p.add_argument("--delta", type=float, default=0.05)
    p.add_argument("--ci-width", type=float, default=0.05)
    p.add_argument("--min-samples", type=int, default=200)
    p.add_argument("--max-samples", type=int, default=100_000)
    p.add_argument("--chunk-size", type=int, default=50)
    p.add_argument("--no-batch", action="store_true", dest="no_batch",
                   help="disable the batched sampling kernel (use the "
                   "scalar reference path)")
    _add_engine_flags(p)
    p.add_argument("--priority", type=int, default=0,
                   help="higher-priority jobs run first")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait timeout in seconds")
    _client_flags(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="status of a service job")
    p.add_argument("job_id")
    _client_flags(p)
    p.set_defaults(func=cmd_job_status)

    p = sub.add_parser(
        "result", help="SSF result of a finished service job"
    )
    p.add_argument("job_id")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes first")
    p.add_argument("--timeout", type=float, default=600.0)
    _client_flags(p)
    p.set_defaults(func=cmd_job_result)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job_id")
    _client_flags(p)
    p.set_defaults(func=cmd_job_cancel)

    # ------------------------------------------------------------------
    # hardening sweeps
    # ------------------------------------------------------------------
    p = sub.add_parser(
        "sweep",
        help="campaign-of-campaigns hardening sweeps over a design space",
    )
    sweep_sub = p.add_subparsers(dest="sweep_cmd", required=True)

    ps = sweep_sub.add_parser(
        "run",
        help="expand a sweep spec, fan the points through a running "
        "service, and aggregate the comparative report",
    )
    ps.add_argument("spec", help="path to a SweepSpec JSON document")
    ps.add_argument("--sweeps-dir", default="sweeps",
                    help="directory holding durable sweep state")
    ps.add_argument("--sweep-id", default=None,
                    help="stable sweep id (re-running the same id "
                    "resumes: submissions dedupe on the service)")
    ps.add_argument("--baseline", default=None, metavar="REPORT",
                    help="pinned baseline report.json to regress "
                    "against (overrides the spec's baseline_report)")
    ps.add_argument("--priority", type=int, default=0,
                    help="priority for every member campaign")
    ps.add_argument("--poll", type=float, default=0.2,
                    help="member-job poll interval in seconds")
    ps.add_argument("--timeout", type=float, default=3600.0,
                    help="overall sweep timeout in seconds")
    ps.add_argument("--quiet", action="store_true",
                    help="suppress the stderr progress stream")
    _client_flags(ps)
    ps.set_defaults(func=cmd_sweep_run)

    ps = sweep_sub.add_parser(
        "status", help="fan-out progress of a sweep (exit 1 until the "
        "report exists)"
    )
    ps.add_argument("sweep_id")
    ps.add_argument("--sweeps-dir", default="sweeps")
    ps.add_argument("--url", default=None,
                    help="refresh point states from this running "
                    "service (default: durable log only)")
    ps.add_argument("--json", action="store_true",
                    help="emit the response as JSON on stdout")
    ps.set_defaults(func=cmd_sweep_status)

    ps = sweep_sub.add_parser(
        "report", help="comparative report of a finished sweep (exit 1 "
        "when the verdict is 'regressed')"
    )
    ps.add_argument("sweep_id")
    ps.add_argument("--sweeps-dir", default="sweeps")
    ps.add_argument("--json", action="store_true",
                    help="emit the summary as JSON on stdout")
    ps.set_defaults(func=cmd_sweep_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # One actionable line, never a traceback: a missing run id, a
        # corrupt run directory, or an unreachable service all land here.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
