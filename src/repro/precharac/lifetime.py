"""Step 3 of the pre-characterization: error lifetime and contamination.

For every register bit in the responding signals' cones, bit errors are
injected during an RTL run of the synthetic benchmark and the architectural
state diff against the golden run is tracked forward:

* **error lifetime** — cycles until the diff vanishes entirely (the error
  was masked / overwritten), capped at a horizon for errors that never die;
* **error contamination number** — how many *other* registers ever diverge
  from golden while the error lives.

Memory-type registers (long lifetime, ~0 contamination) get the analytical
evaluation path; computation-type registers stay on Monte Carlo but with a
small effective ``T`` range (paper, Observation 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CharacterizationError
from repro.rtl.simulator import RtlSimulator
from repro.utils.rng import SeedLike, as_generator


@dataclass
class RegisterCharacter:
    """Characterization of one register bit."""

    register: str
    bit: int
    lifetime: float             # mean over trials, cycles (capped at horizon)
    contamination: float        # mean number of other registers touched
    ever_masked: bool           # did the error die in at least one trial
    trials: int = 0


@dataclass
class LifetimeCampaign:
    """Results of the full injection campaign."""

    horizon: int
    results: Dict[Tuple[str, int], RegisterCharacter] = field(default_factory=dict)

    def lifetime_of(self, register: str, bit: int) -> float:
        char = self.results.get((register, bit))
        return char.lifetime if char else 0.0

    def register_means(self) -> Dict[str, Tuple[float, float]]:
        """Per-register (mean lifetime, mean contamination) over its bits."""
        acc: Dict[str, List[Tuple[float, float]]] = {}
        for (reg, _bit), char in self.results.items():
            acc.setdefault(reg, []).append((char.lifetime, char.contamination))
        return {
            reg: (
                float(np.mean([v[0] for v in vals])),
                float(np.mean([v[1] for v in vals])),
            )
            for reg, vals in acc.items()
        }

    def histogram(self, what: str = "lifetime", bins: Sequence[float] = ()) -> Dict[str, List[float]]:
        """Raw values for plotting Fig. 4-style distributions."""
        if what == "lifetime":
            values = [c.lifetime for c in self.results.values()]
        elif what == "contamination":
            values = [c.contamination for c in self.results.values()]
        else:
            raise CharacterizationError(f"unknown quantity {what!r}")
        return {"values": values}


def run_lifetime_campaign(
    device,
    n_cycles: int,
    target_bits: Sequence[Tuple[str, int]],
    horizon: int = 150,
    n_trials: int = 3,
    seed: SeedLike = 0,
    checkpoint_interval: int = 25,
    injection_window: Optional[Tuple[int, int]] = None,
) -> LifetimeCampaign:
    """Inject a flip into each (register, bit) and measure its character.

    ``device`` must already have its program loaded.  ``injection_window``
    bounds the injection cycles (defaults to the middle half of the run, so
    boot configuration is done and the horizon fits).
    """
    if n_cycles <= horizon + 10:
        raise CharacterizationError("run too short for the requested horizon")
    sim = RtlSimulator(device)
    golden = sim.golden_run(n_cycles, checkpoint_interval, collect_traces=False)

    # Golden register state per cycle, for diff tracking.
    golden_states: List[Dict[str, int]] = []
    sim.reset()
    for _ in range(n_cycles):
        golden_states.append(device.get_registers())
        sim.step()
    golden_states.append(device.get_registers())

    rng = as_generator(seed)
    lo, hi = injection_window or (n_cycles // 4, max(n_cycles // 4 + 1, n_cycles - horizon - 5))
    if lo >= hi:
        raise CharacterizationError("empty injection window")

    campaign = LifetimeCampaign(horizon=horizon)
    for register, bit in target_bits:
        lifetimes: List[float] = []
        contaminations: List[float] = []
        masked_any = False
        for _trial in range(n_trials):
            inject_cycle = int(rng.integers(lo, hi))
            sim.restart_from(golden, inject_cycle)
            device.flip_register_bit(register, bit)
            touched: set = set()
            lifetime = horizon
            for offset in range(1, horizon + 1):
                sim.step()
                cycle = inject_cycle + offset
                if cycle > n_cycles:
                    break
                current = device.get_registers()
                reference = golden_states[cycle]
                diff = [
                    name
                    for name, value in current.items()
                    if value != reference[name]
                ]
                touched.update(name for name in diff if name != register)
                if not diff:
                    lifetime = offset
                    masked_any = True
                    break
            lifetimes.append(float(lifetime))
            contaminations.append(float(len(touched)))
        campaign.results[(register, bit)] = RegisterCharacter(
            register=register,
            bit=bit,
            lifetime=float(np.mean(lifetimes)),
            contamination=float(np.mean(contaminations)),
            ever_masked=masked_any,
            trials=n_trials,
        )
    return campaign
