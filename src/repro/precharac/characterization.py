"""Pre-characterization orchestration and its result object.

:func:`precharacterize` runs the three steps against one design and bundles
everything the importance sampler and the engine's analytical path need:

* unrolled cones of the responding signals (``Ω_i``; with the frame
  convention of :mod:`repro.netlist.cones`, frame ``i`` is exactly the set
  of nodes attackable at timing distance ``t = i``),
* per-(node, frame) bit-flip correlations,
* per-register-bit lifetime/contamination and the memory/computation
  classification,
* ``L(g)`` for every node (registers: own lifetime; combinational gates:
  max lifetime over the registers that can latch their transients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CharacterizationError
from repro.netlist.cones import ConeExtractor, UnrolledCones
from repro.netlist.graph import Netlist
from repro.precharac.lifetime import LifetimeCampaign, run_lifetime_campaign
from repro.precharac.signatures import SignatureAnalysis, analyze_signatures
from repro.utils.rng import SeedLike


@dataclass
class CharacterizationConfig:
    """Knobs of the pre-characterization."""

    max_frame: int = 50          # deepest unrolled fanin frame == max t
    max_fanout_frame: int = 4
    lifetime_horizon: int = 150
    lifetime_trials: int = 2
    # memory-type iff lifetime >= frac * horizon and contamination <= max
    memory_lifetime_frac: float = 0.9
    memory_contamination_max: float = 2.0
    seed: Optional[int] = 2024


@dataclass
class SystemCharacterization:
    """Everything the sampler and engine consume."""

    netlist: Netlist
    responding: Tuple[int, ...]
    cones: UnrolledCones
    signatures: SignatureAnalysis
    lifetime: LifetimeCampaign
    # per netlist node id: L(g)
    node_lifetime: Dict[int, float]
    memory_type: Set[Tuple[str, int]]
    computation_type: Set[Tuple[str, int]]
    config: CharacterizationConfig

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def omega_nodes(self, frame: int) -> Set[int]:
        """``Ω_i``: cone nodes attackable at timing distance ``frame``."""
        return self.cones.nodes_at(frame)

    def corr(self, nid: int, frame: int) -> float:
        return self.signatures.corr(nid, frame)

    def L(self, nid: int) -> float:  # noqa: N802 - paper notation
        return self.node_lifetime.get(nid, 0.0)

    def is_memory_type(self, register: str, bit: int) -> bool:
        return (register, bit) in self.memory_type

    def memory_type_registers(self) -> Set[str]:
        """Registers *all* of whose characterized bits are memory-type."""
        regs_all: Dict[str, List[bool]] = {}
        for reg, bit in self.memory_type | self.computation_type:
            regs_all.setdefault(reg, []).append((reg, bit) in self.memory_type)
        return {reg for reg, flags in regs_all.items() if all(flags)}

    def cone_register_bits(self) -> List[Tuple[str, int]]:
        """(register, bit) of every DFF inside the cones."""
        bits: List[Tuple[str, int]] = []
        for nid in self.cones.all_nodes():
            node = self.netlist.node(nid)
            if node.is_dff and node.register is not None:
                bits.append((node.register, node.bit))
        return sorted(set(bits))

    def sample_space_profile(self, max_frame: Optional[int] = None) -> Dict[str, List[int]]:
        """Data behind the paper's Fig. 8(b): per unrolled frame, the total
        register count vs cone registers vs cone computation-type registers."""
        limit = max_frame if max_frame is not None else self.config.max_frame
        total = sum(1 for n in self.netlist.nodes if n.is_dff)
        totals, cone_regs, cone_comp, eligible = [], [], [], []
        for frame in range(limit + 1):
            nodes = self.omega_nodes(frame)
            regs = [
                self.netlist.node(nid)
                for nid in nodes
                if self.netlist.node(nid).is_dff
            ]
            comp = [
                node
                for node in regs
                if (node.register, node.bit) in self.computation_type
            ]
            # Computation-type registers whose error lifetime still reaches
            # the target from this depth — the series that shrinks with the
            # unrolled cycle index in the paper's Fig. 8(b).
            alive = [node for node in comp if self.L(node.nid) >= frame]
            totals.append(total)
            cone_regs.append(len(regs))
            cone_comp.append(len(comp))
            eligible.append(len(alive))
        return {
            "total": totals,
            "cone_registers": cone_regs,
            "cone_computation_registers": cone_comp,
            "eligible_computation_registers": eligible,
        }


def classify_registers(
    campaign: LifetimeCampaign, config: CharacterizationConfig
) -> Tuple[Set[Tuple[str, int]], Set[Tuple[str, int]]]:
    """Observation 3's split: memory-type vs computation-type bits."""
    memory: Set[Tuple[str, int]] = set()
    computation: Set[Tuple[str, int]] = set()
    threshold = config.memory_lifetime_frac * campaign.horizon
    for key, char in campaign.results.items():
        if (
            char.lifetime >= threshold
            and char.contamination <= config.memory_contamination_max
        ):
            memory.add(key)
        else:
            computation.add(key)
    return memory, computation


def precharacterize(
    netlist: Netlist,
    responding: Sequence[int],
    mpu_trace: Sequence,
    device,
    n_cycles: int,
    config: Optional[CharacterizationConfig] = None,
    excitation_trace: Optional[Sequence] = None,
) -> SystemCharacterization:
    """Run all three pre-characterization steps.

    ``mpu_trace`` comes from a recorded synthetic-benchmark run of the
    *same device* whose netlist-level block is ``netlist``; ``device`` is
    reused (and reset) for the lifetime campaign over ``n_cycles``.

    ``excitation_trace`` optionally provides a second synthetic run used
    only for the switching-signature/correlation step — typically a
    workload that also exercises *configuration* diversity (MPU
    reprogramming), so rarely-toggling state still earns a meaningful
    ``Corr_i``.  Defaults to ``mpu_trace``.
    """
    config = config or CharacterizationConfig()
    if not responding:
        raise CharacterizationError("need at least one responding signal")

    extractor = ConeExtractor(netlist)
    cones = extractor.extract_many(
        responding,
        max_fanin_depth=config.max_frame,
        max_fanout_depth=config.max_fanout_frame,
    )

    signatures = analyze_signatures(
        netlist,
        cones,
        excitation_trace if excitation_trace is not None else mpu_trace,
        responding,
    )

    target_bits = [
        (netlist.node(nid).register, netlist.node(nid).bit)
        for nid in sorted(cones.all_nodes())
        if netlist.node(nid).is_dff and netlist.node(nid).register is not None
    ]
    target_bits = sorted(set(target_bits))
    campaign = run_lifetime_campaign(
        device,
        n_cycles=n_cycles,
        target_bits=target_bits,
        horizon=config.lifetime_horizon,
        n_trials=config.lifetime_trials,
        seed=config.seed,
    )

    per_dff: Dict[int, float] = {}
    for (reg, bit), char in campaign.results.items():
        try:
            nid = netlist.register_dff(reg, bit).nid
        except Exception:  # register not in this netlist (never for cones)
            continue
        per_dff[nid] = char.lifetime
    node_lifetime = extractor.max_over_latching(per_dff)

    memory, computation = classify_registers(campaign, config)
    return SystemCharacterization(
        netlist=netlist,
        responding=tuple(responding),
        cones=cones,
        signatures=signatures,
        lifetime=campaign,
        node_lifetime=node_lifetime,
        memory_type=memory,
        computation_type=computation,
        config=config,
    )
