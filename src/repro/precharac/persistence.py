"""Save/load of pre-characterization results.

The paper stresses the pre-characterization "only needs to be conducted
once"; this module makes that concrete by serializing a
:class:`~repro.precharac.characterization.SystemCharacterization` to JSON
so later sessions (or other machines) skip the campaign.

The switching-signature *bodies* are not stored — only the derived
correlations, which is all the samplers consume.  A fingerprint of the
netlist (node count, register manifest, responding signals) guards against
loading a characterization into a different design.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Union

from repro.errors import CharacterizationError
from repro.netlist.cones import UnrolledCones
from repro.netlist.graph import Netlist
from repro.precharac.characterization import (
    CharacterizationConfig,
    SystemCharacterization,
)
from repro.precharac.lifetime import LifetimeCampaign, RegisterCharacter
from repro.precharac.signatures import SignatureAnalysis

FORMAT_VERSION = 1


def _fingerprint(netlist: Netlist, responding) -> Dict[str, object]:
    return {
        "n_nodes": len(netlist),
        "registers": netlist.register_widths(),
        "responding": sorted(int(r) for r in responding),
    }


def save_characterization(
    characterization: SystemCharacterization,
    path: Union[str, pathlib.Path],
) -> None:
    """Serialize to a JSON file."""
    cones = characterization.cones
    payload = {
        "version": FORMAT_VERSION,
        "fingerprint": _fingerprint(
            characterization.netlist, characterization.responding
        ),
        "config": {
            "max_frame": characterization.config.max_frame,
            "max_fanout_frame": characterization.config.max_fanout_frame,
            "lifetime_horizon": characterization.config.lifetime_horizon,
            "lifetime_trials": characterization.config.lifetime_trials,
            "memory_lifetime_frac": characterization.config.memory_lifetime_frac,
            "memory_contamination_max": characterization.config.memory_contamination_max,
            "seed": characterization.config.seed,
        },
        "cones": {
            "responding": cones.responding,
            "fanin": {str(d): sorted(nodes) for d, nodes in cones.fanin.items()},
            "fanout": {str(d): sorted(nodes) for d, nodes in cones.fanout.items()},
        },
        "correlations": [
            [nid, frame, value]
            for (nid, frame), value in
            characterization.signatures.correlations.items()
        ],
        "n_cycles": characterization.signatures.n_cycles,
        "lifetime": {
            "horizon": characterization.lifetime.horizon,
            "results": [
                {
                    "register": char.register,
                    "bit": char.bit,
                    "lifetime": char.lifetime,
                    "contamination": char.contamination,
                    "ever_masked": char.ever_masked,
                    "trials": char.trials,
                }
                for char in characterization.lifetime.results.values()
            ],
        },
        "node_lifetime": {
            str(nid): value
            for nid, value in characterization.node_lifetime.items()
            if value > 0.0
        },
        "memory_type": sorted(list(b) for b in characterization.memory_type),
        "computation_type": sorted(
            list(b) for b in characterization.computation_type
        ),
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_characterization(
    path: Union[str, pathlib.Path],
    netlist: Netlist,
) -> SystemCharacterization:
    """Deserialize; ``netlist`` must match the stored fingerprint."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CharacterizationError(f"cannot load characterization: {exc}") from exc
    if payload.get("version") != FORMAT_VERSION:
        raise CharacterizationError(
            f"unsupported characterization format {payload.get('version')!r}"
        )

    responding = tuple(payload["fingerprint"]["responding"])
    expected = _fingerprint(netlist, responding)
    stored = payload["fingerprint"]
    if (
        stored["n_nodes"] != expected["n_nodes"]
        or stored["registers"] != expected["registers"]
    ):
        raise CharacterizationError(
            "characterization was produced for a different netlist"
        )

    config = CharacterizationConfig(**payload["config"])
    cones = UnrolledCones(responding=payload["cones"]["responding"])
    for d, nodes in payload["cones"]["fanin"].items():
        cones.fanin[int(d)] = set(nodes)
    for d, nodes in payload["cones"]["fanout"].items():
        cones.fanout[int(d)] = set(nodes)

    signatures = SignatureAnalysis(
        n_cycles=payload["n_cycles"],
        signatures={},
        correlations={
            (int(nid), int(frame)): float(value)
            for nid, frame, value in payload["correlations"]
        },
    )

    campaign = LifetimeCampaign(horizon=payload["lifetime"]["horizon"])
    for item in payload["lifetime"]["results"]:
        char = RegisterCharacter(**item)
        campaign.results[(char.register, char.bit)] = char

    node_lifetime = {n.nid: 0.0 for n in netlist.nodes}
    for nid, value in payload["node_lifetime"].items():
        node_lifetime[int(nid)] = float(value)

    return SystemCharacterization(
        netlist=netlist,
        responding=responding,
        cones=cones,
        signatures=signatures,
        lifetime=campaign,
        node_lifetime=node_lifetime,
        memory_type={(reg, bit) for reg, bit in payload["memory_type"]},
        computation_type={
            (reg, bit) for reg, bit in payload["computation_type"]
        },
        config=config,
    )
