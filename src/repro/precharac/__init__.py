"""System pre-characterization (Section 4 of the paper).

Three steps, run once per (design, responding-signal set):

1. **Cone extraction** (Observation 1): responding signals are identified
   from the system specification; the fanin/fanout cones on the unrolled
   netlist bound the sample space.
2. **Switching signatures + bit-flip correlation** (Observation 2): a fast
   RTL run of synthetic benchmarks records register values; a bit-parallel
   gate-level re-simulation derives each node's switching signature, from
   which ``Corr_i(g, rs)`` is computed.
3. **Error lifetime + contamination number** (Observation 3): bit flips are
   injected into each cone register during RTL simulation; how long the
   state diff survives (lifetime) and how many other registers it touches
   (contamination) classify registers into *memory-type* and
   *computation-type*.

The result object, :class:`SystemCharacterization`, feeds the importance
sampler and the engine's analytical path.
"""

from repro.precharac.signatures import SignatureAnalysis, compute_signatures
from repro.precharac.lifetime import (
    LifetimeCampaign,
    RegisterCharacter,
    run_lifetime_campaign,
)
from repro.precharac.characterization import (
    CharacterizationConfig,
    SystemCharacterization,
    precharacterize,
)
from repro.precharac.persistence import (
    load_characterization,
    save_characterization,
)

__all__ = [
    "SignatureAnalysis",
    "compute_signatures",
    "LifetimeCampaign",
    "RegisterCharacter",
    "run_lifetime_campaign",
    "CharacterizationConfig",
    "SystemCharacterization",
    "precharacterize",
    "load_characterization",
    "save_characterization",
]
