"""Step 2 of the pre-characterization: signatures and bit-flip correlation.

The RTL simulation of a synthetic benchmark records, per cycle, the MPU's
input port values and register state (:class:`repro.soc.soc.MpuTraceEntry`).
A single bit-parallel pass of the gate-level evaluator then yields every
node's logic-value trace, the switching signatures follow by a shifted XOR,
and the correlation

    ``Corr_i(g, rs) = |ss(g) & (ss(rs) << shift)| / |ss(g)|``

is evaluated per (node, frame).  ``shift`` aligns the node's toggle with
the responding register's Q toggle: a frame-``i`` combinational toggle
shows at the Q pin ``i + 1`` cycles later, a frame-``i`` register toggle
``i`` cycles later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import CharacterizationError
from repro.gatesim.logic import LogicEvaluator, signatures_from_values
from repro.netlist.cones import UnrolledCones
from repro.netlist.graph import Netlist
from repro.utils.bitvec import BitSequence


@dataclass
class SignatureAnalysis:
    """Signatures plus per-(node, frame) correlations.

    ``correlations[(nid, frame)]`` is the maximum correlation over the
    responding signals (a node helping *any* responding signal flip is
    interesting to the sampler).
    """

    n_cycles: int
    signatures: Dict[int, BitSequence]
    correlations: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def corr(self, nid: int, frame: int) -> float:
        return self.correlations.get((nid, frame), 0.0)


def compute_signatures(
    netlist: Netlist,
    mpu_trace: Sequence,
    evaluator: LogicEvaluator = None,
) -> Dict[int, BitSequence]:
    """Bit-parallel logic simulation of the recorded trace -> signatures."""
    if not mpu_trace:
        raise CharacterizationError("empty MPU trace; record a synthetic run first")
    evaluator = evaluator or LogicEvaluator(netlist)
    input_trace: Dict[str, List[int]] = {
        base: [entry.inputs[base] for entry in mpu_trace]
        for base in evaluator.input_ports()
    }
    state_trace: Dict[str, List[int]] = {
        reg: [entry.state[reg] for entry in mpu_trace]
        for reg in netlist.registers
    }
    values = evaluator.evaluate_trace(input_trace, state_trace)
    return signatures_from_values(values)


def correlate_cones(
    netlist: Netlist,
    cones: UnrolledCones,
    signatures: Mapping[int, BitSequence],
    responding: Sequence[int],
) -> Dict[Tuple[int, int], float]:
    """``Corr_i`` for every cone node against every responding signal."""
    out: Dict[Tuple[int, int], float] = {}
    rs_signatures = {rs: signatures[rs] for rs in responding}
    for frame, nodes in cones.fanin.items():
        for nid in nodes:
            node = netlist.node(nid)
            sig = signatures.get(nid)
            if sig is None or sig.popcount() == 0:
                continue
            shift = frame if node.is_dff else frame + 1
            best = 0.0
            for rs_sig in rs_signatures.values():
                best = max(best, sig.correlation_with(rs_sig, shift))
            if best > 0.0:
                out[(nid, frame)] = best
    return out


def analyze_signatures(
    netlist: Netlist,
    cones: UnrolledCones,
    mpu_trace: Sequence,
    responding: Sequence[int],
) -> SignatureAnalysis:
    """Convenience wrapper: signatures + correlations in one call."""
    signatures = compute_signatures(netlist, mpu_trace)
    correlations = correlate_cones(netlist, cones, signatures, responding)
    n_cycles = len(mpu_trace)
    return SignatureAnalysis(
        n_cycles=n_cycles, signatures=signatures, correlations=correlations
    )
