"""Countermeasure evaluation (the paper's third design-guidance goal).

Section 2 of the paper lists "evaluate and compare the effectiveness of
different countermeasures" among the framework's purposes; Section 6
evaluates one (selectively hardened flip-flops, analytically).  This
package evaluates *structural RTL countermeasures* end-to-end: each
:class:`~repro.soc.mpu.MpuVariant` (configuration parity, dual-rail or TMR
decision registers) is elaborated, pre-characterized and attacked by the
full cross-level engine, yielding a measured SSF/area trade-off table.
"""

from repro.countermeasures.study import (
    CountermeasureResult,
    CountermeasureStudy,
    STANDARD_VARIANTS,
)

__all__ = [
    "CountermeasureResult",
    "CountermeasureStudy",
    "STANDARD_VARIANTS",
]
