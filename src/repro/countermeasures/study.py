"""End-to-end SSF evaluation of structural MPU countermeasures.

For each variant the full pipeline runs from scratch — elaboration,
placement, golden run, pre-characterization, Monte Carlo campaign — because
a countermeasure changes the netlist, the register manifest, *and* the
characterization (parity bits are memory-type; redundant rails are
computation-type decision registers).

The interesting security phenomenology this surfaces:

* **cfg parity** kills the dominant attack class (single-bit configuration
  upsets become fail-secure violations) but leaves the decision-register
  and combinational attack paths open;
* **dual-rail decision registers** force double upsets on the rails but
  share the combinational check logic, so a single well-placed transient
  still defeats them (a common-mode weakness the evaluation exposes);
* **TMR** additionally out-votes any single latched error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.context import EvaluationContext, build_context
from repro.core.engine import CrossLevelEngine
from repro.core.results import CampaignResult
from repro.precharac.characterization import CharacterizationConfig
from repro.sampling import FaninConeSampler, ImportanceSampler, RandomSampler
from repro.soc.mpu import MpuVariant
from repro.soc.programs import BenchmarkProgram

STANDARD_VARIANTS: List[MpuVariant] = [
    MpuVariant(),
    MpuVariant(cfg_parity=True),
    MpuVariant(redundancy="dual"),
    MpuVariant(redundancy="dual", cfg_parity=True),
    MpuVariant(redundancy="tmr", cfg_parity=True),
]


@dataclass
class CountermeasureResult:
    """Measured security/cost numbers for one variant."""

    variant: MpuVariant
    ssf: float
    variance: float
    n_success: int
    n_samples: int
    area_um2: float
    area_overhead: float          # vs the baseline variant
    wall_time_s: float
    campaign: CampaignResult = field(repr=False, default=None)
    context: EvaluationContext = field(repr=False, default=None)

    @property
    def name(self) -> str:
        return self.variant.name

    def improvement_over(self, baseline: "CountermeasureResult") -> float:
        if self.ssf <= 0:
            return float("inf")
        return baseline.ssf / self.ssf


class CountermeasureStudy:
    """Runs the same attack campaign against every MPU variant."""

    def __init__(
        self,
        benchmark_factory: Callable[[], BenchmarkProgram],
        variants: Optional[Sequence[MpuVariant]] = None,
        n_samples: int = 1000,
        window: int = 50,
        seed: int = 404,
        sampler: str = "importance",
        charac_config: Optional[CharacterizationConfig] = None,
        spec_kwargs: Optional[dict] = None,
    ):
        if sampler not in ("random", "cone", "importance"):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.benchmark_factory = benchmark_factory
        self.variants = list(variants or STANDARD_VARIANTS)
        self.n_samples = n_samples
        self.window = window
        self.seed = seed
        self.sampler = sampler
        self.charac_config = charac_config
        self.spec_kwargs = dict(spec_kwargs or {})

    def _make_sampler(self, spec, context):
        if self.sampler == "random":
            return RandomSampler(spec)
        if self.sampler == "cone":
            return FaninConeSampler(spec, context.characterization)
        return ImportanceSampler(
            spec, context.characterization, placement=context.placement
        )

    def evaluate_variant(self, variant: MpuVariant) -> CountermeasureResult:
        from repro import default_attack_spec  # local: avoids import cycle

        start = time.perf_counter()
        context = build_context(
            self.benchmark_factory(),
            charac_config=self.charac_config,
            mpu_variant=variant,
        )
        spec = default_attack_spec(
            context, window=self.window, **self.spec_kwargs
        )
        engine = CrossLevelEngine(context, spec)
        sampler = self._make_sampler(spec, context)
        campaign = engine.evaluate(sampler, self.n_samples, seed=self.seed)
        wall = time.perf_counter() - start
        return CountermeasureResult(
            variant=variant,
            ssf=campaign.ssf,
            variance=campaign.variance,
            n_success=campaign.n_success,
            n_samples=campaign.n_samples,
            area_um2=context.netlist.area(),
            area_overhead=0.0,  # filled in by run()
            wall_time_s=wall,
            campaign=campaign,
            context=context,
        )

    def run(self) -> List[CountermeasureResult]:
        """Evaluate every variant; first one is the baseline for overheads."""
        results = [self.evaluate_variant(v) for v in self.variants]
        base_area = results[0].area_um2
        for result in results:
            result.area_overhead = result.area_um2 / base_area - 1.0
        return results

    @staticmethod
    def table_rows(results: List[CountermeasureResult]) -> List[List[object]]:
        """Rows for :func:`repro.analysis.reporting.format_table`."""
        baseline = results[0]
        rows: List[List[object]] = []
        for result in results:
            rows.append(
                [
                    result.name,
                    f"{result.ssf:.5f}",
                    f"{result.n_success}/{result.n_samples}",
                    (
                        f"{result.improvement_over(baseline):.1f}x"
                        if result is not baseline
                        else "1.0x"
                    ),
                    f"{100 * result.area_overhead:.1f} %",
                ]
            )
        return rows
