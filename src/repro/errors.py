"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch framework failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class NetlistError(ReproError):
    """Structural problem in a gate-level netlist (bad wiring, cycles, ...)."""


class ElaborationError(ReproError):
    """The word-level HDL description could not be lowered to gates."""


class SimulationError(ReproError):
    """An RTL or gate-level simulation entered an invalid state."""


class CheckpointError(SimulationError):
    """Golden checkpoint could not be created or restored."""

class AssemblyError(ReproError):
    """The assembler rejected a program."""


class AttackModelError(ReproError):
    """An attack specification or distribution is inconsistent."""


class CharacterizationError(ReproError):
    """System pre-characterization failed or is missing required data."""


class SamplingError(ReproError):
    """A sampling strategy was configured or used incorrectly."""


class EvaluationError(ReproError):
    """The SSF evaluation engine hit an unrecoverable inconsistency."""


class ServiceError(ReproError):
    """The evaluation service (or its client) failed a request."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status  # HTTP status code, 0 for transport errors


class SweepError(ReproError):
    """A hardening sweep (design-space campaign-of-campaigns) failed.

    Raised for malformed :class:`~repro.sweep.spec.SweepSpec` documents
    (unknown axis/base fields, empty axes, points that do not form a
    valid :class:`~repro.campaign.spec.CampaignSpec`) and for sweep
    execution failures (failed member jobs, missing baseline reports).
    """


class JobCancelled(ReproError):
    """Raised inside a service worker to unwind a cancelled campaign."""


class LeaseGone(ServiceError):
    """A fleet chunk lease is unknown, expired, or superseded.

    Workers holding a gone lease must discard their in-flight chunk —
    the coordinator has (or will) re-issue it, and because chunks are
    SeedSequence-seeded the replacement evaluation is bit-identical.
    """

    def __init__(self, message: str):
        super().__init__(message, status=410)
