"""Save/load of calibrated surrogate models.

The calibration pass is the expensive half of the surrogate workflow
(it runs the exact engine on the budgeted sample set), so its output is
persisted as a versioned JSON artifact — ``repro calibrate --out`` — and
reused across campaigns, machines, and the service's content-addressed
artifact cache.  A netlist fingerprint (node count + register manifest,
the same guard :mod:`repro.precharac.persistence` uses) prevents loading
a model calibrated for a different design; the goodness-of-fit report is
embedded so consumers can inspect the calibration quality of an artifact
without rerunning anything.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

from repro.errors import EvaluationError
from repro.netlist.graph import Netlist
from repro.surrogate.model import SurrogateModel

FORMAT_VERSION = 1


def _fingerprint(netlist: Netlist) -> Dict[str, object]:
    return {
        "n_nodes": len(netlist),
        "registers": netlist.register_widths(),
    }


def save_surrogate_model(
    model: SurrogateModel,
    netlist: Netlist,
    path: Union[str, pathlib.Path],
    report=None,
) -> None:
    """Serialize the model (plus its calibration report) to JSON.

    ``report`` accepts the :class:`~repro.surrogate.calibrate.CalibrationReport`
    itself or its plain-dict form.
    """
    if report is not None and hasattr(report, "to_dict"):
        report = report.to_dict()
    payload = {
        "version": FORMAT_VERSION,
        "fingerprint": _fingerprint(netlist),
        "model": model.to_dict(),
        "report": report,
    }
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(path)


def load_surrogate_model(
    path: Union[str, pathlib.Path],
    netlist: Netlist,
) -> SurrogateModel:
    """Deserialize; ``netlist`` must match the stored fingerprint."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise EvaluationError(
            f"cannot load surrogate model {path}: {exc}"
        ) from exc
    if payload.get("version") != FORMAT_VERSION:
        raise EvaluationError(
            f"unsupported surrogate model format {payload.get('version')!r}"
        )
    stored = payload.get("fingerprint", {})
    expected = _fingerprint(netlist)
    if (
        stored.get("n_nodes") != expected["n_nodes"]
        or stored.get("registers") != expected["registers"]
    ):
        raise EvaluationError(
            "surrogate model was calibrated for a different netlist"
        )
    return SurrogateModel.from_dict(payload["model"])


def load_report(path: Union[str, pathlib.Path]) -> Optional[dict]:
    """The embedded calibration report of an artifact (or ``None``)."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise EvaluationError(
            f"cannot load surrogate model {path}: {exc}"
        ) from exc
    return payload.get("report")
