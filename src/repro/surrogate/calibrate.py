"""Calibration: fit the SEU-pattern model against the exact engine.

The calibration pass spends a budgeted number of *exact* samples and
turns them into the surrogate's empirical per-(cone, cycle-class)
distributions.  The budget is split into a fit set and a holdout set
(deterministic interleave, so the split is reproducible from the seed
alone); the holdout backs two quality measures that ship inside the
artifact:

* a **goodness-of-fit report** — a two-sample KS test of the latched
  bit-multiplicity distribution (fit vs holdout) and a chi-square test
  of the holdout outcome-category counts against the fit frequencies,
  both from the pure-stdlib helpers in :mod:`repro.utils.stats`;
* the **screen false-negative rate** — every holdout sample the exact
  engine scored as a hit is re-screened through the freshly fitted
  surrogate; the fraction of those hits the screen misses is the
  ``fnr`` the two-stage estimator corrects by.

Calibration seeds live in their own spawn-key namespace
(:data:`CALIBRATION_SPAWN_KEY`), so a calibration pass never perturbs
the campaign's sample seed tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.engine import CrossLevelEngine
from repro.core.results import OutcomeCategory, SampleRecord
from repro.errors import EvaluationError
from repro.sampling.base import Sampler
from repro.surrogate.model import (
    SurrogateModel,
    canonical_pattern,
    register_footprints,
)
from repro.utils.rng import as_generator, sample_seed_sequence
from repro.utils.stats import chi_square_gof, ks_2samp

#: Spawn-key prefix namespacing every calibration RNG stream away from
#: the campaign seed tree (chunk streams use bare ``(index,)`` keys).
CALIBRATION_SPAWN_KEY = 0xCA1B


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of one calibration pass (echoed into the artifact)."""

    n_samples: int = 400          # exact-engine budget
    holdout_fraction: float = 0.2  # fraction reserved for GOF + FNR
    cycle_class_width: int = 8     # injection cycles per class bucket
    min_observations: int = 4      # below this a cell is "uncovered"
    seed: int = 11                 # root of the calibration seed tree
    max_fnr: float = 0.8           # refuse models with a worse screen

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise EvaluationError("calibration n_samples must be positive")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise EvaluationError("holdout_fraction must lie in (0, 1)")
        if self.cycle_class_width <= 0:
            raise EvaluationError("cycle_class_width must be positive")

    def to_dict(self) -> dict:
        return {
            "n_samples": self.n_samples,
            "holdout_fraction": self.holdout_fraction,
            "cycle_class_width": self.cycle_class_width,
            "min_observations": self.min_observations,
            "seed": self.seed,
            "max_fnr": self.max_fnr,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationConfig":
        return cls(**data)


@dataclass(frozen=True)
class CalibrationReport:
    """Goodness-of-fit summary persisted inside the artifact."""

    n_samples: int
    n_fit: int
    n_holdout: int
    n_cells: int
    holdout_coverage: float     # holdout samples landing in a fitted cell
    fnr: float                  # screen false-negative rate
    n_true_positives: int       # holdout hits the FNR was measured on
    multiplicity_ks_statistic: float
    multiplicity_ks_p_value: float
    category_chi2_statistic: float
    category_chi2_p_value: float

    def to_dict(self) -> dict:
        return {
            "n_samples": self.n_samples,
            "n_fit": self.n_fit,
            "n_holdout": self.n_holdout,
            "n_cells": self.n_cells,
            "holdout_coverage": self.holdout_coverage,
            "fnr": self.fnr,
            "n_true_positives": self.n_true_positives,
            "multiplicity_ks_statistic": self.multiplicity_ks_statistic,
            "multiplicity_ks_p_value": self.multiplicity_ks_p_value,
            "category_chi2_statistic": self.category_chi2_statistic,
            "category_chi2_p_value": self.category_chi2_p_value,
        }


def _split(
    records: List[SampleRecord], holdout_fraction: float
) -> Tuple[List[SampleRecord], List[SampleRecord]]:
    """Deterministic interleaved fit/holdout split (every k-th held out)."""
    stride = max(2, int(round(1.0 / holdout_fraction)))
    fit = [r for i, r in enumerate(records) if i % stride != 0]
    holdout = [r for i, r in enumerate(records) if i % stride == 0]
    return fit, holdout


def calibrate(
    engine: CrossLevelEngine,
    sampler: Sampler,
    config: Optional[CalibrationConfig] = None,
) -> Tuple[SurrogateModel, CalibrationReport]:
    """Fit a surrogate model against ``engine`` with a budgeted sample set.

    Returns the fitted model (with its measured ``fnr``) and the
    goodness-of-fit report.  Raises :class:`EvaluationError` when the
    measured screen false-negative rate exceeds ``config.max_fnr`` —
    such a model would inflate confirmed weights beyond usefulness.
    """
    from repro.surrogate.engine import STAGE_SCREEN, SurrogateEngine

    config = config or CalibrationConfig()
    base = np.random.SeedSequence(
        entropy=config.seed, spawn_key=(CALIBRATION_SPAWN_KEY,)
    )
    result = engine.evaluate(sampler, config.n_samples, seed=base)
    records = result.records
    fit, holdout = _split(records, config.holdout_fraction)

    model = SurrogateModel(
        cycle_class_width=config.cycle_class_width,
        min_observations=config.min_observations,
        n_calibration_samples=len(records),
    )
    footprints = register_footprints(engine.context.netlist)
    for record in fit:
        if record.category is OutcomeCategory.OUT_OF_RANGE:
            continue
        footprint = footprints[record.sample.centre]
        pattern = (
            canonical_pattern(record.flipped_bits)
            if record.flipped_bits
            else None
        )
        model.observe(footprint, record.injection_cycle, pattern)

    # --- goodness of fit: latched-bit multiplicity, fit vs holdout -----
    fit_mult = [len(r.flipped_bits) for r in fit]
    hold_mult = [len(r.flipped_bits) for r in holdout]
    if fit_mult and hold_mult:
        ks = ks_2samp(fit_mult, hold_mult)
        ks_stat, ks_p = ks.statistic, ks.p_value
    else:
        ks_stat, ks_p = 0.0, 1.0

    # --- goodness of fit: outcome-category frequencies -----------------
    fit_cat = {c.value: 0 for c in OutcomeCategory}
    for r in fit:
        fit_cat[r.category.value] += 1
    hold_cat = {c.value: 0 for c in OutcomeCategory}
    for r in holdout:
        hold_cat[r.category.value] += 1
    total_fit = max(1, len(fit))
    expected = {k: v / total_fit for k, v in fit_cat.items()}
    if holdout and any(expected.values()):
        chi2 = chi_square_gof(hold_cat, expected)
        chi2_stat, chi2_p = chi2.statistic, chi2.p_value
    else:
        chi2_stat, chi2_p = 0.0, 1.0

    # --- screen FNR on the holdout hits --------------------------------
    screen = SurrogateEngine(engine, model, observe=False)
    covered = 0
    positives = 0
    false_negatives = 0
    fnr_base = np.random.SeedSequence(
        entropy=config.seed, spawn_key=(CALIBRATION_SPAWN_KEY, 1)
    )
    for j, record in enumerate(holdout):
        if record.category is OutcomeCategory.OUT_OF_RANGE:
            continue
        footprint = footprints[record.sample.centre]
        if model.cell_for(footprint, record.injection_cycle) is None:
            continue
        covered += 1
        if record.e != 1:
            continue
        positives += 1
        rng = as_generator(sample_seed_sequence(fnr_base, j))
        screened = screen.run_sample(record.sample, rng)
        if screen.last_stage == STAGE_SCREEN and screened.e == 0:
            false_negatives += 1
    fnr = false_negatives / positives if positives else 0.0
    if fnr > config.max_fnr:
        raise EvaluationError(
            f"calibrated screen false-negative rate {fnr:.2f} exceeds "
            f"max_fnr={config.max_fnr}: the surrogate cannot screen this "
            "design; grow the calibration budget or use the exact engine"
        )
    model.fnr = fnr

    in_range = [
        r for r in holdout if r.category is not OutcomeCategory.OUT_OF_RANGE
    ]
    report = CalibrationReport(
        n_samples=len(records),
        n_fit=len(fit),
        n_holdout=len(holdout),
        n_cells=model.n_cells,
        holdout_coverage=covered / len(in_range) if in_range else 1.0,
        fnr=fnr,
        n_true_positives=positives,
        multiplicity_ks_statistic=ks_stat,
        multiplicity_ks_p_value=ks_p,
        category_chi2_statistic=chi2_stat,
        category_chi2_p_value=chi2_p,
    )
    return model, report
