"""The fitted SEU-pattern model behind the surrogate engine.

Following the RTL-abstraction argument of "Representing Gate-Level SET
Faults by Multiple SEU Faults at RTL" (arXiv:2103.05106), a gate-level
transient is summarized by what it *latches*: a (possibly empty) set of
register bits flipped at the end of the injection cycle.  The surrogate
therefore models, per **cell**, the empirical distribution the exact
engine's gate-level simulation induces over those SEU patterns:

* the **cone key** groups spatial centres by their latching-register
  footprint — the set of RTL registers whose flops are reachable from
  the struck node through combinational logic (plus the node's own
  register for a struck flop).  Two centres with the same footprint can
  only ever latch into the same registers, so they share a cell;
* the **cycle class** buckets injection cycles (``cycle // width``),
  capturing the workload-phase dependence of masking without needing
  one distribution per cycle.

Each cell holds a masking probability and an empirical pmf over the
non-masked patterns observed during calibration
(:mod:`repro.surrogate.calibrate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.netlist.graph import Netlist
from repro.utils.stats import EmpiricalDistribution

#: A canonical SEU pattern: sorted tuple of (register, bit) pairs.
Pattern = Tuple[Tuple[str, int], ...]

#: A cone key: sorted tuple of register names a centre can latch into.
ConeKey = Tuple[str, ...]


def canonical_pattern(flipped: FrozenSet[Tuple[str, int]]) -> Pattern:
    """The order-free canonical form of a flipped-bits set."""
    return tuple(sorted((str(reg), int(bit)) for reg, bit in flipped))


_FOOTPRINT_CACHE: Dict[int, List[ConeKey]] = {}


def register_footprints(netlist: Netlist) -> List[ConeKey]:
    """Per-node latching-register footprint (cached per netlist identity).

    ``footprint[nid]`` is the sorted tuple of register names whose DFF
    D pins are reachable from ``nid`` through combinational fanout; for
    a DFF node the set additionally contains its own register (a direct
    storage-node upset flips the stored bit).
    """
    key = id(netlist)
    cached = _FOOTPRINT_CACHE.get(key)
    if cached is not None:
        return cached
    fanouts = netlist.fanouts()
    reach: Dict[int, FrozenSet[str]] = {}

    def consumers(nid: int) -> FrozenSet[str]:
        regs = set()
        for cid in fanouts[nid]:
            consumer = netlist.node(cid)
            if consumer.is_dff:
                if consumer.register is not None:
                    regs.add(consumer.register)
            elif consumer.kind.is_combinational:
                regs |= reach[cid]
        return frozenset(regs)

    # Combinational gates in reverse topological order: every consumer's
    # reach set is already known when a producer is visited.
    for nid in reversed(netlist.topo_order()):
        reach[nid] = consumers(nid)
    footprints: List[ConeKey] = [()] * len(netlist)
    for node in netlist.nodes:
        if node.kind.is_combinational:
            regs = set(reach[node.nid])
        else:
            regs = set(consumers(node.nid))
        if node.is_dff and node.register is not None:
            regs.add(node.register)
        footprints[node.nid] = tuple(sorted(regs))
    _FOOTPRINT_CACHE[key] = footprints
    return footprints


@dataclass
class PatternCell:
    """Fitted SEU-pattern distribution of one (cone, cycle-class) cell."""

    n_observations: int = 0
    n_masked: int = 0
    pattern_counts: Dict[Pattern, int] = field(default_factory=dict)
    _patterns: Optional[EmpiricalDistribution] = field(
        default=None, repr=False, compare=False
    )

    def observe(self, pattern: Optional[Pattern]) -> None:
        """Record one calibration outcome (``None`` = masked)."""
        self.n_observations += 1
        if pattern is None or not pattern:
            self.n_masked += 1
        else:
            self.pattern_counts[pattern] = self.pattern_counts.get(pattern, 0) + 1
        self._patterns = None

    @property
    def p_masked(self) -> float:
        if self.n_observations == 0:
            return 1.0
        return self.n_masked / self.n_observations

    @property
    def patterns(self) -> Optional[EmpiricalDistribution]:
        """Distribution over non-masked patterns (``None`` if all masked)."""
        if self._patterns is None and self.pattern_counts:
            self._patterns = EmpiricalDistribution.from_counts(
                dict(self.pattern_counts)
            )
        return self._patterns

    def draw(self, u_mask: float, u_pattern: float) -> Optional[Pattern]:
        """Draw a pattern from two uniform [0, 1) variates.

        Returns ``None`` for a masked outcome.  Consuming *exactly two*
        variates on every call (even when the first already decides
        "masked") keeps the per-sample RNG stream layout independent of
        the drawn outcome, which replay relies on.
        """
        if u_mask < self.p_masked or not self.pattern_counts:
            return None
        return self.patterns.quantile(u_pattern)  # type: ignore[union-attr]


@dataclass
class SurrogateModel:
    """The complete calibrated surrogate: cells + screen error rate."""

    cycle_class_width: int = 8
    min_observations: int = 4
    #: Screen false-negative rate P(surrogate says miss | exact says hit),
    #: measured on the calibration holdout; the two-stage estimator
    #: divides confirmed hits by (1 - fnr) to stay unbiased.
    fnr: float = 0.0
    n_calibration_samples: int = 0
    cells: Dict[Tuple[ConeKey, int], PatternCell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycle_class_width <= 0:
            raise EvaluationError("cycle_class_width must be positive")
        if not 0.0 <= self.fnr < 1.0:
            raise EvaluationError("fnr must lie in [0, 1)")

    def cycle_class(self, injection_cycle: int) -> int:
        return injection_cycle // self.cycle_class_width

    def cell_key(
        self, footprint: ConeKey, injection_cycle: int
    ) -> Tuple[ConeKey, int]:
        return (footprint, self.cycle_class(injection_cycle))

    def observe(
        self,
        footprint: ConeKey,
        injection_cycle: int,
        pattern: Optional[Pattern],
    ) -> None:
        key = self.cell_key(footprint, injection_cycle)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = PatternCell()
        cell.observe(pattern)

    def cell_for(
        self, footprint: ConeKey, injection_cycle: int
    ) -> Optional[PatternCell]:
        """The usable cell for a sample, or ``None`` (→ exact fallback).

        A cell with fewer than ``min_observations`` calibration samples
        is treated as uncovered: its empirical pmf would be dominated by
        noise, so the surrogate declines to extrapolate from it.
        """
        cell = self.cells.get(self.cell_key(footprint, injection_cycle))
        if cell is None or cell.n_observations < self.min_observations:
            return None
        return cell

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------
    # serialization (see repro.surrogate.persistence for the artifact)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "cycle_class_width": self.cycle_class_width,
            "min_observations": self.min_observations,
            "fnr": self.fnr,
            "n_calibration_samples": self.n_calibration_samples,
            "cells": [
                {
                    "cone": list(cone),
                    "cycle_class": cycle_class,
                    "n": cell.n_observations,
                    "n_masked": cell.n_masked,
                    "patterns": [
                        [count, [list(bit) for bit in pattern]]
                        for pattern, count in sorted(cell.pattern_counts.items())
                    ],
                }
                for (cone, cycle_class), cell in sorted(self.cells.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SurrogateModel":
        model = cls(
            cycle_class_width=int(data["cycle_class_width"]),
            min_observations=int(data["min_observations"]),
            fnr=float(data["fnr"]),
            n_calibration_samples=int(data.get("n_calibration_samples", 0)),
        )
        for entry in data["cells"]:
            cell = PatternCell(
                n_observations=int(entry["n"]),
                n_masked=int(entry["n_masked"]),
                pattern_counts={
                    tuple((str(reg), int(bit)) for reg, bit in pattern): int(count)
                    for count, pattern in entry["patterns"]
                },
            )
            key = (tuple(entry["cone"]), int(entry["cycle_class"]))
            model.cells[key] = cell
        return model
