"""Calibrated RTL-level SEU surrogate engine and multi-fidelity campaigns.

The exact cross-level engine pays for accuracy with a gate-level
transient simulation on every sample.  Following the abstraction of
"Representing Gate-Level SET Faults by Multiple SEU Faults at RTL"
(arXiv:2103.05106), this subsystem replaces that simulation with draws
from a calibrated empirical distribution over the *latched* SEU
patterns, injected straight into RTL register state:

* :mod:`repro.surrogate.model` — the per-(gate-cone, cycle-class)
  pattern distributions and the netlist footprint keying;
* :mod:`repro.surrogate.calibrate` — fits the model against the exact
  engine on a budgeted sample set, with a goodness-of-fit report and a
  measured screen false-negative rate;
* :mod:`repro.surrogate.persistence` — the versioned, fingerprinted
  JSON artifact (``repro calibrate --out``);
* :mod:`repro.surrogate.engine` — :class:`SurrogateEngine` (pure
  surrogate) and :class:`TwoStageEngine` (surrogate screen + exact
  confirmation with FNR-corrected weights), both implementing the
  standard scheduler contract so campaigns, the fleet, and replay run
  them unchanged.

Accuracy envelope: the surrogate is an *estimate of an estimate* — use
the conformance harness (:mod:`repro.conformance.surrogate`) to bound
its SSF error against the exact oracle before trusting it, and prefer
``fidelity: two_stage`` (screen + exact confirmation) whenever the
final number matters.
"""

from repro.surrogate.calibrate import (
    CalibrationConfig,
    CalibrationReport,
    calibrate,
)
from repro.surrogate.engine import (
    SurrogateEngine,
    TwoStageEngine,
    build_surrogate_engine,
)
from repro.surrogate.model import (
    PatternCell,
    SurrogateModel,
    canonical_pattern,
    register_footprints,
)
from repro.surrogate.persistence import (
    load_report,
    load_surrogate_model,
    save_surrogate_model,
)

__all__ = [
    "CalibrationConfig",
    "CalibrationReport",
    "PatternCell",
    "SurrogateEngine",
    "SurrogateModel",
    "TwoStageEngine",
    "build_surrogate_engine",
    "calibrate",
    "canonical_pattern",
    "load_report",
    "load_surrogate_model",
    "register_footprints",
    "save_surrogate_model",
]
