"""Engines that evaluate samples from the calibrated SEU model.

:class:`SurrogateEngine` replaces the gate-level transient simulation —
the dominant per-sample cost of the exact engine — with a draw from the
fitted per-(cone, cycle-class) SEU-pattern distribution, then injects
the drawn pattern straight into the RTL register state via the existing
:class:`~repro.rtl.checkpoint.Checkpoint` machinery and resumes to the
end of the benchmark.  Samples landing in uncovered cells fall back to
the exact engine, so the surrogate never extrapolates.

:class:`TwoStageEngine` is the multi-fidelity screen: the surrogate
classifies every sample and only surrogate-positive hits are confirmed
by the exact engine; the confirmed weight is divided by ``1 - fnr``
(the screen false-negative rate measured on the calibration holdout) to
keep the estimator unbiased.  The correction is baked into the
*persisted* sample weight, so the chunk log replays bit-identically on
resume and the standard estimator consumes the records unchanged.

Both engines implement the scheduler contract —
``evaluate(sampler, n, seed)`` with the SeedSequence-per-sample policy
plus ``run_sample`` for deterministic replay — so campaign, fleet, and
service layers run them unmodified.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.attack.spec import AttackSample
from repro.core.engine import CrossLevelEngine
from repro.core.results import CampaignResult, OutcomeCategory, SampleRecord
from repro.errors import EvaluationError
from repro.obs.engine_metrics import observe_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.surrogate_metrics import (
    observe_stage,
    set_surrogate_gauges,
)
from repro.obs.tracing import NULL_CLOCK
from repro.rtl.checkpoint import Checkpoint
from repro.sampling.base import Sampler
from repro.sampling.estimator import SsfEstimator
from repro.surrogate.model import SurrogateModel, register_footprints
from repro.utils.rng import SeedLike, as_generator, sample_seed_sequence

#: Stage labels attached to per-sample counters.
STAGE_SCREEN = "screen"      # surrogate draw answered the sample
STAGE_CONFIRM = "confirm"    # exact engine confirmed a surrogate hit
STAGE_FALLBACK = "fallback"  # uncovered cell: exact engine answered


class SurrogateEngine:
    """Single-fidelity surrogate evaluation over a calibrated model."""

    def __init__(
        self,
        exact: CrossLevelEngine,
        model: SurrogateModel,
        observe: bool = True,
    ):
        if getattr(exact.spec.technique, "impact_cycles", 1) != 1:
            raise EvaluationError(
                "the surrogate engine models single-cycle injections; "
                "impact_cycles must be 1"
            )
        self.exact = exact
        self.model = model
        self.observe = observe
        self.context = exact.context
        self.spec = exact.spec
        self.config = exact.config
        self._footprints = register_footprints(exact.context.netlist)
        # Post-injection-cycle RTL snapshots, shared across samples of a
        # cycle (the surrogate's analogue of the exact engine's baseline
        # cache, minus the gate-level golden evaluation).
        self._post_step: "OrderedDict[int, Checkpoint]" = OrderedDict()
        #: Exact-engine run_sample calls made on behalf of this engine —
        #: the denominator of the multi-fidelity speedup claim.
        self.exact_invocations = 0
        #: Stage of the most recent run_sample (calibration introspection).
        self.last_stage = STAGE_SCREEN

    # ------------------------------------------------------------------
    # single-sample flow
    # ------------------------------------------------------------------
    def run_sample(
        self, sample: AttackSample, rng: np.random.Generator, clock=NULL_CLOCK
    ) -> SampleRecord:
        context = self.context
        injection_cycle = context.target_cycle - sample.t
        if injection_cycle < 0 or injection_cycle >= context.n_cycles:
            self.last_stage = STAGE_SCREEN
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.OUT_OF_RANGE,
                flipped_bits=frozenset(),
                injection_cycle=injection_cycle,
            )
        footprint = self._footprints[sample.centre]
        cell = self.model.cell_for(footprint, injection_cycle)
        if cell is None:
            self.last_stage = STAGE_FALLBACK
            self.exact_invocations += 1
            return self.exact.run_sample(sample, rng, clock=clock)

        self.last_stage = STAGE_SCREEN
        pattern = cell.draw(float(rng.random()), float(rng.random()))
        clock.lap("draw_pattern")
        if not pattern:
            return SampleRecord(
                sample=sample,
                e=0,
                category=OutcomeCategory.MASKED,
                flipped_bits=frozenset(),
                injection_cycle=injection_cycle,
            )
        flipped: FrozenSet[Tuple[str, int]] = frozenset(pattern)
        memory_only = self.exact._all_memory_type(flipped)
        clock.lap("classify")
        category = (
            OutcomeCategory.MEMORY_ONLY
            if memory_only
            else OutcomeCategory.NEEDS_RTL
        )
        if (
            memory_only
            and self.config.analytical_memory_eval
            and self.exact._analytical is not None
        ):
            e = self.exact._analytical.evaluate(flipped, injection_cycle)
            clock.lap("analytical")
            return SampleRecord(
                sample=sample,
                e=e,
                category=category,
                flipped_bits=flipped,
                injection_cycle=injection_cycle,
                n_pulses_latched=len(flipped),
                analytical=True,
            )

        # SEU writeback: restore the shared post-step snapshot, flip the
        # drawn bits in RTL register state, and resume to the end.
        simulator = context.simulator
        post_step = self._post_step_checkpoint(injection_cycle)
        post_step.restore(context.soc)
        simulator.cycle = post_step.cycle
        masks: Dict[str, int] = {}
        for register, bit in flipped:
            masks[register] = masks.get(register, 0) | (1 << bit)
        simulator.inject_bit_errors(masks)
        clock.lap("writeback")
        simulator.run_to(context.n_cycles)
        clock.lap("rtl_resume")
        e = 1 if context.benchmark.attack_succeeded(context.soc) else 0
        clock.lap("compare")
        return SampleRecord(
            sample=sample,
            e=e,
            category=category,
            flipped_bits=flipped,
            injection_cycle=injection_cycle,
            n_pulses_latched=len(flipped),
        )

    def _post_step_checkpoint(self, injection_cycle: int) -> Checkpoint:
        cached = self._post_step.get(injection_cycle)
        if cached is not None:
            self._post_step.move_to_end(injection_cycle)
            return cached
        context = self.context
        simulator = context.simulator
        simulator.restart_from(context.golden, injection_cycle)
        simulator.step()
        snapshot = Checkpoint.capture(context.soc, simulator.cycle)
        self._post_step[injection_cycle] = snapshot
        while len(self._post_step) > self.config.baseline_cache_size:
            self._post_step.popitem(last=False)
        return snapshot

    # ------------------------------------------------------------------
    # campaigns (scheduler contract)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        sampler: Sampler,
        n_samples: int,
        seed: SeedLike = None,
        progress: Optional[Callable[[int, SsfEstimator], None]] = None,
    ) -> CampaignResult:
        return _evaluate_loop(self, sampler, n_samples, seed, progress)


class TwoStageEngine:
    """Multi-fidelity screen-then-confirm evaluation.

    Wraps one surrogate engine (the screen) and its exact engine (the
    confirmer).  Exposes the same contract as both, so the campaign
    scheduler, the fleet, and ``repro replay`` drive it unchanged.
    """

    def __init__(self, surrogate: SurrogateEngine):
        self.surrogate = surrogate
        self.exact = surrogate.exact
        self.context = surrogate.context
        self.spec = surrogate.spec
        self.config = surrogate.config
        self.observe = surrogate.observe
        self.model = surrogate.model
        self.last_stage = STAGE_SCREEN

    @property
    def exact_invocations(self) -> int:
        """Exact-engine samples spent (fallbacks + confirmations)."""
        return self.surrogate.exact_invocations

    def run_sample(
        self, sample: AttackSample, rng: np.random.Generator, clock=NULL_CLOCK
    ) -> SampleRecord:
        screen = self.surrogate.run_sample(sample, rng, clock=clock)
        if self.surrogate.last_stage == STAGE_FALLBACK:
            # Uncovered cell: the answer is already exact; no screening
            # error was possible, so no correction applies.
            self.last_stage = STAGE_FALLBACK
            return screen
        if screen.e == 0:
            self.last_stage = STAGE_SCREEN
            return screen
        # Surrogate-positive: confirm at full fidelity.  The confirmed
        # weight is inflated by 1/(1 - fnr) so the estimator stays
        # unbiased despite the screen dropping a known fraction of true
        # hits; persisting the corrected weight in the record makes
        # resume and replay bit-identical for free.
        self.last_stage = STAGE_CONFIRM
        self.surrogate.exact_invocations += 1
        confirmed = self.exact.run_sample(sample, rng, clock=clock)
        corrected = dataclasses.replace(
            sample, weight=sample.weight / (1.0 - self.model.fnr)
        )
        return dataclasses.replace(confirmed, sample=corrected)

    def evaluate(
        self,
        sampler: Sampler,
        n_samples: int,
        seed: SeedLike = None,
        progress: Optional[Callable[[int, SsfEstimator], None]] = None,
    ) -> CampaignResult:
        return _evaluate_loop(self, sampler, n_samples, seed, progress)


def build_surrogate_engine(
    exact: CrossLevelEngine,
    sampler: Sampler,
    fidelity: str = "single",
    calibration=None,
    seed: int = 11,
    observe: bool = True,
):
    """Load-or-fit a model and wrap ``exact`` per ``fidelity``.

    ``calibration`` names an artifact: an existing file is loaded
    (skipping the fit entirely); a missing path is a request to persist
    the fresh fit there.  ``seed`` roots the calibration seed tree when
    fitting in-process.  This is the single construction path shared by
    ``CampaignSpec.build_runtime`` and the CLI.
    """
    import pathlib

    from repro.surrogate.calibrate import CalibrationConfig, calibrate
    from repro.surrogate.persistence import (
        load_surrogate_model,
        save_surrogate_model,
    )

    model = None
    if calibration and pathlib.Path(calibration).exists():
        model = load_surrogate_model(calibration, exact.context.netlist)
    if model is None:
        model, report = calibrate(
            exact, sampler, CalibrationConfig(seed=seed)
        )
        if calibration:
            target = pathlib.Path(calibration)
            target.parent.mkdir(parents=True, exist_ok=True)
            save_surrogate_model(
                model, exact.context.netlist, target, report=report
            )
    surrogate = SurrogateEngine(exact, model, observe=observe)
    if fidelity == "two_stage":
        return TwoStageEngine(surrogate)
    return surrogate


def _evaluate_loop(
    engine,
    sampler: Sampler,
    n_samples: int,
    seed: SeedLike,
    progress: Optional[Callable[[int, SsfEstimator], None]],
) -> CampaignResult:
    """Shared campaign body for the surrogate-family engines.

    Mirrors the exact engine's scalar ``evaluate`` seed policy: a
    ``SeedSequence`` derives one independent child stream per sample
    (the campaign/fleet path, replayable in isolation); an int /
    ``Generator`` / ``None`` keeps a single shared stream.  The
    estimator consumes ``record.sample`` — not the raw draw — so the
    two-stage weight correction flows through it unchanged.
    """
    if n_samples <= 0:
        raise EvaluationError("n_samples must be positive")
    base = seed if isinstance(seed, np.random.SeedSequence) else None
    rng = None if base is not None else as_generator(seed)
    estimator = SsfEstimator(record_history=True)
    registry = MetricsRegistry() if engine.observe else None
    records = []
    stage_counts = {STAGE_SCREEN: 0, STAGE_CONFIRM: 0, STAGE_FALLBACK: 0}
    n_hits = 0
    start = time.perf_counter()
    for i in range(n_samples):
        if base is not None:
            rng = as_generator(sample_seed_sequence(base, i))
        sample = sampler.sample(rng)
        record = engine.run_sample(sample, rng)
        stage_counts[engine.last_stage] += 1
        n_hits += 1 if record.e else 0
        if registry is not None:
            observe_record(registry, record)
            observe_stage(registry, engine.last_stage)
        estimator.push(record.sample, record.e)
        records.append(record)
        if progress is not None:
            progress(i, estimator)
        if engine.config.stop_on_convergence and estimator.converged(
            engine.config.convergence_rel_tol, engine.config.min_samples
        ):
            break
    if registry is not None:
        set_surrogate_gauges(registry, n_hits, len(records))
    wall = time.perf_counter() - start
    return CampaignResult(
        strategy=sampler.name,
        records=records,
        estimator=estimator,
        wall_time_s=wall,
        metrics=registry.snapshot() if registry is not None else None,
    )
