"""Deterministic random-number plumbing.

Every stochastic component in the framework (attack distributions, samplers,
workload generators) takes either a seed or a ``numpy.random.Generator``.
:class:`RngFactory` derives independent child generators from a root seed so
that e.g. the pre-characterization campaign and the Monte Carlo engine do not
share a stream (changing the number of pre-characterization injections must
not perturb the SSF sample sequence).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce a seed-like (int / ``SeedSequence`` / generator / None) into a
    ``numpy`` Generator.

    ``SeedSequence`` support lets parallel campaigns thread spawned child
    sequences straight into components that accept a ``SeedLike``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sample_seed_sequence(
    base: np.random.SeedSequence, index: int
) -> np.random.SeedSequence:
    """The ``index``-th spawned child of ``base``, O(1) in the index.

    Equivalent to ``base.spawn(index + 1)[index]`` — spawned children
    extend the parent's spawn key by ``(index,)`` — without mutating
    ``base``'s spawn counter.  The campaign seed tree composes these:
    ``sample_seed_sequence(chunk_seed_sequence(seed, c), i)`` names the
    stream of sample ``i`` of chunk ``c``, so any logged sample can be
    replayed bit-identically without re-running its predecessors (see
    :mod:`repro.conformance.replay`).
    """
    return np.random.SeedSequence(
        entropy=base.entropy, spawn_key=tuple(base.spawn_key) + (index,)
    )


def spawn_seed_sequences(seed: Optional[int], n: int) -> list:
    """Derive ``n`` statistically independent child ``SeedSequence`` objects.

    Replaces ad-hoc ``seed + index`` schemes, which collide across campaigns
    (campaign seed 0 / stream 1 reuses campaign seed 1 / stream 0): spawned
    children differ in their spawn key, so no (seed, index) pair ever shares
    a stream with another (seed', index') pair.
    """
    return list(np.random.SeedSequence(seed).spawn(n))


class RngFactory:
    """Derives named, independent random streams from one root seed.

    >>> factory = RngFactory(1234)
    >>> a = factory.stream("sampler")
    >>> b = factory.stream("precharac")

    The same (seed, name) pair always yields the same stream, and distinct
    names yield statistically independent streams (via ``SeedSequence``
    spawn keys derived from the name hash).
    """

    def __init__(self, seed: Optional[int] = None):
        self._root = np.random.SeedSequence(seed)
        self.seed = seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the given stream name."""
        # Stable, platform-independent digest of the name.
        digest = 0
        for ch in name:
            digest = (digest * 131 + ord(ch)) % (2**63)
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(digest,)
        )
        return np.random.default_rng(child)

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, for components that fan out further."""
        digest = 0
        for ch in name:
            digest = (digest * 137 + ord(ch)) % (2**31)
        base = self.seed if self.seed is not None else 0
        return RngFactory((base * 1_000_003 + digest) % (2**63))
