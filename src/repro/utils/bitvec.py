"""Packed bit sequences.

Switching signatures (Section 4, Observation 2 of the paper) are binary
vectors with one entry per simulated cycle.  The paper stresses that the
bit-flip correlation can be computed with "fast bit-parallel calculation";
this module provides exactly that: sequences are stored 64 cycles per
``numpy.uint64`` word so AND/shift/popcount run word-parallel.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

_WORD_BITS = 64

# Per-byte popcount table; np.uint64 arrays are viewed as uint8 to count bits.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def pack_bits(bits: Sequence[int]) -> np.ndarray:
    """Pack an iterable of 0/1 ints into a little-endian uint64 word array.

    Bit ``i`` of the sequence lands in word ``i // 64`` at bit position
    ``i % 64``.
    """
    bits = np.asarray(list(bits), dtype=np.uint8)
    if bits.size == 0:
        return np.zeros(0, dtype=np.uint64)
    if bits.max(initial=0) > 1:
        raise ValueError("pack_bits expects only 0/1 values")
    n_words = (bits.size + _WORD_BITS - 1) // _WORD_BITS
    padded = np.zeros(n_words * _WORD_BITS, dtype=np.uint8)
    padded[: bits.size] = bits
    words = padded.reshape(n_words, _WORD_BITS)
    weights = (np.uint64(1) << np.arange(_WORD_BITS, dtype=np.uint64))
    return (words.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)


def unpack_bits(words: np.ndarray, length: int) -> List[int]:
    """Inverse of :func:`pack_bits`: return the first ``length`` bits."""
    out: List[int] = []
    for i in range(length):
        word = int(words[i // _WORD_BITS])
        out.append((word >> (i % _WORD_BITS)) & 1)
    return out


def hamming_weight(words: np.ndarray) -> int:
    """Total number of set bits across a uint64 word array."""
    if words.size == 0:
        return 0
    return int(_POPCOUNT8[words.view(np.uint8)].sum())


class BitSequence:
    """An immutable-length bit sequence with word-parallel operations.

    Used for switching signatures: index ``i`` says whether a node toggled
    between cycles ``i-1`` and ``i``.  Supports the exact operations the
    paper's correlation formula needs: bitwise AND, logical left shift of the
    *sequence* (``ss(rs) << i`` drops the first ``i`` cycles and appends
    zeros), and Hamming weight.
    """

    __slots__ = ("length", "words")

    def __init__(self, length: int, words: np.ndarray | None = None):
        if length < 0:
            raise ValueError("length must be non-negative")
        self.length = length
        n_words = (length + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self.words = np.zeros(n_words, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (n_words,):
                raise ValueError("words array has wrong dtype or shape")
            self.words = words.copy()
            self._mask_tail()

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitSequence":
        bits = list(bits)
        return cls(len(bits), pack_bits(bits))

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "BitSequence":
        """Build a switching signature from a per-cycle logic-value trace.

        ``signature[i] = 1`` iff ``values[i] != values[i-1]``; cycle 0 is
        defined as not switching (there is no previous cycle).
        """
        vals = list(values)
        bits = [0] * len(vals)
        for i in range(1, len(vals)):
            bits[i] = 1 if vals[i] != vals[i - 1] else 0
        return cls.from_bits(bits)

    def _mask_tail(self) -> None:
        tail = self.length % _WORD_BITS
        if tail and self.words.size:
            mask = np.uint64((1 << tail) - 1)
            self.words[-1] &= mask

    def to_bits(self) -> List[int]:
        return unpack_bits(self.words, self.length)

    def popcount(self) -> int:
        return hamming_weight(self.words)

    def get(self, i: int) -> int:
        if not 0 <= i < self.length:
            raise IndexError(f"bit index {i} out of range [0, {self.length})")
        return (int(self.words[i // _WORD_BITS]) >> (i % _WORD_BITS)) & 1

    def set(self, i: int, value: int) -> None:
        if not 0 <= i < self.length:
            raise IndexError(f"bit index {i} out of range [0, {self.length})")
        word, bit = divmod(i, _WORD_BITS)
        if value:
            self.words[word] |= np.uint64(1 << bit)
        else:
            self.words[word] &= np.uint64(~np.uint64(1 << bit))

    def __and__(self, other: "BitSequence") -> "BitSequence":
        if other.length != self.length:
            raise ValueError("bit sequences must have equal length")
        return BitSequence(self.length, self.words & other.words)

    def __or__(self, other: "BitSequence") -> "BitSequence":
        if other.length != self.length:
            raise ValueError("bit sequences must have equal length")
        return BitSequence(self.length, self.words | other.words)

    def __xor__(self, other: "BitSequence") -> "BitSequence":
        if other.length != self.length:
            raise ValueError("bit sequences must have equal length")
        return BitSequence(self.length, self.words ^ other.words)

    def shift_left(self, n: int) -> "BitSequence":
        """Drop the first ``n`` entries, append ``n`` zeros at the end.

        This matches the paper's ``ss(rs) << i``: aligning the responding
        signal's switching at cycle ``j + i`` with the cone node's switching
        at cycle ``j`` (flips need ``i`` cycles to propagate through ``i``
        register stages).
        """
        if n < 0:
            return self.shift_right(-n)
        bits = self.to_bits()
        shifted = bits[n:] + [0] * min(n, self.length)
        return BitSequence.from_bits(shifted[: self.length])

    def shift_right(self, n: int) -> "BitSequence":
        """Prepend ``n`` zeros, dropping entries that fall off the end."""
        if n < 0:
            return self.shift_left(-n)
        bits = self.to_bits()
        shifted = [0] * min(n, self.length) + bits[: max(self.length - n, 0)]
        return BitSequence.from_bits(shifted[: self.length])

    def correlation_with(self, other: "BitSequence", shift: int = 0) -> float:
        """The paper's bit-flip correlation.

        ``Corr_i(g, rs) = |ss(g) & (ss(rs) << i)| / |ss(g)|`` — the fraction
        of the node's toggles that line up with a responding-signal toggle
        ``shift`` cycles later.  Returns 0.0 for a node that never toggles.
        """
        own_weight = self.popcount()
        if own_weight == 0:
            return 0.0
        aligned = other.shift_left(shift) if shift >= 0 else other.shift_right(-shift)
        return (self & aligned).popcount() / own_weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitSequence):
            return NotImplemented
        return self.length == other.length and bool(
            np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:
        return hash((self.length, self.words.tobytes()))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        prefix = "".join(str(b) for b in self.to_bits()[:32])
        more = "..." if self.length > 32 else ""
        return f"BitSequence({self.length}, {prefix}{more})"
