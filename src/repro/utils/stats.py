"""Streaming statistics used by the Monte Carlo estimators.

The convergence analysis in Section 3.3 of the paper bounds the empirical
risk via the weak law of large numbers in terms of the sample variance, so
the engine needs numerically stable running mean/variance (Welford) over
possibly millions of samples, plus a binomial confidence interval for the
raw success probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Sequence, Tuple


@dataclass
class RunningStats:
    """Welford running mean and variance.

    ``push`` accepts weighted observations — importance sampling pushes
    ``w_i * e_i`` values, random sampling pushes plain indicators.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    _history: List[float] = field(default_factory=list)
    record_history: bool = False

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.record_history:
            self._history.append(self.mean)

    def extend(self, values) -> None:
        for v in values:
            self.push(v)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std_error(self) -> float:
        """Standard error of the running mean."""
        if self.count < 2:
            return float("inf")
        return math.sqrt(self.variance / self.count)

    @property
    def history(self) -> List[float]:
        """Running-mean trajectory (only if ``record_history`` is set)."""
        return list(self._history)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two independent accumulators (parallel chunks)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        return self


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because SSF is typically tiny
    (successful attacks are rare events).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = p + z * z / (2 * trials)
    spread = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    lo = max(0.0, (centre - spread) / denom)
    hi = min(1.0, (centre + spread) / denom)
    return (lo, hi)


def _lower_gamma_series(a: float, x: float) -> float:
    """Regularized lower incomplete gamma P(a, x) by series (x < a + 1)."""
    term = 1.0 / a
    total = term
    denom = a
    for _ in range(500):
        denom += 1.0
        term *= x / denom
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _upper_gamma_cf(a: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(a, x) by Lentz's continued
    fraction (x >= a + 1)."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def chi2_sf(x: float, df: float) -> float:
    """Survival function of the chi-square distribution, Pr[X >= x].

    Pure-python (series / continued-fraction regularized incomplete
    gamma) so the goodness-of-fit gate needs no ``scipy`` at runtime;
    agrees with ``scipy.stats.chi2.sf`` to ~1e-12 over the tested range.
    """
    if df <= 0:
        raise ValueError("df must be positive")
    if x <= 0:
        return 1.0
    a, half_x = df / 2.0, x / 2.0
    if half_x < a + 1.0:
        return max(0.0, min(1.0, 1.0 - _lower_gamma_series(a, half_x)))
    return max(0.0, min(1.0, _upper_gamma_cf(a, half_x)))


@dataclass(frozen=True)
class Chi2Result:
    """Pearson chi-square goodness-of-fit verdict."""

    statistic: float
    dof: int
    p_value: float
    n_cells: int      # cells after pooling
    n_pooled: int     # low-expectation cells merged into the pool


def chi_square_gof(
    observed: Dict[Hashable, int],
    expected_probs: Dict[Hashable, float],
    min_expected: float = 5.0,
) -> Chi2Result:
    """Pearson chi-square test of observed counts against a discrete spec.

    ``expected_probs`` must cover the declared support (summing to ~1);
    cells whose expected count falls below ``min_expected`` are pooled
    (the usual validity condition for the chi-square approximation).  An
    observation outside the declared support is a hard spec violation and
    returns ``p_value = 0.0``.  With fewer than two cells after pooling
    the test is vacuous and returns ``p_value = 1.0``.
    """
    n = sum(observed.values())
    if n <= 0:
        raise ValueError("observed counts must sum to a positive total")
    support = {k for k, p in expected_probs.items() if p > 0.0}
    outside = [k for k, c in observed.items() if c > 0 and k not in support]
    if outside:
        return Chi2Result(math.inf, 0, 0.0, len(support), 0)

    cells = sorted(
        ((expected_probs[k] * n, observed.get(k, 0)) for k in support),
        reverse=True,
    )
    kept: List[Tuple[float, int]] = []
    pool_exp, pool_obs, n_pooled = 0.0, 0, 0
    for exp, obs in cells:
        if exp >= min_expected:
            kept.append((exp, obs))
        else:
            pool_exp += exp
            pool_obs += obs
            n_pooled += 1
    if n_pooled:
        if pool_exp >= min_expected or not kept:
            kept.append((pool_exp, pool_obs))
        else:  # fold an undersized pool into the smallest kept cell
            exp, obs = kept.pop()
            kept.append((exp + pool_exp, obs + pool_obs))
    if len(kept) < 2:
        return Chi2Result(0.0, 0, 1.0, len(kept), n_pooled)

    statistic = sum((obs - exp) ** 2 / exp for exp, obs in kept)
    dof = len(kept) - 1
    return Chi2Result(statistic, dof, chi2_sf(statistic, dof), len(kept), n_pooled)


def kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution, Pr[K >= x].

    The asymptotic null distribution of ``sqrt(n) * D_n``:
    ``Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2)``.  Pure python
    (the series converges in a handful of terms for any x of interest)
    so the calibration goodness-of-fit gate needs no ``scipy``.
    """
    if x <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-16:
            break
    return max(0.0, min(1.0, total))


@dataclass(frozen=True)
class KsResult:
    """Kolmogorov-Smirnov verdict (statistic + asymptotic p-value)."""

    statistic: float
    p_value: float
    n: int
    m: int = 0  # second-sample size (two-sample test only)


def ks_1samp(sample: Sequence[float], cdf: Callable[[float], float]) -> KsResult:
    """One-sample KS test of ``sample`` against a continuous CDF.

    ``D_n = sup_x |F_n(x) - F(x)|`` evaluated at the order statistics;
    the p-value uses the asymptotic Kolmogorov distribution (standard
    for n >= ~35, conservative below).
    """
    n = len(sample)
    if n == 0:
        raise ValueError("sample must be non-empty")
    ordered = sorted(sample)
    d = 0.0
    for i, x in enumerate(ordered):
        fx = cdf(x)
        d = max(d, (i + 1) / n - fx, fx - i / n)
    return KsResult(d, kolmogorov_sf(math.sqrt(n) * d), n)


def ks_2samp(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample KS test: max distance between the two empirical CDFs.

    Ties (the common case for the discrete summaries calibration feeds
    in, e.g. bit multiplicities) are handled by evaluating both ECDFs on
    the merged support, which makes the statistic exact; the p-value is
    the usual asymptotic one with effective size ``n*m/(n+m)`` and is
    conservative under heavy ties.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples must be non-empty")
    sa, sb = sorted(a), sorted(b)
    d = 0.0
    i = j = 0
    while i < n and j < m:
        x = min(sa[i], sb[j])
        while i < n and sa[i] <= x:
            i += 1
        while j < m and sb[j] <= x:
            j += 1
        d = max(d, abs(i / n - j / m))
    effective = n * m / (n + m)
    return KsResult(d, kolmogorov_sf(math.sqrt(effective) * d), n, m)


@dataclass(frozen=True)
class EmpiricalDistribution:
    """A fitted discrete distribution over hashable outcomes.

    Construction via :meth:`fit` sorts outcomes (by repr, so mixed key
    types stay comparable) to make the quantile function — and hence any
    seeded draw sequence — independent of input observation order.
    ``quantile`` maps a uniform [0, 1) variate to an outcome via the
    inverse CDF, so callers keep ownership of their randomness source.
    """

    outcomes: Tuple[Hashable, ...]
    probs: Tuple[float, ...]

    @classmethod
    def fit(cls, observations: Sequence[Hashable]) -> "EmpiricalDistribution":
        if not observations:
            raise ValueError("cannot fit an empirical distribution to nothing")
        counts: Dict[Hashable, int] = {}
        for obs in observations:
            counts[obs] = counts.get(obs, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: repr(kv[0]))
        total = len(observations)
        return cls(
            outcomes=tuple(k for k, _ in ordered),
            probs=tuple(c / total for _, c in ordered),
        )

    @classmethod
    def from_counts(
        cls, counts: Dict[Hashable, int]
    ) -> "EmpiricalDistribution":
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("counts must sum to a positive total")
        ordered = sorted(counts.items(), key=lambda kv: repr(kv[0]))
        return cls(
            outcomes=tuple(k for k, _ in ordered),
            probs=tuple(c / total for _, c in ordered),
        )

    def pmf(self, outcome: Hashable) -> float:
        try:
            return self.probs[self.outcomes.index(outcome)]
        except ValueError:
            return 0.0

    def quantile(self, u: float) -> Hashable:
        """Inverse-CDF draw: the outcome at cumulative mass ``u``."""
        if not 0.0 <= u < 1.0:
            raise ValueError("u must lie in [0, 1)")
        acc = 0.0
        for outcome, p in zip(self.outcomes, self.probs):
            acc += p
            if u < acc:
                return outcome
        return self.outcomes[-1]  # guard against float round-off

    def as_dict(self) -> Dict[Hashable, float]:
        return dict(zip(self.outcomes, self.probs))


def samples_for_risk(variance: float, epsilon: float, delta: float) -> int:
    """Chebyshev bound from the paper: N >= sigma^2 / (delta * eps^2).

    Returns the number of Monte Carlo samples guaranteeing
    ``Pr[|SSF_hat - SSF| >= eps] <= delta`` given a sample variance.
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("epsilon must be > 0 and delta in (0, 1)")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    return max(1, math.ceil(variance / (delta * epsilon * epsilon)))
