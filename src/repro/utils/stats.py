"""Streaming statistics used by the Monte Carlo estimators.

The convergence analysis in Section 3.3 of the paper bounds the empirical
risk via the weak law of large numbers in terms of the sample variance, so
the engine needs numerically stable running mean/variance (Welford) over
possibly millions of samples, plus a binomial confidence interval for the
raw success probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class RunningStats:
    """Welford running mean and variance.

    ``push`` accepts weighted observations — importance sampling pushes
    ``w_i * e_i`` values, random sampling pushes plain indicators.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    _history: List[float] = field(default_factory=list)
    record_history: bool = False

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.record_history:
            self._history.append(self.mean)

    def extend(self, values) -> None:
        for v in values:
            self.push(v)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std_error(self) -> float:
        """Standard error of the running mean."""
        if self.count < 2:
            return float("inf")
        return math.sqrt(self.variance / self.count)

    @property
    def history(self) -> List[float]:
        """Running-mean trajectory (only if ``record_history`` is set)."""
        return list(self._history)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two independent accumulators (parallel chunks)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        return self


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because SSF is typically tiny
    (successful attacks are rare events).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = p + z * z / (2 * trials)
    spread = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    lo = max(0.0, (centre - spread) / denom)
    hi = min(1.0, (centre + spread) / denom)
    return (lo, hi)


def samples_for_risk(variance: float, epsilon: float, delta: float) -> int:
    """Chebyshev bound from the paper: N >= sigma^2 / (delta * eps^2).

    Returns the number of Monte Carlo samples guaranteeing
    ``Pr[|SSF_hat - SSF| >= eps] <= delta`` given a sample variance.
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("epsilon must be > 0 and delta in (0, 1)")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    return max(1, math.ceil(variance / (delta * epsilon * epsilon)))
