"""Low-level utilities shared across the framework.

The heavy lifters are :mod:`repro.utils.bitvec` (packed bit sequences used for
switching signatures and bit-parallel logic simulation) and
:mod:`repro.utils.rng` (seed plumbing so every stochastic component is
reproducible).
"""

from repro.utils.bitvec import (
    BitSequence,
    hamming_weight,
    pack_bits,
    unpack_bits,
)
from repro.utils.rng import RngFactory, as_generator
from repro.utils.stats import RunningStats, wilson_interval

__all__ = [
    "BitSequence",
    "hamming_weight",
    "pack_bits",
    "unpack_bits",
    "RngFactory",
    "as_generator",
    "RunningStats",
    "wilson_interval",
]
