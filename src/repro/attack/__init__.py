"""Holistic probabilistic attack modelling (Section 3 of the paper).

The attack process is characterized by the timing distance ``t = Tt - Te``
and a technique parameter vector ``p``; both are random variables whose
joint distribution ``f_{T,P}`` captures the technique's temporal accuracy
and cycle-to-cycle parameter variation.

* :mod:`repro.attack.techniques` — physical injection techniques.  The
  radiation model (``p = [g, r]``: spot centre gate and radius) follows the
  paper's Section 3.2 / [18]; clock- and voltage-glitch models are provided
  for the framework's generality claim.
* :mod:`repro.attack.distributions` — ``f_T`` (temporal window around the
  target cycle) and ``f_P`` (spatial distribution over candidate centre
  gates, from uniform to delta, plus the discrete radius distribution).
* :mod:`repro.attack.spec` — :class:`AttackSpec`, the bundle the engine and
  the samplers consume, including pointwise ``f_{T,P}`` evaluation for
  importance weights.
"""

from repro.attack.techniques import (
    AttackTechnique,
    ClockGlitchTechnique,
    PinpointUpsetTechnique,
    RadiationTechnique,
    VoltageGlitchTechnique,
)
from repro.attack.distributions import (
    RadiusDistribution,
    SpatialDistribution,
    TemporalDistribution,
)
from repro.attack.spec import AttackSpec, select_subblock

__all__ = [
    "AttackTechnique",
    "RadiationTechnique",
    "PinpointUpsetTechnique",
    "ClockGlitchTechnique",
    "VoltageGlitchTechnique",
    "TemporalDistribution",
    "SpatialDistribution",
    "RadiusDistribution",
    "AttackSpec",
    "select_subblock",
]
