"""The attack specification: technique + ``f_{T,P}`` in one bundle.

An :class:`AttackSpec` is what the SSF engine and every sampling strategy
consume.  It also evaluates the *nominal* density ``f_{T,P}(t, p)``
pointwise — the numerator of every importance weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.attack.distributions import (
    RadiusDistribution,
    SpatialDistribution,
    TemporalDistribution,
)
from repro.attack.techniques import AttackTechnique
from repro.errors import AttackModelError
from repro.gatesim.transient import TransientInjection
from repro.netlist.placement import Placement


@dataclass(frozen=True)
class AttackSample:
    """One draw of attack parameters ``(t, p)`` with its sampling weight.

    ``weight`` is the importance ratio ``f(t,p)/g(t,p)`` (1.0 under direct
    sampling from ``f``).  The estimator averages ``weight * e``.
    """

    t: int
    centre: int
    radius_um: float
    weight: float = 1.0


@dataclass
class AttackSpec:
    """Technique plus the holistic distribution of its parameters."""

    technique: AttackTechnique
    temporal: TemporalDistribution
    spatial: SpatialDistribution
    radius: RadiusDistribution

    def density(self, t: int, centre: int, radius_um: float) -> float:
        """Pointwise ``f_{T,P}``."""
        return (
            self.temporal.pmf(t)
            * self.spatial.pmf(centre)
            * self.radius.pmf(radius_um)
        )

    def sample_nominal(self, rng: np.random.Generator) -> AttackSample:
        """Draw directly from ``f_{T,P}`` (random-sampling baseline)."""
        return AttackSample(
            t=self.temporal.sample(rng),
            centre=self.spatial.sample(rng),
            radius_um=self.radius.sample(rng),
            weight=1.0,
        )

    def build_injection(
        self, placement: Placement, sample: AttackSample, rng: np.random.Generator
    ) -> TransientInjection:
        return self.technique.build_injection(
            placement, sample.centre, sample.radius_um, rng
        )


def select_subblock(
    placement: Placement,
    seed_nodes: Sequence[int],
    fraction: float = 0.125,
) -> List[int]:
    """Pick a physically contiguous sub-block of cells around seed nodes.

    Reproduces the paper's experimental setup where "the range for P
    includes a sub-block of gates of around 1/8 of MPU": the attacker aims
    the spot at the part of the die that contains the logic of interest.
    Returns the ``fraction`` of physical cells nearest the centroid of
    ``seed_nodes``.
    """
    if not 0 < fraction <= 1:
        raise AttackModelError("fraction must be in (0, 1]")
    if not seed_nodes:
        raise AttackModelError("need at least one seed node")
    netlist = placement.netlist
    cx = float(np.mean([placement.x[n] for n in seed_nodes]))
    cy = float(np.mean([placement.y[n] for n in seed_nodes]))
    physical = [
        node.nid
        for node in netlist.nodes
        if node.kind.value not in ("input", "const0", "const1")
    ]
    d2 = [
        (placement.x[nid] - cx) ** 2 + (placement.y[nid] - cy) ** 2
        for nid in physical
    ]
    order = np.argsort(d2, kind="stable")
    n_keep = max(1, int(round(fraction * len(physical))))
    return sorted(int(physical[i]) for i in order[:n_keep])
