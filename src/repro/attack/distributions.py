"""The attack-parameter distribution ``f_{T,P}``.

The paper regards both the timing distance ``T`` and the technique
parameters ``P`` as random variables: temporal accuracy and parameter
variation differ per technique and per attacker skill.  Section 6 sweeps
both (Fig. 11), so the distributions here are parameterized:

* :class:`TemporalDistribution` — uniform over an integer window of timing
  distances ``t = Tt - Te`` (window width = the technique's temporal
  accuracy; width 1 = a perfectly timed attacker).
* :class:`SpatialDistribution` — distribution of the radiation centre over
  a gate universe, interpolating from **uniform** (no spatial control) to
  **delta** on a target set (perfect aim) via a concentration parameter.
* :class:`RadiusDistribution` — uniform over a discrete set of spot radii
  (cycle-to-cycle parameter variation).

All three expose exact pointwise probability mass, which the importance
sampling weights ``f/g`` need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AttackModelError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class TemporalDistribution:
    """Uniform pmf over an integer window of timing distances.

    With ``centre=None`` (the default), the window is anchored at the
    target: ``t in {0, ..., window - 1}`` — every injection lands at or
    before the target cycle.  With an explicit ``centre``, the window is
    centred there (the paper's "uniform distribution with the range
    centered at the targeted time"): an inaccurate attacker also wastes
    shots *after* the target (negative ``t``), which is exactly the
    dilution Fig. 11(a) measures.
    """

    window: int
    centre: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise AttackModelError("temporal window must be positive")

    @property
    def start(self) -> int:
        if self.centre is None:
            return 0
        return self.centre - self.window // 2

    def support(self) -> range:
        return range(self.start, self.start + self.window)

    def pmf(self, t: int) -> float:
        return 1.0 / self.window if t in self.support() else 0.0

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.start, self.start + self.window))


class SpatialDistribution:
    """Centre-gate distribution over a fixed universe of node ids.

    ``concentration = 0`` is uniform over the universe; ``1`` is uniform
    over the ``targets`` subset (a delta when there is one target).  In
    between, the mass is the mixture ``(1 - c) * uniform(universe) +
    c * uniform(targets)`` — a simple, exactly-evaluable family that spans
    the paper's Fig. 11(b) sweep from "Uniform" to "Delta".
    """

    def __init__(
        self,
        universe: Sequence[int],
        targets: Optional[Sequence[int]] = None,
        concentration: float = 0.0,
    ):
        if not universe:
            raise AttackModelError("spatial universe must be non-empty")
        if not 0.0 <= concentration <= 1.0:
            raise AttackModelError("concentration must lie in [0, 1]")
        if concentration > 0 and not targets:
            raise AttackModelError("concentration > 0 needs a target set")
        self.universe: Tuple[int, ...] = tuple(sorted(set(universe)))
        self.targets: Tuple[int, ...] = tuple(sorted(set(targets or ())))
        bad = set(self.targets) - set(self.universe)
        if bad:
            raise AttackModelError(f"targets outside universe: {sorted(bad)[:5]}")
        self.concentration = concentration
        self._universe_index = {nid: i for i, nid in enumerate(self.universe)}

    def pmf(self, nid: int) -> float:
        if nid not in self._universe_index:
            return 0.0
        mass = (1.0 - self.concentration) / len(self.universe)
        if self.targets and nid in self.targets:
            mass += self.concentration / len(self.targets)
        return mass

    def sample(self, rng: np.random.Generator) -> int:
        if self.targets and rng.random() < self.concentration:
            return int(self.targets[rng.integers(0, len(self.targets))])
        return int(self.universe[rng.integers(0, len(self.universe))])

    def __len__(self) -> int:
        return len(self.universe)


@dataclass(frozen=True)
class RadiusDistribution:
    """Uniform pmf over a discrete set of spot radii (micrometres)."""

    radii_um: Tuple[float, ...] = (3.0, 5.0, 7.0, 9.0)

    def __post_init__(self) -> None:
        if not self.radii_um:
            raise AttackModelError("need at least one radius")
        if any(r <= 0 for r in self.radii_um):
            raise AttackModelError("radii must be positive")

    def pmf(self, radius: float) -> float:
        return 1.0 / len(self.radii_um) if radius in self.radii_um else 0.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.radii_um[rng.integers(0, len(self.radii_um))])
