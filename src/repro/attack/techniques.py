"""Physical fault-injection techniques.

Each technique turns sampled attack parameters into a
:class:`~repro.gatesim.transient.TransientInjection` for the gate-level
simulator.  The radiation technique is the paper's primary model (its
physics mirror particle-strike soft errors, so transient width falls off
with distance from the spot centre); clock and voltage glitch models are
included to demonstrate the framework is technique-agnostic.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AttackModelError
from repro.gatesim.timing import TimingModel
from repro.gatesim.transient import TransientInjection
from repro.netlist.cells import GateKind
from repro.netlist.placement import Placement
from repro.utils.rng import SeedLike, as_generator


class AttackTechnique(abc.ABC):
    """Base class: parameters -> deposited faults.

    ``impact_cycles`` is the number of consecutive clock cycles one
    injection disturbs (1 for a short radiation pulse; >1 models sustained
    techniques like long laser pulses or slow supply droop — the paper's
    "multi-cycle impact" extension).  The engine calls
    :meth:`build_injection` once per impacted cycle.
    """

    impact_cycles: int = 1

    @abc.abstractmethod
    def build_injection(
        self,
        placement: Placement,
        centre: int,
        radius_um: float,
        rng: np.random.Generator,
    ) -> TransientInjection:
        """Materialize one injection for one fault-injection cycle."""


@dataclass
class RadiationTechnique(AttackTechnique):
    """Radiation spot: all cells within ``radius`` of the centre are hit.

    Combinational cells receive a voltage transient whose width decays
    linearly with distance from the spot centre (peak ``peak_width_ps`` at
    the centre, zero at the rim).  Flip-flops whose cells lie within
    ``dff_upset_fraction`` of the radius have their stored bit flipped
    directly (storage-node upset).  ``target_filter`` restricts the hit to
    combinational gates or sequential elements only — used by the paper's
    Fig. 7(b)/Fig. 10 comparisons.
    """

    timing: TimingModel
    peak_width_ps: float = 280.0
    # Storage-node upsets need the strike core, not the whole spot: with
    # the default radii this gives 1-3 upset cells, matching the multi-cell
    # upset statistics of particle strikes.
    dff_upset_fraction: float = 0.22
    target_filter: Optional[str] = None  # None | "comb_only" | "seq_only"
    # Consecutive cycles disturbed by one shot (sustained exposure).  Note
    # the storage-node strikes are toggles, so over an *even* number of
    # cycles the direct upsets on a cell cancel pairwise (the combinational
    # transients, whose latching depends on the per-cycle strike phase, do
    # not).
    impact_cycles: int = 1

    def __post_init__(self) -> None:
        if self.peak_width_ps <= 0:
            raise AttackModelError("peak transient width must be positive")
        if not 0 < self.dff_upset_fraction <= 1:
            raise AttackModelError("dff_upset_fraction must be in (0, 1]")
        if self.target_filter not in (None, "comb_only", "seq_only"):
            raise AttackModelError(f"bad target_filter {self.target_filter!r}")
        if self.impact_cycles < 1:
            raise AttackModelError("impact_cycles must be at least 1")

    def build_injection(
        self,
        placement: Placement,
        centre: int,
        radius_um: float,
        rng: np.random.Generator,
    ) -> TransientInjection:
        if radius_um <= 0:
            raise AttackModelError("radiation radius must be positive")
        hit = placement.within_radius(centre, radius_um)
        strike_time = float(rng.uniform(0.0, self.timing.clock_period_ps))
        gate_pulses: Dict[int, float] = {}
        struck_dffs: List[int] = []
        for nid in hit:
            node = placement.netlist.node(nid)
            distance = placement.distance(centre, nid)
            if node.kind is GateKind.DFF:
                if self.target_filter == "comb_only":
                    continue
                if distance <= self.dff_upset_fraction * radius_um:
                    struck_dffs.append(nid)
            elif node.kind.is_combinational:
                if self.target_filter == "seq_only":
                    continue
                width = self.peak_width_ps * max(0.0, 1.0 - distance / radius_um)
                if width > 0:
                    gate_pulses[nid] = width
        return TransientInjection(
            gate_pulses=gate_pulses,
            struck_dffs=struck_dffs,
            strike_time_ps=strike_time,
        )


@dataclass
class PinpointUpsetTechnique(AttackTechnique):
    """Idealized single-cell injection (validation / what-if tool).

    The sampled centre is hit exactly: a flip-flop centre has its stored
    bit flipped; a combinational centre emits one full-width transient.
    The radius is ignored.  With the spatial universe restricted to
    flip-flop cells, this is the classical *single-bit upset* fault model
    — whose fault space is small enough to enumerate exhaustively
    (:mod:`repro.core.exhaustive`), giving the exact SSF the Monte Carlo
    estimate must converge to.
    """

    timing: TimingModel
    pulse_width_ps: float = 280.0
    impact_cycles: int = 1

    def build_injection(
        self,
        placement: Placement,
        centre: int,
        radius_um: float,
        rng: np.random.Generator,
    ) -> TransientInjection:
        node = placement.netlist.node(centre)
        if node.kind is GateKind.DFF:
            return TransientInjection(struck_dffs=[centre])
        return TransientInjection(
            gate_pulses={centre: self.pulse_width_ps},
            strike_time_ps=float(rng.uniform(0.0, self.timing.clock_period_ps)),
        )


@dataclass
class ClockGlitchTechnique(AttackTechnique):
    """Clock-period compression: long paths miss the shortened edge.

    Modelled as narrow transients appearing on the slowest gates inside the
    affected region near the (early) capture edge — the downstream latch-
    window check then decides what is captured.  ``glitch_depth_ps`` is how
    much the period is compressed.
    """

    timing: TimingModel
    glitch_depth_ps: float = 250.0

    def build_injection(
        self,
        placement: Placement,
        centre: int,
        radius_um: float,
        rng: np.random.Generator,
    ) -> TransientInjection:
        hit = placement.within_radius(centre, radius_um)
        threshold = self.timing.clock_period_ps - self.glitch_depth_ps
        sim_arrival = _arrival_times(placement)
        gate_pulses: Dict[int, float] = {}
        for nid in hit:
            node = placement.netlist.node(nid)
            if not node.kind.is_combinational:
                continue
            if sim_arrival[nid] >= threshold:
                # The net is still settling when the glitched edge samples.
                gate_pulses[nid] = self.glitch_depth_ps
        strike_time = self.timing.clock_period_ps - self.glitch_depth_ps
        return TransientInjection(gate_pulses=gate_pulses, strike_time_ps=strike_time)


@dataclass
class VoltageGlitchTechnique(AttackTechnique):
    """Supply droop: every gate in the region slows down; the slowest nets
    emit late transients.  A cruder, wider-footprint cousin of the clock
    glitch."""

    timing: TimingModel
    slowdown: float = 1.5
    width_ps: float = 120.0

    def build_injection(
        self,
        placement: Placement,
        centre: int,
        radius_um: float,
        rng: np.random.Generator,
    ) -> TransientInjection:
        if self.slowdown <= 1.0:
            raise AttackModelError("slowdown must exceed 1.0")
        hit = placement.within_radius(centre, radius_um)
        sim_arrival = _arrival_times(placement)
        lo, _hi = self.timing.latch_window
        gate_pulses: Dict[int, float] = {}
        for nid in hit:
            node = placement.netlist.node(nid)
            if not node.kind.is_combinational:
                continue
            if sim_arrival[nid] * self.slowdown >= lo:
                gate_pulses[nid] = self.width_ps
        return TransientInjection(
            gate_pulses=gate_pulses,
            strike_time_ps=float(rng.uniform(0.0, self.timing.clock_period_ps)),
        )


_ARRIVAL_CACHE: Dict[int, List[float]] = {}


def _arrival_times(placement: Placement) -> List[float]:
    """Static settle times per node (cached per netlist identity)."""
    key = id(placement.netlist)
    if key not in _ARRIVAL_CACHE:
        netlist = placement.netlist
        from repro.netlist.cells import CELL_LIBRARY

        arrival = [0.0] * len(netlist)
        for nid in netlist.topo_order():
            node = netlist.node(nid)
            delay = CELL_LIBRARY[node.kind].delay_ps
            arrival[nid] = delay + max(arrival[f] for f in node.fanins)
        _ARRIVAL_CACHE[key] = arrival
    return _ARRIVAL_CACHE[key]
