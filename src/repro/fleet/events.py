"""In-process event bus powering live campaign progress streaming.

One :class:`EventBus` instance lives inside the evaluation service.
Publishers (job state transitions, campaign progress hooks, the fleet
coordinator) append JSON-able event dicts to a per-topic ring buffer;
subscribers (SSE handlers, long-poll requests, the CLI) read events
*after* a sequence number they already hold, so a reconnecting client
never misses or re-reads an event that is still in the buffer.

The bus is thread-first (publishers run on service worker and HTTP
handler threads) but async-capable: :meth:`EventBus.wait_async` parks an
``asyncio`` task without pinning a thread, woken via
``loop.call_soon_threadsafe`` from whichever thread publishes next —
this is what lets the asyncio front-end fan one run's progress out to
many concurrent SSE watchers cheaply.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Event appended after a job's final state so streams know to close.
EVENT_END = "end"

SeqEvent = Tuple[int, dict]


class EventBus:
    """Per-topic sequence-numbered event ring buffer with blocking and
    async waits."""

    def __init__(self, history: int = 1024):
        self.history = max(1, history)
        self._cond = threading.Condition()
        self._events: Dict[str, Deque[SeqEvent]] = {}
        self._next_seq: Dict[str, int] = {}
        # (loop, asyncio.Event) pairs parked in wait_async; woken on any
        # publish (waiters re-filter by topic, which keeps publish O(w)).
        self._async_waiters: List[tuple] = []

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, topic: str, event: dict) -> int:
        """Append ``event`` to ``topic``; returns its sequence number."""
        with self._cond:
            seq = self._next_seq.get(topic, 0)
            self._next_seq[topic] = seq + 1
            buffer = self._events.setdefault(
                topic, deque(maxlen=self.history)
            )
            buffer.append((seq, dict(event)))
            self._cond.notify_all()
            waiters, self._async_waiters = self._async_waiters, []
        for loop, flag in waiters:
            try:
                loop.call_soon_threadsafe(flag.set)
            except RuntimeError:
                pass  # loop already closed; the waiter is gone anyway
        return seq

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def last_seq(self, topic: str) -> int:
        """Sequence number the next event on ``topic`` will get."""
        with self._cond:
            return self._next_seq.get(topic, 0)

    def events_after(self, topic: str, after: int) -> List[SeqEvent]:
        """Buffered ``(seq, event)`` pairs with ``seq >= after``."""
        with self._cond:
            buffer = self._events.get(topic)
            if not buffer:
                return []
            return [(seq, event) for seq, event in buffer if seq >= after]

    def wait(
        self, topic: str, after: int, timeout_s: Optional[float] = None
    ) -> List[SeqEvent]:
        """Block until ``topic`` has events at/after ``after`` (or
        timeout); returns them ([] on timeout).

        Publishes notify every waiter regardless of topic, so a single
        ``cond.wait`` would return empty as soon as *any* topic
        publishes — loop against an absolute deadline instead.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        with self._cond:
            while True:
                ready = self._events_after_locked(topic, after)
                if ready:
                    return ready
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(timeout=remaining)

    def _events_after_locked(self, topic: str, after: int) -> List[SeqEvent]:
        buffer = self._events.get(topic)
        if not buffer:
            return []
        return [(seq, event) for seq, event in buffer if seq >= after]

    async def wait_async(
        self, topic: str, after: int, timeout_s: Optional[float] = None
    ) -> List[SeqEvent]:
        """Async counterpart of :meth:`wait`: parks the task, not a
        thread, until a publisher wakes it."""
        import asyncio

        loop = asyncio.get_event_loop()
        while True:
            flag = asyncio.Event()
            with self._cond:
                ready = self._events_after_locked(topic, after)
                if ready:
                    return ready
                self._async_waiters.append((loop, flag))
            try:
                await asyncio.wait_for(flag.wait(), timeout=timeout_s)
            except asyncio.TimeoutError:
                with self._cond:
                    if (loop, flag) in self._async_waiters:
                        self._async_waiters.remove((loop, flag))
                return self._events_after_locked(topic, after)
