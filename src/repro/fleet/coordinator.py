"""Fleet coordinator: lease brokerage + streaming chunk consumption.

The coordinator lives inside the evaluation service process and turns a
queued job into distributed work:

* :class:`FleetScheduler` is a drop-in replacement for the in-process
  :class:`~repro.campaign.scheduler.WorkStealingScheduler` — it exposes
  the same ``run(chunks, on_chunk, start_index)`` contract the
  :class:`~repro.campaign.runner.CampaignRunner` drives, so the entire
  deterministic consumption path (reorder buffer, estimator merge,
  stopping rule, fsynced chunk log, checkpoints) is *literally the same
  code* whether chunks come from fork workers or from the fleet.  That
  is the bit-identical-resume argument: the runner cannot tell the
  difference.
* :class:`FleetCoordinator` owns the cross-run state: which runs are
  accepting leases, the lease-id → run routing table, and the worker
  registry feeding the fleet metrics (depth gauge, per-worker
  samples/sec).  A background sweeper expires overdue leases so chunks
  held by dead workers return to the pool within one TTL.

Results are validated against the :class:`~repro.fleet.ledger.ChunkLedger`
before they reach the runner: a result posted on an expired or
superseded lease is discarded (and counted), never merged — the
estimator can only ever see each chunk once.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
import uuid
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.campaign.scheduler import Chunk, ChunkResult
from repro.campaign.store import RunStore, record_from_dict
from repro.errors import LeaseGone, JobCancelled, ServiceError
from repro.fleet.ledger import ChunkLedger, LEDGER_FILE
from repro.fleet.telemetry import RunTelemetry
from repro.obs.fleet_metrics import (
    observe_lease_wait,
    observe_queue_wait,
    observe_roundtrip,
    record_chunk_accepted,
    record_lease_granted,
    record_lease_renewed,
    record_leases_expired,
    record_result_discarded,
    record_straggler,
    remove_worker_series,
    update_fleet_depth,
    update_worker_rate,
)
from repro.obs.logging import warn_once
from repro.obs.metrics import MetricsRegistry


class _RemoteEngine:
    """Placeholder engine for coordinator-side runners.

    Fleet runs never evaluate samples in the coordinator process, so the
    runner must not build the (expensive) real runtime; it only touches
    ``config`` and ``tracer`` attributes, both satisfied here.
    """

    config = None


class _RemoteSampler:
    """Named placeholder so result strategies read ``campaign:<sampler>``
    exactly like a local run."""

    def __init__(self, name: str):
        self.name = name


class WorkerInfo:
    """Liveness and throughput bookkeeping for one attached worker."""

    def __init__(self, worker_id: str, now: float):
        self.worker_id = worker_id
        self.first_seen = now
        self.last_seen = now
        self.chunks_completed = 0
        self.samples_total = 0
        self.busy_s = 0.0

    @property
    def samples_per_s(self) -> float:
        return self.samples_total / self.busy_s if self.busy_s > 0 else 0.0

    def to_dict(self, now: float) -> dict:
        return {
            "worker": self.worker_id,
            "last_seen_s": round(now - self.last_seen, 3),
            "chunks_completed": self.chunks_completed,
            "samples_total": self.samples_total,
            "samples_per_s": round(self.samples_per_s, 3),
        }


class FleetScheduler:
    """Scheduler facade over one job's chunk ledger.

    Constructed by the coordinator per fleet-dispatched job and handed
    to the :class:`~repro.campaign.runner.CampaignRunner` as its
    ``scheduler``; :meth:`run` blocks the service worker thread while
    HTTP handler threads feed validated results in through
    :meth:`accept`.
    """

    def __init__(
        self,
        coordinator: "FleetCoordinator",
        job,
        store: RunStore,
        spec,
        poll_interval_s: float = 0.25,
    ):
        self.coordinator = coordinator
        self.job = job
        self.store = store
        self.spec = spec
        self.poll_interval_s = poll_interval_s
        self.ledger: Optional[ChunkLedger] = None
        self._results: "queue_mod.Queue" = queue_mod.Queue()
        self._workers_seen: set = set()
        self._closed = False
        #: Correlation id carried by every grant, span, and event of
        #: this run — what lets a merged trace be joined back to logs.
        self.trace_id = uuid.uuid4().hex[:16]
        self.telemetry: Optional[RunTelemetry] = None
        self._bound_metrics: Optional[MetricsRegistry] = None
        self._bound_tracer = None

    @property
    def n_workers_used(self) -> int:
        return max(1, len(self._workers_seen))

    def bind_obs(self, metrics: MetricsRegistry, tracer) -> None:
        """Receive the runner's merged registry and tracer (called by
        :meth:`CampaignRunner._drive` before :meth:`run`).

        Shipped worker metrics are folded into ``metrics`` only after
        the consumption loop finishes — the runner's deterministic
        chunk-order merging must never race telemetry ingest."""
        self._bound_metrics = metrics
        self._bound_tracer = tracer

    # ------------------------------------------------------------------
    # runner-facing contract (mirrors WorkStealingScheduler.run)
    # ------------------------------------------------------------------
    def run(self, chunks, on_chunk, start_index: int = 0) -> None:
        remaining = [c for c in chunks if c.index >= start_index]
        if not remaining:
            return
        self.ledger = ChunkLedger(
            self.store.path / LEDGER_FILE,
            chunks,
            start_index=start_index,
            ttl_s=self.coordinator.lease_ttl_s,
        )
        self.telemetry = RunTelemetry(
            self.store, self.trace_id, metrics=self.coordinator.metrics
        )
        self.telemetry.record_event(
            "run_started",
            run_id=self.store.run_id,
            job_id=self.job.job_id,
            n_chunks=len(remaining),
            start_index=start_index,
        )
        self.coordinator._attach(self)
        try:
            # Exactly one queued result per tracked chunk (the ledger
            # accepts each chunk once), so counting consumptions — not
            # polling ``all_done``, which flips before the final result
            # is queued — is the race-free termination condition.
            consumed = 0
            while consumed < len(remaining):
                if self.job is not None and getattr(
                    self.job, "cancel_requested", False
                ):
                    raise JobCancelled(
                        f"job {self.job.job_id} cancelled while leasing"
                    )
                try:
                    result = self._results.get(timeout=self.poll_interval_s)
                except queue_mod.Empty:
                    continue
                consumed += 1
                if not on_chunk(result):
                    return
        finally:
            # Close under the coordinator lock: accept()/ingest run on
            # HTTP handler threads holding it, so after this block no
            # telemetry can mutate state we are about to export.
            with self.coordinator._lock:
                self._closed = True
                self.coordinator._detach(self)
                if self.ledger is not None:
                    self.ledger.release_all()
                self._export_telemetry()

    def _export_telemetry(self) -> None:
        """Fold shipped worker metrics into the runner's registry and
        write the merged fleet trace (run close, lock held).

        Runs after the consumption loop, so the runner's final
        ``_export_obs`` (which rewrites ``metrics.jsonl``) sees the
        shipped series; they are all non-deterministic, so the
        deterministic view — the fleet-vs-local parity surface — is
        untouched.
        """
        if self.telemetry is None:
            return
        self.telemetry.record_event("run_closed", run_id=self.store.run_id)
        if self._bound_metrics is not None:
            self._bound_metrics.merge_snapshot(
                self.telemetry.shipped.snapshot()
            )
        self.telemetry.export(self._bound_tracer)

    # ------------------------------------------------------------------
    # coordinator-facing entry points (called under the coordinator lock)
    # ------------------------------------------------------------------
    def try_lease(self, worker: str) -> Optional[Tuple[dict, bool]]:
        """Grant the next pending chunk of this run.

        Returns ``(wire payload, reassigned)``, or ``None`` when nothing
        is pending."""
        if self._closed or self.ledger is None:
            return None
        lease = self.ledger.lease(worker)
        if lease is None:
            return None
        reassigned = bool(getattr(lease, "reassigned", False))
        grant = lease.to_grant()
        grant.update(
            {
                "job_id": self.job.job_id,
                "run_id": self.store.run_id,
                "seed": self.spec.seed,
                "spec": self.spec.to_dict(),
                "ttl_s": self.coordinator.lease_ttl_s,
                "trace_id": self.trace_id,
            }
        )
        observe_queue_wait(self.coordinator.metrics, lease.queue_wait_s)
        if self.telemetry is not None:
            self.telemetry.record_event(
                "lease_granted",
                lease_id=lease.lease_id,
                chunk=lease.chunk.index,
                worker=worker,
                reassigned=reassigned,
                queue_wait_s=round(lease.queue_wait_s, 6),
            )
            self.telemetry.add_instant(
                "lease.reissue" if reassigned else "lease.grant",
                worker=worker,
                chunk=lease.chunk.index,
                lease_id=lease.lease_id,
            )
        return grant, reassigned

    def accept(
        self,
        lease_id: str,
        chunk_index: int,
        records: List[dict],
        metrics: Optional[List[dict]],
        telemetry: Optional[dict] = None,
    ) -> Chunk:
        """Validate a posted result against the ledger and queue it for
        consumption.  Raises :class:`LeaseGone` on discard."""
        if self._closed or self.ledger is None:
            raise LeaseGone(
                f"job {self.job.job_id} is no longer accepting results"
            )
        # Decode and validate BEFORE retiring the lease: if the payload
        # is malformed, the chunk must stay leased (it expires and is
        # re-issued), never done-but-unconsumed — that would strand one
        # queued-result slot and hang :meth:`run` forever.
        lease = self.ledger.get_lease(lease_id)
        if lease is None:
            raise LeaseGone(
                f"lease {lease_id} is unknown or already retired"
            )
        try:
            decoded = [record_from_dict(r) for r in records]
        except Exception as exc:
            raise ServiceError(
                f"chunk {chunk_index} result is malformed: {exc}",
                status=400,
            )
        if len(decoded) != lease.chunk.n_samples:
            raise ServiceError(
                f"chunk {chunk_index} result carries {len(decoded)} "
                f"records, expected {lease.chunk.n_samples}",
                status=400,
            )
        chunk = self.ledger.complete(lease_id, chunk_index)
        worker = lease.worker
        roundtrip_s = (
            time.time() - lease.granted_at if lease.granted_at else None
        )
        if roundtrip_s is not None:
            self.coordinator._note_roundtrip(
                worker, roundtrip_s, self.job.job_id, self.telemetry
            )
        if self.telemetry is not None:
            # Best-effort: the lease is already retired, so a telemetry
            # failure past this point must never abort the post — that
            # would strand the chunk done-but-unconsumed and hang run().
            try:
                if telemetry is not None:
                    self.telemetry.ingest(worker, telemetry)
                self.telemetry.record_event(
                    "chunk_accepted",
                    lease_id=lease_id,
                    chunk=chunk_index,
                    worker=worker,
                    roundtrip_s=(
                        round(roundtrip_s, 6)
                        if roundtrip_s is not None
                        else None
                    ),
                )
                self.telemetry.add_instant(
                    "chunk.accepted",
                    worker=worker,
                    chunk=chunk_index,
                    lease_id=lease_id,
                )
            except Exception as exc:
                warn_once(
                    f"fleet-telemetry-ingest-{self.job.job_id}",
                    f"telemetry ingest failed for chunk {chunk_index} "
                    f"from {worker}: {exc}",
                )
        self._results.put(ChunkResult(chunk_index, decoded, metrics))
        return chunk


class FleetCoordinator:
    """Cross-run lease brokerage, worker registry, and expiry sweeper."""

    #: A worker counts toward the fleet-depth gauge if it talked to the
    #: coordinator within this window.
    liveness_window_s = 30.0

    #: A worker silent this long is evicted from the registry and its
    #: per-worker rate gauge dropped — default worker ids embed
    #: pid+uuid, so without eviction every restarted worker would add a
    #: permanent WorkerInfo entry and Prometheus series to a long-lived
    #: coordinator.
    worker_eviction_s = 10 * liveness_window_s

    #: A chunk round-trip this many times the rolling fleet median flags
    #: its worker as a straggler (warn-once + EventBus event + counter).
    straggler_factor = 3.0

    #: Round-trips observed before the straggler detector arms — the
    #: median of a couple of samples is noise, not a baseline.
    straggler_min_samples = 5

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        lease_ttl_s: float = 10.0,
        sweep_interval_s: float = 1.0,
        events=None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.lease_ttl_s = float(lease_ttl_s)
        self.sweep_interval_s = float(sweep_interval_s)
        #: Optional :class:`~repro.fleet.events.EventBus` — straggler
        #: flags are published to the job's topic so live dashboards
        #: (``repro top``) see them on the same stream as progress.
        self.events = events
        self._lock = threading.RLock()
        self._runs: Dict[str, FleetScheduler] = {}       # job_id -> scheduler
        self._order: List[str] = []                      # lease fairness order
        self._lease_to_job: Dict[str, str] = {}
        self._workers: Dict[str, WorkerInfo] = {}
        self._roundtrips: Deque[float] = deque(maxlen=64)
        self._sweeper: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._sweeper is not None:
                return
            self._stop.clear()
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="repro-fleet-sweeper",
                daemon=True,
            )
            self._sweeper.start()

    def stop(self) -> None:
        self._stop.set()
        sweeper = self._sweeper
        if sweeper is not None:
            sweeper.join(timeout=5)
        self._sweeper = None

    def scheduler_for(self, job, store: RunStore, spec) -> FleetScheduler:
        """Build the scheduler (and placeholder runtime) for a fleet job."""
        return FleetScheduler(self, job, store, spec)

    @staticmethod
    def placeholder_runtime(spec):
        """(engine, sampler) stand-ins so the coordinator never builds
        the real evaluation context."""
        return _RemoteEngine(), _RemoteSampler(spec.sampler)

    def _attach(self, scheduler: FleetScheduler) -> None:
        with self._lock:
            job_id = scheduler.job.job_id
            self._runs[job_id] = scheduler
            if job_id not in self._order:
                self._order.append(job_id)
            # Re-adopted leases (coordinator restart) must route again.
            for lease in scheduler.ledger.active_leases():
                self._lease_to_job[lease.lease_id] = job_id

    def _detach(self, scheduler: FleetScheduler) -> None:
        with self._lock:
            job_id = scheduler.job.job_id
            self._runs.pop(job_id, None)
            if job_id in self._order:
                self._order.remove(job_id)
            self._lease_to_job = {
                lease_id: owner
                for lease_id, owner in self._lease_to_job.items()
                if owner != job_id
            }

    # ------------------------------------------------------------------
    # worker-facing protocol (HTTP handler threads)
    # ------------------------------------------------------------------
    def lease(self, worker: str) -> dict:
        """Grant one chunk to ``worker``, or report idle."""
        with self._lock:
            self._touch(worker)
            for job_id in list(self._order):
                scheduler = self._runs.get(job_id)
                if scheduler is None:
                    continue
                granted = scheduler.try_lease(worker)
                if granted is None:
                    continue
                grant, reassigned = granted
                self._lease_to_job[grant["lease_id"]] = job_id
                record_lease_granted(self.metrics, reassigned=reassigned)
                return grant
            return {"idle": True, "retry_after_s": self.sweep_interval_s}

    def heartbeat(self, lease_id: str) -> dict:
        """Renew a lease; raises :class:`LeaseGone` when it is not
        renewable (expired, retired, or the run finished)."""
        with self._lock:
            scheduler = self._scheduler_for_lease(lease_id)
            lease = scheduler.ledger.renew(lease_id)
            self._touch(lease.worker)
            record_lease_renewed(self.metrics)
            if scheduler.telemetry is not None:
                scheduler.telemetry.add_instant(
                    "lease.heartbeat",
                    worker=lease.worker,
                    chunk=lease.chunk.index,
                    lease_id=lease_id,
                )
            return {"lease_id": lease_id, "expires_at": lease.expires_at}

    def submit_chunk(self, payload: dict) -> dict:
        """Accept (or discard) one posted chunk result.

        Returns ``{"accepted": bool, ...}``; discards carry a reason
        instead of an error status so workers treat them as a normal
        outcome and simply move on to their next lease.
        """
        lease_id = payload.get("lease_id")
        worker = payload.get("worker", "?")
        chunk_index = int(payload.get("chunk", -1))
        with self._lock:
            self._touch(worker)
            scheduler = None
            try:
                scheduler = self._scheduler_for_lease(lease_id)
                chunk = scheduler.accept(
                    lease_id,
                    chunk_index,
                    payload.get("records") or [],
                    payload.get("metrics"),
                    telemetry=payload.get("telemetry"),
                )
            except LeaseGone as exc:
                record_result_discarded(self.metrics)
                if (
                    scheduler is not None
                    and scheduler.telemetry is not None
                ):
                    scheduler.telemetry.record_event(
                        "result_discarded",
                        lease_id=lease_id,
                        chunk=chunk_index,
                        worker=worker,
                        reason=str(exc),
                    )
                return {
                    "accepted": False,
                    "chunk": chunk_index,
                    "reason": str(exc),
                }
            self._lease_to_job.pop(lease_id, None)
            record_chunk_accepted(self.metrics)
            scheduler._workers_seen.add(worker)
            info = self._workers[worker]
            info.chunks_completed += 1
            info.samples_total += chunk.n_samples
            info.busy_s += max(0.0, float(payload.get("duration_s") or 0.0))
            if info.busy_s > 0:
                update_worker_rate(self.metrics, worker, info.samples_per_s)
            return {"accepted": True, "chunk": chunk_index}

    def post_telemetry(self, payload: dict) -> dict:
        """Accept an out-of-band telemetry bundle (``POST /v1/telemetry``).

        Used by workers whose lease is gone (expired mid-chunk, runtime
        build failure) and for end-of-loop span flushes — the spans and
        log records still matter for the merged trace even though no
        chunk result rides along.  Always best-effort: an unknown job is
        a polite no, never an error.
        """
        worker = str(payload.get("worker") or "?")
        job_id = payload.get("job_id")
        with self._lock:
            self._touch(worker)
            scheduler = self._runs.get(job_id) if job_id else None
            if scheduler is None or scheduler.telemetry is None:
                return {
                    "accepted": False,
                    "reason": f"no active run for job {job_id!r}",
                }
            telemetry = payload.get("telemetry")
            if isinstance(telemetry, dict):
                try:
                    scheduler.telemetry.ingest(worker, telemetry)
                except Exception as exc:
                    return {"accepted": False, "reason": str(exc)}
            return {"accepted": True}

    def _note_roundtrip(
        self,
        worker: str,
        seconds: float,
        job_id: str,
        telemetry: Optional[RunTelemetry],
    ) -> None:
        """Observe one chunk round-trip and flag stragglers (lock held).

        A worker whose round-trip exceeds ``straggler_factor`` × the
        rolling fleet median warns once, bumps the straggler counter,
        lands in ``events.jsonl``, and is published on the job's event
        topic so live dashboards can badge it.
        """
        observe_roundtrip(self.metrics, worker, seconds)
        history = self._roundtrips
        if len(history) >= self.straggler_min_samples:
            ordered = sorted(history)
            median = ordered[len(ordered) // 2]
            if median > 0 and seconds > self.straggler_factor * median:
                record_straggler(self.metrics, worker)
                warn_once(
                    f"fleet-straggler-{worker}",
                    f"fleet worker {worker} is straggling: chunk "
                    f"round-trip {seconds:.3f}s exceeds "
                    f"{self.straggler_factor:g}x the fleet median "
                    f"({median:.3f}s)",
                )
                if telemetry is not None:
                    telemetry.record_event(
                        "straggler",
                        worker=worker,
                        roundtrip_s=round(seconds, 6),
                        fleet_median_s=round(median, 6),
                        factor=self.straggler_factor,
                    )
                if self.events is not None:
                    self.events.publish(
                        job_id,
                        {
                            "type": "straggler",
                            "worker": worker,
                            "roundtrip_s": round(seconds, 6),
                            "fleet_median_s": round(median, 6),
                        },
                    )
        history.append(seconds)

    def _scheduler_for_lease(self, lease_id: Optional[str]) -> FleetScheduler:
        if not lease_id:
            raise LeaseGone("request carries no lease_id")
        job_id = self._lease_to_job.get(lease_id)
        scheduler = self._runs.get(job_id) if job_id else None
        if scheduler is None:
            raise LeaseGone(
                f"lease {lease_id} is unknown or expired "
                "(no active run holds it)"
            )
        return scheduler

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _touch(self, worker: str) -> None:
        now = time.time()
        info = self._workers.get(worker)
        if info is None:
            info = self._workers[worker] = WorkerInfo(worker, now)
        info.last_seen = now
        self._refresh_depth(now)

    def _refresh_depth(self, now: float) -> None:
        alive = sum(
            1
            for info in self._workers.values()
            if now - info.last_seen <= self.liveness_window_s
        )
        update_fleet_depth(self.metrics, alive)

    def status(self) -> dict:
        """Fleet snapshot for ``GET /v1/fleet`` and ``repro fleet status``."""
        now = time.time()
        with self._lock:
            self._refresh_depth(now)
            runs = []
            for job_id in self._order:
                scheduler = self._runs.get(job_id)
                if scheduler is None or scheduler.ledger is None:
                    continue
                counts = scheduler.ledger.counts()
                runs.append(
                    {
                        "job_id": job_id,
                        "run_id": scheduler.store.run_id,
                        "chunks": counts,
                        "leases": [
                            lease.to_grant()
                            for lease in scheduler.ledger.active_leases()
                        ],
                    }
                )
            return {
                "lease_ttl_s": self.lease_ttl_s,
                "workers": [
                    info.to_dict(now)
                    for info in sorted(
                        self._workers.values(),
                        key=lambda w: w.worker_id,
                    )
                ],
                "runs": runs,
            }

    # ------------------------------------------------------------------
    # expiry sweeping
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Expire overdue leases across every active run (returns how
        many expired).  Called by the background sweeper and by tests.
        Also evicts long-silent workers so the registry and the
        per-worker gauge series stay bounded."""
        expired = 0
        with self._lock:
            for scheduler in list(self._runs.values()):
                if scheduler.ledger is None:
                    continue
                due = scheduler.ledger.expire_due()
                for lease in due:
                    self._lease_to_job.pop(lease.lease_id, None)
                    if scheduler.telemetry is not None:
                        scheduler.telemetry.record_event(
                            "lease_expired",
                            lease_id=lease.lease_id,
                            chunk=lease.chunk.index,
                            worker=lease.worker,
                        )
                        scheduler.telemetry.add_instant(
                            "lease.expired",
                            worker=lease.worker,
                            chunk=lease.chunk.index,
                            lease_id=lease.lease_id,
                        )
                expired += len(due)
            record_leases_expired(self.metrics, expired)
            now = time.time()
            cutoff = now - self.worker_eviction_s
            for worker_id in [
                worker_id
                for worker_id, info in self._workers.items()
                if info.last_seen < cutoff
            ]:
                del self._workers[worker_id]
                remove_worker_series(self.metrics, worker_id)
            self._refresh_depth(now)
        return expired

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.sweep_interval_s):
            self.sweep()
