"""Durable chunk-lease ledger for distributed campaign execution.

The campaign layer's unit of work is a :class:`~repro.campaign.scheduler.Chunk`
— ``n_samples`` draws under an independent SeedSequence stream derived
from ``(campaign seed, chunk index)``.  The ledger promotes the
in-process chunk plan into a lease-based work table that many worker
processes can pull from over HTTP:

* ``pending`` chunks are granted to workers as time-bounded *leases*;
* a worker renews its lease with heartbeats while evaluating;
* a lease that outlives its TTL *expires*: the chunk returns to
  ``pending`` and is re-issued to the next worker that asks — because
  the chunk's seed stream is a pure function of (seed, index), the
  replacement evaluation is bit-identical to the one the dead worker
  would have returned;
* a result is only accepted from the chunk's *current, unexpired*
  lease.  Late results (posted after expiry or after the chunk was
  completed via another lease) raise :class:`~repro.errors.LeaseGone`
  and are discarded, so a resurrected worker can never double-count
  samples in the estimator.

Lease grants, renewals, and releases are appended to an fsynced JSONL
log (``ledger.jsonl`` inside the run directory), with the same crash
contract as the campaign chunk log: every grant is durable before the
worker learns its lease id, a crash can at worst tear the final line
(discarded on replay), and a restarted coordinator folds the log to
*re-adopt* in-flight leases — workers that survived the coordinator
keep heartbeating and their results are accepted as if nothing
happened.

Chunk *completion* is deliberately not tracked here: the campaign
:class:`~repro.campaign.store.RunStore` chunk log (a contiguous,
consumed prefix) is the only durable truth for finished work.  A chunk
whose result was accepted but not yet consumed when the coordinator
died simply re-runs after restart — deterministic seeding makes the
re-run bit-identical, which is what keeps the distributed estimate
equal to a single-node run of the same spec.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.campaign.scheduler import Chunk
from repro.errors import LeaseGone, ServiceError

LEDGER_FILE = "ledger.jsonl"

EVENT_LEASE = "lease"
EVENT_RENEW = "renew"
EVENT_RELEASE = "release"

#: Release reasons recorded in the ledger log (observability only).
RELEASED_COMPLETE = "complete"
RELEASED_EXPIRED = "expired"
RELEASED_CLOSED = "closed"


def new_lease_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Lease:
    """One worker's time-bounded claim on one chunk."""

    lease_id: str
    chunk: Chunk
    worker: str
    expires_at: float  # unix wall-clock, comparable across restarts
    granted_at: float = 0.0  # wall-clock grant time (SLO round-trips)
    queue_wait_s: float = 0.0  # how long the chunk sat pending

    def to_grant(self) -> dict:
        """The worker-facing slice of the lease (protocol payload)."""
        return {
            "lease_id": self.lease_id,
            "chunk": self.chunk.index,
            "n_samples": self.chunk.n_samples,
            "worker": self.worker,
            "expires_at": self.expires_at,
        }


class ChunkLedger:
    """Lease-based state machine over one campaign's chunk plan.

    ``chunks`` is the full plan; indices below ``start_index`` are
    already consumed into the run's durable log (the resume prefix) and
    are never tracked or re-issued.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        chunks: Sequence[Chunk],
        start_index: int = 0,
        ttl_s: float = 10.0,
        clock=None,
    ):
        import time

        self.path = pathlib.Path(path)
        self.ttl_s = float(ttl_s)
        self._clock = clock if clock is not None else time.time
        self._lock = threading.RLock()
        self._chunks: Dict[int, Chunk] = {
            c.index: c for c in chunks if c.index >= start_index
        }
        self._pending: List[int] = sorted(self._chunks)
        self._leases: Dict[str, Lease] = {}        # active, by lease id
        self._chunk_lease: Dict[int, str] = {}     # chunk -> active lease
        self._done: Set[int] = set()
        self._ever_leased: Set[int] = set()
        # When each pending chunk became pending (queue-wait SLO).
        now = self._clock()
        self._pending_since: Dict[int, float] = {
            index: now for index in self._pending
        }
        self._replay()

    # ------------------------------------------------------------------
    # durable log
    # ------------------------------------------------------------------
    def _append(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _replay(self) -> None:
        """Fold an existing ledger log: re-adopt unexpired leases.

        Runs at construction (coordinator start or restart).  Leases on
        chunks this plan no longer tracks (already consumed) are
        ignored; expired leases fall back to ``pending`` — their chunks
        will be re-issued exactly as if the sweeper had expired them.
        """
        if not self.path.exists():
            return
        with open(self.path) as fh:
            lines = fh.read().split("\n")
        trailing_complete = bool(lines) and lines[-1] == ""
        if trailing_complete:
            lines.pop()
        leases: Dict[str, Lease] = {}
        for i, line in enumerate(lines):
            last = i == len(lines) - 1
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if last and not trailing_complete:
                    break  # torn final append from a crash: drop it
                raise ServiceError(
                    f"corrupt fleet ledger {self.path} at line {i + 1}"
                )
            event = payload["event"]
            if event == EVENT_LEASE:
                chunk = self._chunks.get(payload["chunk"])
                if chunk is None:
                    continue  # consumed before this (re)start
                leases[payload["lease_id"]] = Lease(
                    lease_id=payload["lease_id"],
                    chunk=chunk,
                    worker=payload["worker"],
                    expires_at=float(payload["expires_at"]),
                    # Older ledgers predate grant-time tracking.
                    granted_at=float(payload.get("granted_at", 0.0)),
                )
            elif event == EVENT_RENEW:
                lease = leases.get(payload["lease_id"])
                if lease is not None:
                    lease.expires_at = float(payload["expires_at"])
            elif event == EVENT_RELEASE:
                leases.pop(payload["lease_id"], None)
            else:
                raise ServiceError(
                    f"fleet ledger {self.path} has unknown event "
                    f"{event!r} at line {i + 1}"
                )
        now = self._clock()
        for lease in leases.values():
            if lease.expires_at <= now:
                continue  # stale; its chunk stays pending
            # A later lease on the same chunk supersedes earlier ones.
            current = self._chunk_lease.get(lease.chunk.index)
            if current is not None:
                superseded = self._leases.pop(current)
                if superseded.expires_at > lease.expires_at:
                    self._leases[current] = superseded
                    continue
                self._chunk_lease.pop(superseded.chunk.index, None)
            self._leases[lease.lease_id] = lease
            self._chunk_lease[lease.chunk.index] = lease.lease_id
            self._ever_leased.add(lease.chunk.index)
            if lease.chunk.index in self._pending:
                self._pending.remove(lease.chunk.index)

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------
    def lease(
        self, worker: str, ttl_s: Optional[float] = None
    ) -> Optional[Lease]:
        """Grant the lowest pending chunk to ``worker``; ``None`` when
        nothing is pending (everything leased or done)."""
        with self._lock:
            if not self._pending:
                return None
            index = self._pending.pop(0)
            now = self._clock()
            lease = Lease(
                lease_id=new_lease_id(),
                chunk=self._chunks[index],
                worker=worker,
                expires_at=now + (ttl_s or self.ttl_s),
                granted_at=now,
                queue_wait_s=max(
                    0.0, now - self._pending_since.pop(index, now)
                ),
            )
            self._append(
                {
                    "event": EVENT_LEASE,
                    "lease_id": lease.lease_id,
                    "chunk": index,
                    "n_samples": lease.chunk.n_samples,
                    "worker": worker,
                    "expires_at": lease.expires_at,
                    "granted_at": lease.granted_at,
                }
            )
            self._leases[lease.lease_id] = lease
            self._chunk_lease[index] = lease.lease_id
            reassigned = index in self._ever_leased
            self._ever_leased.add(index)
            lease.reassigned = reassigned  # type: ignore[attr-defined]
            return lease

    def renew(self, lease_id: str, ttl_s: Optional[float] = None) -> Lease:
        """Heartbeat: push the lease's expiry out by one TTL."""
        with self._lock:
            lease = self._require_live(lease_id)
            lease.expires_at = self._clock() + (ttl_s or self.ttl_s)
            self._append(
                {
                    "event": EVENT_RENEW,
                    "lease_id": lease_id,
                    "expires_at": lease.expires_at,
                }
            )
            return lease

    def complete(self, lease_id: str, chunk_index: int) -> Chunk:
        """Validate and retire a lease whose chunk result arrived.

        Raises :class:`LeaseGone` for unknown/expired/superseded leases
        and for index mismatches — the caller must discard the result.
        """
        with self._lock:
            lease = self._require_live(lease_id)
            if lease.chunk.index != chunk_index:
                raise LeaseGone(
                    f"lease {lease_id} is for chunk {lease.chunk.index}, "
                    f"result claims chunk {chunk_index}"
                )
            self._release(lease, RELEASED_COMPLETE)
            self._done.add(chunk_index)
            return lease.chunk

    def _require_live(self, lease_id: str) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise LeaseGone(f"lease {lease_id} is unknown or already retired")
        if lease.expires_at <= self._clock():
            # Expire in place: the sweeper may simply not have run yet.
            self._release(lease, RELEASED_EXPIRED)
            self._pending_insert(lease.chunk.index)
            raise LeaseGone(
                f"lease {lease_id} on chunk {lease.chunk.index} expired "
                f"(worker {lease.worker})"
            )
        return lease

    def _release(self, lease: Lease, reason: str) -> None:
        self._append(
            {
                "event": EVENT_RELEASE,
                "lease_id": lease.lease_id,
                "chunk": lease.chunk.index,
                "reason": reason,
            }
        )
        self._leases.pop(lease.lease_id, None)
        if self._chunk_lease.get(lease.chunk.index) == lease.lease_id:
            self._chunk_lease.pop(lease.chunk.index, None)

    def _pending_insert(self, index: int) -> None:
        if index not in self._done and index not in self._pending:
            import bisect

            bisect.insort(self._pending, index)
            self._pending_since[index] = self._clock()

    # ------------------------------------------------------------------
    # sweeping and introspection
    # ------------------------------------------------------------------
    def expire_due(self) -> List[Lease]:
        """Expire every lease past its deadline; their chunks return to
        ``pending``.  Returns the expired leases (for metrics)."""
        with self._lock:
            now = self._clock()
            due = [
                lease
                for lease in list(self._leases.values())
                if lease.expires_at <= now
            ]
            for lease in due:
                self._release(lease, RELEASED_EXPIRED)
                self._pending_insert(lease.chunk.index)
            return due

    def release_all(self) -> None:
        """Retire every active lease (run finished or cancelled)."""
        with self._lock:
            for lease in list(self._leases.values()):
                self._release(lease, RELEASED_CLOSED)

    def get_lease(self, lease_id: str) -> Optional[Lease]:
        with self._lock:
            return self._leases.get(lease_id)

    def active_leases(self) -> List[Lease]:
        with self._lock:
            return list(self._leases.values())

    @property
    def all_done(self) -> bool:
        with self._lock:
            return len(self._done) == len(self._chunks)

    def counts(self) -> dict:
        with self._lock:
            return {
                "total": len(self._chunks),
                "pending": len(self._pending),
                "leased": len(self._leases),
                "done": len(self._done),
            }
