"""Distributed worker fleet: chunk leasing, heartbeats, progress events.

The fleet layer turns the evaluation service into a coordinator that
many worker *processes* (local or remote) pull campaign chunks from over
HTTP.  Determinism is preserved end-to-end: chunks are SeedSequence-
seeded pure functions of (campaign seed, chunk index), leases guarantee
each chunk is merged exactly once, and the coordinator consumes results
through the same reorder-buffer path as a single-node run — so a fleet
run (including one that lost workers or the coordinator mid-flight) is
bit-identical to running the campaign locally.
"""

from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetScheduler,
    WorkerInfo,
)
from repro.fleet.events import EVENT_END, EventBus
from repro.fleet.ledger import ChunkLedger, LEDGER_FILE, Lease
from repro.fleet.worker import FleetWorker, default_worker_id

__all__ = [
    "ChunkLedger",
    "EVENT_END",
    "EventBus",
    "FleetCoordinator",
    "FleetScheduler",
    "FleetWorker",
    "LEDGER_FILE",
    "Lease",
    "WorkerInfo",
    "default_worker_id",
]
