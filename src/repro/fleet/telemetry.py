"""Per-run assembler for telemetry shipped by fleet workers.

One :class:`RunTelemetry` instance rides along with each
:class:`~repro.fleet.coordinator.FleetScheduler`.  It receives, under
the coordinator lock, everything a worker ships besides the sample
records themselves:

* **spans** — wall-clock-normalized :class:`~repro.obs.tracing.SpanEvent`
  dicts, bucketed into one lane per worker and stitched (together with
  the coordinator's own tracer lane and instant annotations for lease
  grants, heartbeats, expiries, and accepts) into a single merged Chrome
  trace written as ``trace_fleet.json`` when the run closes;
* **metrics** — the worker's non-deterministic registry snapshot,
  accumulated in a private registry and folded into the runner's merged
  registry only after the consumption loop has finished (so the merge
  can never race the runner's strictly-ordered deterministic merging);
* **log records** — structured, correlation-ID'd lines from the
  worker's :class:`~repro.obs.logging.LogBuffer`, appended (with lease
  lifecycle events) to the run's ``events.jsonl``.

Everything here is advisory: shipped telemetry is forced
non-deterministic on ingest, so the deterministic metric view — and
with it the fleet-vs-single-node parity guarantee — cannot move no
matter what a worker ships.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.obs.fleet_metrics import (
    observe_lease_wait,
    record_telemetry_shipped,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import chrome_instant, merge_chrome_trace, wall_offset

#: Synthetic pid for the coordinator's lane in the merged trace.  Fleet
#: test workers are threads of one process, so real pids would collapse
#: every lane into one track; lanes get stable synthetic pids instead.
COORDINATOR_PID = 1


class RunTelemetry:
    """Collects one run's shipped telemetry (locked by the caller)."""

    def __init__(
        self,
        store,
        trace_id: str,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.trace_id = trace_id
        #: Coordinator-side SLO registry (straggler counters etc.).
        self.metrics = metrics
        #: Shipped worker metrics, merged into the runner's registry at
        #: run close — never while chunks are still being consumed.
        self.shipped = MetricsRegistry()
        self._lanes: Dict[str, List[dict]] = {}
        self._instants: List[Tuple[str, float, Optional[str], dict]] = []
        self.n_spans = 0
        self.n_logs = 0
        self.n_dropped = 0

    # ------------------------------------------------------------------
    # ingest (coordinator lock held)
    # ------------------------------------------------------------------
    def ingest(self, worker: str, telemetry: dict) -> None:
        """Fold one worker's shipped telemetry bundle."""
        if not isinstance(telemetry, dict):
            return
        spans = telemetry.get("spans")
        if isinstance(spans, list) and spans:
            lane = self._lanes.setdefault(worker, [])
            for span in spans:
                if isinstance(span, dict) and "name" in span:
                    lane.append(span)
                    self.n_spans += 1
        metrics = telemetry.get("metrics")
        if isinstance(metrics, list):
            # Force non-semantic: whatever a worker ships can never
            # reach the deterministic view the parity tests compare.
            safe = [
                {**m, "deterministic": False}
                for m in metrics
                if isinstance(m, dict)
            ]
            try:
                self.shipped.merge_snapshot(safe)
            except Exception:
                pass  # malformed shipped metrics are dropped, not fatal
        logs = telemetry.get("logs")
        n_logs = 0
        if isinstance(logs, list):
            for record in logs:
                if isinstance(record, dict):
                    self.record_event(
                        "log", worker=worker, **{
                            k: v for k, v in record.items()
                            if k not in ("type", "worker")
                        }
                    )
                    n_logs += 1
        self.n_logs += n_logs
        try:
            self.n_dropped += int(telemetry.get("n_dropped") or 0)
        except (TypeError, ValueError):
            pass  # garbage drop count from a buggy worker: ignore
        if self.metrics is not None:
            record_telemetry_shipped(
                self.metrics, len(spans or ()), n_logs
            )
            lease_wait = telemetry.get("lease_wait_s")
            if isinstance(lease_wait, (int, float)) and lease_wait >= 0:
                observe_lease_wait(self.metrics, worker, float(lease_wait))

    # ------------------------------------------------------------------
    # coordinator-side annotations
    # ------------------------------------------------------------------
    def record_event(self, event_type: str, **fields: object) -> None:
        """Append one operational event to the run's ``events.jsonl``."""
        event = {"type": event_type, "trace_id": self.trace_id, **fields}
        event.setdefault("t", time.time())
        try:
            self.store.append_event(event)
        except OSError:
            pass  # advisory: a full disk must not kill the run

    def add_instant(
        self, name: str, worker: Optional[str] = None, **attrs: object
    ) -> None:
        """Queue an instant annotation (lease grant, heartbeat, expiry)
        for the merged trace, pinned to ``worker``'s lane (or the
        coordinator's when ``worker`` is None)."""
        self._instants.append((name, time.time(), worker, dict(attrs)))

    # ------------------------------------------------------------------
    # merged trace export
    # ------------------------------------------------------------------
    def worker_lanes(self) -> List[str]:
        """Workers that shipped spans, in lane order."""
        return sorted(self._lanes)

    def build_trace(self, coordinator_tracer=None) -> dict:
        """Stitch the merged Chrome trace: coordinator lane + one lane
        per worker + instant annotations."""
        lanes = []
        if (
            coordinator_tracer is not None
            and getattr(coordinator_tracer, "enabled", False)
        ):
            offset = wall_offset()
            lanes.append(
                {
                    "pid": COORDINATOR_PID,
                    "tid": 0,
                    "name": "coordinator",
                    "spans": coordinator_tracer.export_spans(offset),
                }
            )
            self.n_dropped += getattr(coordinator_tracer, "n_dropped", 0)
        pid_of = {
            worker: COORDINATOR_PID + 1 + i
            for i, worker in enumerate(self.worker_lanes())
        }
        for worker, spans in sorted(self._lanes.items()):
            lanes.append(
                {
                    "pid": pid_of[worker],
                    "tid": 0,
                    "name": f"worker {worker}",
                    "spans": spans,
                }
            )
        instants = [
            chrome_instant(
                name,
                t_s,
                pid_of.get(worker, COORDINATOR_PID),
                0,
                **attrs,
            )
            for name, t_s, worker, attrs in self._instants
        ]
        trace = merge_chrome_trace(
            lanes, instants, n_dropped=self.n_dropped
        )
        trace["otherData"]["trace_id"] = self.trace_id
        return trace

    def export(self, coordinator_tracer=None) -> None:
        """Write ``trace_fleet.json`` (run close)."""
        try:
            self.store.write_fleet_trace(self.build_trace(coordinator_tracer))
        except OSError:
            pass  # advisory export
