"""Fleet worker: lease chunks over HTTP, evaluate, stream results back.

A :class:`FleetWorker` is a long-lived process (``repro worker --attach
<url>``) that repeatedly

1. asks the coordinator for a lease (``POST /v1/lease``) — backing off
   while the service is idle or unreachable;
2. builds (and caches, keyed by spec hash) the evaluation runtime for
   the leased campaign spec;
3. evaluates the chunk under its SeedSequence stream — identical to what
   the in-process scheduler would compute, because
   :func:`~repro.campaign.scheduler.chunk_seed_sequence` is a pure
   function of (campaign seed, chunk index);
4. keeps the lease alive with heartbeats (``POST /v1/heartbeat``) from a
   side thread while the evaluation runs;
5. posts the serialized :class:`~repro.campaign.scheduler.ChunkResult`
   (``POST /v1/chunks``).

With telemetry enabled (the default) each chunk also runs under a real
:class:`~repro.obs.tracing.Tracer` bound to the lease's correlation
context (trace id, run id, lease id, chunk index): its spans — exported
on the *wall* clock, since the coordinator's ``perf_counter`` is a
different clock domain — plus a non-deterministic metrics snapshot and
the chunk's structured log records ship inside the result payload's
``telemetry`` field.  Spans that can only be measured after the post
itself (``chunk.post``) carry over into the next shipment, and are
flushed through the out-of-band ``POST /v1/telemetry`` verb when the
worker goes idle or exits — same verb used when a lease is lost
mid-chunk and there is no result to ride along with.  Telemetry is
always best-effort: no telemetry failure may ever cost a chunk.

A rejected result (lease expired while we evaluated — e.g. the process
was suspended, or the chunk was re-issued and finished elsewhere) is a
*normal* outcome: the worker logs it and moves on.  Workers are
stateless and disposable — kill one mid-chunk and the coordinator
re-leases its chunk after one TTL with no effect on the final estimate.
"""

from __future__ import annotations

import logging
import socket
import os
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.scheduler import Chunk, _run_chunk
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import record_to_dict
from repro.errors import ServiceError
from repro.obs.logging import LogBuffer
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer

logger = logging.getLogger(__name__)

#: ``engine_factory(spec) -> (engine, sampler)``; tests and benchmarks
#: inject stubs, production workers build the spec's real runtime.
EngineFactory = Callable[[CampaignSpec], Tuple[object, object]]

#: Per-chunk span budget.  Worker chunks are short (one lease TTL), so
#: a modest cap keeps telemetry payloads bounded; overflow is counted
#: and shipped in ``n_dropped``.
CHUNK_TRACE_EVENTS = 20_000


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _Heartbeat:
    """Background lease renewal while a chunk evaluates.

    Renews at a third of the TTL so two consecutive failures still leave
    slack before expiry.  A renewal rejected with 410 (lease gone) sets
    :attr:`lost` — the worker checks it before posting the result and
    drops the chunk without the round-trip.
    """

    def __init__(self, client, lease_id: str, ttl_s: float):
        self.client = client
        self.lease_id = lease_id
        self.interval_s = max(0.05, ttl_s / 3.0)
        self.lost = False
        self.renewals = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{lease_id}", daemon=True
        )

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.client.heartbeat(self.lease_id)
                self.renewals += 1
            except ServiceError as exc:
                if exc.status == 410:
                    self.lost = True
                    return
                # Transport blip: keep trying, the lease has slack.
                logger.debug(
                    "heartbeat for %s failed: %s", self.lease_id, exc
                )


class _ChunkObs:
    """Per-chunk telemetry context: tracer + registry + log buffer."""

    def __init__(self, worker_id: str, grant: dict, lease_wait_s: float):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            max_events=CHUNK_TRACE_EVENTS, metrics=self.registry
        )
        self.logs = LogBuffer()
        self.lease_wait_s = lease_wait_s
        self.context = {
            "trace_id": grant.get("trace_id"),
            "run_id": grant.get("run_id"),
            "lease_id": grant.get("lease_id"),
            "chunk": grant.get("chunk"),
            "worker": worker_id,
        }
        self.logs.bind(**self.context)
        if lease_wait_s > 0:
            now = time.perf_counter()
            self.tracer.add_event(
                "worker.lease_wait",
                now - lease_wait_s,
                lease_wait_s,
                **self.context,
            )

    def bundle(self, carry_spans: List[dict]) -> dict:
        """The shipping payload: spans (wall clock), metrics, logs."""
        return {
            "worker": self.context["worker"],
            "pid": os.getpid(),
            "spans": carry_spans + self.tracer.export_spans(),
            "n_dropped": self.tracer.n_dropped,
            "metrics": self.registry.snapshot(),
            "logs": self.logs.drain(),
            "lease_wait_s": self.lease_wait_s,
        }


class FleetWorker:
    """One attached worker's lease → evaluate → post loop."""

    def __init__(
        self,
        client,
        worker_id: Optional[str] = None,
        poll_s: float = 0.5,
        engine_factory: Optional[EngineFactory] = None,
        max_chunks: Optional[int] = None,
        telemetry: bool = True,
        artifacts_dir: Optional[str] = None,
    ):
        self.client = client
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.engine_factory = engine_factory
        self.max_chunks = max_chunks
        self.telemetry = telemetry
        # Local ArtifactStore root for persistent cycle baselines: leased
        # specs without a baseline_store get this one, so a worker
        # re-attached to the same machine warm-starts golden state across
        # campaigns and restarts (``repro worker --artifacts-dir``).
        self.artifacts_dir = artifacts_dir
        self.chunks_completed = 0
        self.chunks_rejected = 0
        self._stop = threading.Event()
        # Runtime cache: workers serve many chunks of the same campaign,
        # so the (expensive) context build happens once per distinct spec.
        self._runtimes: Dict[str, Tuple[object, object]] = {}
        # Spans measured after their chunk shipped (chunk.post) ride
        # with the next shipment to the same job, or flush out-of-band.
        self._carry: Dict[str, List[dict]] = {}
        self._idle_since = time.perf_counter()

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Lease-and-evaluate until stopped (or ``max_chunks`` served)."""
        backoff = self.poll_s
        self._idle_since = time.perf_counter()
        try:
            while not self._stop.is_set():
                if (
                    self.max_chunks is not None
                    and self.chunks_completed + self.chunks_rejected
                    >= self.max_chunks
                ):
                    return
                try:
                    grant = self.client.lease(self.worker_id)
                except ServiceError as exc:
                    # Coordinator down or restarting: linger and retry —
                    # workers must survive coordinator crashes.
                    logger.debug("lease request failed: %s", exc)
                    self._sleep(backoff)
                    backoff = min(backoff * 2, 5.0)
                    continue
                backoff = self.poll_s
                if grant.get("idle"):
                    self._flush_carry()
                    self._sleep(
                        float(grant.get("retry_after_s") or self.poll_s)
                    )
                    continue
                lease_wait_s = time.perf_counter() - self._idle_since
                self._serve(grant, lease_wait_s)
                self._idle_since = time.perf_counter()
        finally:
            self._flush_carry()

    def _sleep(self, seconds: float) -> None:
        self._stop.wait(seconds)

    # ------------------------------------------------------------------
    # one lease
    # ------------------------------------------------------------------
    def _serve(self, grant: dict, lease_wait_s: float = 0.0) -> None:
        lease_id = grant["lease_id"]
        job_id = str(grant.get("job_id") or "")
        chunk = Chunk(int(grant["chunk"]), int(grant["n_samples"]))
        ttl_s = float(grant.get("ttl_s") or 10.0)
        # Shipping is gated twice: per worker (--no-telemetry) and per
        # campaign (spec.telemetry) — either side can turn it off.
        spec_wants = bool((grant.get("spec") or {}).get("telemetry", True))
        obs = (
            _ChunkObs(self.worker_id, grant, lease_wait_s)
            if (self.telemetry and spec_wants)
            else None
        )
        try:
            engine, sampler, spec, cache_hit = self._runtime_for(grant)
        except Exception as exc:  # noqa: BLE001 - keep the worker alive
            logger.error(
                "cannot build runtime for chunk %d: %s", chunk.index, exc
            )
            if obs is not None:
                obs.logs.error("runtime build failed", error=str(exc))
                self._post_telemetry(job_id, obs.bundle(
                    self._carry.pop(job_id, [])
                ))
            self.chunks_rejected += 1
            self._sleep(self.poll_s)
            return
        if obs is not None:
            obs.registry.counter(
                "worker_runtime_cache_hits_total"
                if cache_hit
                else "worker_runtime_cache_misses_total",
                deterministic=False,
            ).inc()

        prev_tracer = getattr(engine, "tracer", None)
        if obs is not None:
            try:
                # The engine contributes per-sample stage spans to the
                # chunk's lane, exactly like a traced local run.
                engine.tracer = obs.tracer
            except Exception:  # noqa: BLE001 - engines may forbid setattr
                pass
        started = time.perf_counter()
        try:
            with _Heartbeat(self.client, lease_id, ttl_s) as heartbeat:
                result = _run_chunk(engine, sampler, spec.seed, chunk)
        finally:
            if obs is not None and prev_tracer is not None:
                try:
                    engine.tracer = prev_tracer
                except Exception:  # noqa: BLE001
                    pass
            elif obs is not None and hasattr(engine, "tracer"):
                try:
                    engine.tracer = NULL_TRACER
                except Exception:  # noqa: BLE001
                    pass
        duration_s = time.perf_counter() - started
        if obs is not None:
            obs.tracer.add_event(
                "chunk.evaluate",
                started,
                duration_s,
                n_samples=chunk.n_samples,
                heartbeats=heartbeat.renewals,
                **obs.context,
            )
            obs.logs.info(
                "chunk evaluated",
                n_samples=chunk.n_samples,
                duration_s=round(duration_s, 6),
                cache_hit=cache_hit,
            )
        if heartbeat.lost:
            logger.info(
                "lease %s lost during chunk %d; dropping result",
                lease_id,
                chunk.index,
            )
            if obs is not None:
                # No result to ride along with — ship out-of-band so the
                # wasted work is still visible in the merged trace.
                obs.logs.warning("lease lost mid-chunk; result dropped")
                self._post_telemetry(
                    job_id, obs.bundle(self._carry.pop(job_id, []))
                )
            self.chunks_rejected += 1
            return

        payload = {
            "lease_id": lease_id,
            "worker": self.worker_id,
            "chunk": result.index,
            "records": [record_to_dict(r) for r in result.records],
            "metrics": result.metrics,
            "duration_s": duration_s,
        }
        if obs is not None:
            payload["telemetry"] = obs.bundle(self._carry.pop(job_id, []))
        post_started = time.perf_counter()
        try:
            outcome = self.client.post_chunk(payload)
        except ServiceError as exc:
            logger.warning(
                "posting chunk %d failed: %s", chunk.index, exc
            )
            self.chunks_rejected += 1
            return
        if obs is not None:
            # The post span can only be measured after the payload left,
            # so it carries over into the next shipment for this job.
            post_dur = time.perf_counter() - post_started
            self._carry.setdefault(job_id, []).append(
                {
                    "name": "chunk.post",
                    "start_s": time.time() - post_dur,
                    "duration_s": post_dur,
                    "attrs": {
                        **obs.context,
                        "accepted": bool(outcome.get("accepted")),
                    },
                }
            )
        if outcome.get("accepted"):
            self.chunks_completed += 1
        else:
            # Late result: the lease expired and the chunk was (or will
            # be) re-evaluated elsewhere, bit-identically.
            logger.info(
                "chunk %d discarded by coordinator: %s",
                chunk.index,
                outcome.get("reason"),
            )
            self.chunks_rejected += 1

    # ------------------------------------------------------------------
    # telemetry shipping
    # ------------------------------------------------------------------
    def _post_telemetry(self, job_id: str, bundle: dict) -> None:
        """Best-effort out-of-band shipment; never raises."""
        post = getattr(self.client, "post_telemetry", None)
        if post is None or not job_id:
            return
        try:
            post({
                "job_id": job_id,
                "worker": self.worker_id,
                "telemetry": bundle,
            })
        except ServiceError as exc:
            logger.debug("telemetry post failed: %s", exc)

    def _flush_carry(self) -> None:
        """Ship carried-over spans (idle or shutting down)."""
        if not self.telemetry or not self._carry:
            return
        for job_id in list(self._carry):
            spans = self._carry.pop(job_id)
            if spans:
                self._post_telemetry(
                    job_id,
                    {
                        "worker": self.worker_id,
                        "pid": os.getpid(),
                        "spans": spans,
                    },
                )

    def _runtime_for(self, grant: dict):
        import dataclasses

        from repro.campaign.spec_hash import spec_hash

        spec = CampaignSpec.from_dict(grant["spec"])
        if self.artifacts_dir and spec.baseline_store is None:
            # Worker-side store warm-up: baseline_store is non-semantic,
            # so the digest (and the posted result identity) is unchanged.
            spec = dataclasses.replace(
                spec, baseline_store=str(self.artifacts_dir)
            )
        digest = spec_hash(spec)
        cached = self._runtimes.get(digest)
        cache_hit = cached is not None
        if cached is None:
            if self.engine_factory is not None:
                cached = self.engine_factory(spec)
            else:
                cached = spec.build_runtime()
            self._runtimes[digest] = cached
        engine, sampler = cached
        return engine, sampler, spec, cache_hit
