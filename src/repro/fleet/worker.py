"""Fleet worker: lease chunks over HTTP, evaluate, stream results back.

A :class:`FleetWorker` is a long-lived process (``repro worker --attach
<url>``) that repeatedly

1. asks the coordinator for a lease (``POST /v1/lease``) — backing off
   while the service is idle or unreachable;
2. builds (and caches, keyed by spec hash) the evaluation runtime for
   the leased campaign spec;
3. evaluates the chunk under its SeedSequence stream — identical to what
   the in-process scheduler would compute, because
   :func:`~repro.campaign.scheduler.chunk_seed_sequence` is a pure
   function of (campaign seed, chunk index);
4. keeps the lease alive with heartbeats (``POST /v1/heartbeat``) from a
   side thread while the evaluation runs;
5. posts the serialized :class:`~repro.campaign.scheduler.ChunkResult`
   (``POST /v1/chunks``).

A rejected result (lease expired while we evaluated — e.g. the process
was suspended, or the chunk was re-issued and finished elsewhere) is a
*normal* outcome: the worker logs it and moves on.  Workers are
stateless and disposable — kill one mid-chunk and the coordinator
re-leases its chunk after one TTL with no effect on the final estimate.
"""

from __future__ import annotations

import logging
import socket
import os
import threading
import time
import uuid
from typing import Callable, Dict, Optional, Tuple

from repro.campaign.scheduler import Chunk, _run_chunk
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import record_to_dict
from repro.errors import ServiceError

logger = logging.getLogger(__name__)

#: ``engine_factory(spec) -> (engine, sampler)``; tests and benchmarks
#: inject stubs, production workers build the spec's real runtime.
EngineFactory = Callable[[CampaignSpec], Tuple[object, object]]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class _Heartbeat:
    """Background lease renewal while a chunk evaluates.

    Renews at a third of the TTL so two consecutive failures still leave
    slack before expiry.  A renewal rejected with 410 (lease gone) sets
    :attr:`lost` — the worker checks it before posting the result and
    drops the chunk without the round-trip.
    """

    def __init__(self, client, lease_id: str, ttl_s: float):
        self.client = client
        self.lease_id = lease_id
        self.interval_s = max(0.05, ttl_s / 3.0)
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{lease_id}", daemon=True
        )

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.client.heartbeat(self.lease_id)
            except ServiceError as exc:
                if exc.status == 410:
                    self.lost = True
                    return
                # Transport blip: keep trying, the lease has slack.
                logger.debug(
                    "heartbeat for %s failed: %s", self.lease_id, exc
                )


class FleetWorker:
    """One attached worker's lease → evaluate → post loop."""

    def __init__(
        self,
        client,
        worker_id: Optional[str] = None,
        poll_s: float = 0.5,
        engine_factory: Optional[EngineFactory] = None,
        max_chunks: Optional[int] = None,
    ):
        self.client = client
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.engine_factory = engine_factory
        self.max_chunks = max_chunks
        self.chunks_completed = 0
        self.chunks_rejected = 0
        self._stop = threading.Event()
        # Runtime cache: workers serve many chunks of the same campaign,
        # so the (expensive) context build happens once per distinct spec.
        self._runtimes: Dict[str, Tuple[object, object]] = {}

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Lease-and-evaluate until stopped (or ``max_chunks`` served)."""
        backoff = self.poll_s
        while not self._stop.is_set():
            if (
                self.max_chunks is not None
                and self.chunks_completed + self.chunks_rejected
                >= self.max_chunks
            ):
                return
            try:
                grant = self.client.lease(self.worker_id)
            except ServiceError as exc:
                # Coordinator down or restarting: linger and retry —
                # workers must survive coordinator crashes.
                logger.debug("lease request failed: %s", exc)
                self._sleep(backoff)
                backoff = min(backoff * 2, 5.0)
                continue
            backoff = self.poll_s
            if grant.get("idle"):
                self._sleep(float(grant.get("retry_after_s") or self.poll_s))
                continue
            self._serve(grant)

    def _sleep(self, seconds: float) -> None:
        self._stop.wait(seconds)

    # ------------------------------------------------------------------
    # one lease
    # ------------------------------------------------------------------
    def _serve(self, grant: dict) -> None:
        lease_id = grant["lease_id"]
        chunk = Chunk(int(grant["chunk"]), int(grant["n_samples"]))
        ttl_s = float(grant.get("ttl_s") or 10.0)
        try:
            engine, sampler, spec = self._runtime_for(grant)
        except Exception as exc:  # noqa: BLE001 - keep the worker alive
            logger.error(
                "cannot build runtime for chunk %d: %s", chunk.index, exc
            )
            self.chunks_rejected += 1
            self._sleep(self.poll_s)
            return

        started = time.perf_counter()
        with _Heartbeat(self.client, lease_id, ttl_s) as heartbeat:
            result = _run_chunk(engine, sampler, spec.seed, chunk)
        duration_s = time.perf_counter() - started
        if heartbeat.lost:
            logger.info(
                "lease %s lost during chunk %d; dropping result",
                lease_id,
                chunk.index,
            )
            self.chunks_rejected += 1
            return

        payload = {
            "lease_id": lease_id,
            "worker": self.worker_id,
            "chunk": result.index,
            "records": [record_to_dict(r) for r in result.records],
            "metrics": result.metrics,
            "duration_s": duration_s,
        }
        try:
            outcome = self.client.post_chunk(payload)
        except ServiceError as exc:
            logger.warning(
                "posting chunk %d failed: %s", chunk.index, exc
            )
            self.chunks_rejected += 1
            return
        if outcome.get("accepted"):
            self.chunks_completed += 1
        else:
            # Late result: the lease expired and the chunk was (or will
            # be) re-evaluated elsewhere, bit-identically.
            logger.info(
                "chunk %d discarded by coordinator: %s",
                chunk.index,
                outcome.get("reason"),
            )
            self.chunks_rejected += 1

    def _runtime_for(self, grant: dict):
        from repro.campaign.spec_hash import spec_hash

        spec = CampaignSpec.from_dict(grant["spec"])
        digest = spec_hash(spec)
        cached = self._runtimes.get(digest)
        if cached is None:
            if self.engine_factory is not None:
                cached = self.engine_factory(spec)
            else:
                cached = spec.build_runtime()
            self._runtimes[digest] = cached
        engine, sampler = cached
        return engine, sampler, spec
