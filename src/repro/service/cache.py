"""Content-addressed result cache over durable campaign runs.

The cache's key is the canonical spec hash
(:func:`repro.campaign.spec_hash.spec_hash`); its value is a campaign
run directory.  There is deliberately *no* separate cache database: the
run directories the campaign layer already writes (``spec.json`` +
``checkpoint.json`` + ``metrics.jsonl``) are the cache, so results
produced by ``repro campaign run`` on the CLI are served by the service
too, and deleting a run directory evicts it.

Two lookup grades:

* :meth:`ResultCache.lookup_complete` — a finished run whose spec
  hashes identically: its SSF/CI is returned without spending a single
  new Monte Carlo sample;
* :meth:`ResultCache.lookup_partial` — an interrupted run with the same
  hash: the service resumes it (``campaign resume`` semantics), reusing
  every sample already in the durable log.

Spec hashes are memoized per ``(run_id, spec.json mtime)``, so repeated
lookups over a large runs directory stay cheap.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.campaign.spec import load_spec
from repro.campaign.spec_hash import spec_hash
from repro.campaign.store import (
    RunStore,
    SPEC_FILE,
    STATUS_COMPLETE,
)
from repro.errors import EvaluationError
from repro.utils.stats import wilson_interval


@dataclass(frozen=True)
class CacheHit:
    """A finished run serving a resubmitted spec."""

    run_id: str
    checkpoint: dict


def result_payload(store: RunStore, z: float = 1.96) -> dict:
    """The servable result of a finished run: SSF, Wilson CI, counters.

    Raises :class:`EvaluationError` (naming the run path) when the run
    directory is missing or its checkpoint is unreadable, so callers
    surface a clean message instead of a raw traceback.
    """
    if not (store.path / SPEC_FILE).exists():
        raise EvaluationError(
            f"campaign run directory {store.path} is missing or has no "
            f"{SPEC_FILE}"
        )
    checkpoint = store.read_checkpoint()
    n_samples = int(checkpoint.get("n_samples") or 0)
    n_success = int(checkpoint.get("n_success") or 0)
    ci_low, ci_high = (
        wilson_interval(n_success, n_samples, z=z) if n_samples else (0.0, 1.0)
    )
    return {
        "run_id": store.run_id,
        "status": checkpoint.get("status"),
        "ssf": checkpoint.get("ssf"),
        "ci_low": ci_low,
        "ci_high": ci_high,
        "ci_z": z,
        "n_samples": n_samples,
        "n_success": n_success,
        "std_error": checkpoint.get("std_error"),
        "stop_reason": checkpoint.get("stop_reason"),
    }


class ResultCache:
    """Spec-hash index over every run directory under ``runs_dir``."""

    def __init__(self, runs_dir: Union[str, pathlib.Path]):
        self.runs_dir = pathlib.Path(runs_dir)
        # (run_id) -> (spec.json mtime_ns, spec hash); refreshed on change.
        self._hashes: Dict[str, Tuple[int, str]] = {}

    # ------------------------------------------------------------------
    # hashing with memoization
    # ------------------------------------------------------------------
    def run_hash(self, run_id: str) -> Optional[str]:
        """Spec hash of one run, or ``None`` for unreadable specs.

        Corrupt run directories are treated as cache misses rather than
        submit-time failures: a damaged old run must never block new
        work from being queued.
        """
        spec_file = self.runs_dir / run_id / SPEC_FILE
        try:
            mtime = spec_file.stat().st_mtime_ns
        except OSError:
            self._hashes.pop(run_id, None)
            return None
        cached = self._hashes.get(run_id)
        if cached is not None and cached[0] == mtime:
            return cached[1]
        try:
            digest = spec_hash(load_spec(spec_file))
        except EvaluationError:
            self._hashes.pop(run_id, None)
            return None
        self._hashes[run_id] = (mtime, digest)
        return digest

    def _runs_by_hash(self, digest: str):
        for run_id in RunStore.list_runs(self.runs_dir):
            if self.run_hash(run_id) == digest:
                yield RunStore(self.runs_dir / run_id)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup_complete(self, digest: str) -> Optional[CacheHit]:
        """A finished run for this spec hash, if any."""
        for store in self._runs_by_hash(digest):
            checkpoint = store.read_checkpoint()
            if checkpoint.get("status") == STATUS_COMPLETE:
                return CacheHit(run_id=store.run_id, checkpoint=checkpoint)
        return None

    def lookup_partial(self, digest: str) -> Optional[str]:
        """An unfinished run for this spec hash, resumable in place."""
        for store in self._runs_by_hash(digest):
            checkpoint = store.read_checkpoint()
            if checkpoint.get("status") != STATUS_COMPLETE:
                return store.run_id
        return None
