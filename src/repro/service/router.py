"""Transport-agnostic HTTP routing for the evaluation service.

:class:`ApiRouter` maps ``(method, path, query, body)`` onto
:class:`~repro.service.service.EvaluationService` calls and returns
plain :class:`ApiResponse` payloads — no sockets, no framework.  Both
front-ends reuse it verbatim:

* the threaded :mod:`repro.service.server`
  (``http.server.ThreadingHTTPServer``), and
* the asyncio :mod:`repro.service.async_server`
  (``asyncio.start_server``),

so every route — including the fleet protocol — behaves identically on
either transport.  The one thing the router cannot finish by itself is
a live SSE stream: for ``GET /v1/campaigns/<id>/events`` it returns an
:class:`EventStreamResponse` *subscription descriptor* and the transport
drives the stream (a handler thread blocking on
:meth:`~repro.fleet.events.EventBus.wait`, or an asyncio task parked in
:meth:`~repro.fleet.events.EventBus.wait_async`).  With ``?poll=1`` the
same route degrades to a single long-poll JSON response that any plain
HTTP client (``curl``) can consume.

Routes (all under ``/v1``)::

    POST   /v1/campaigns              submit a CampaignSpec (JSON body)
    POST   /v1/campaigns/batch        submit N specs in one request
    GET    /v1/campaigns              list jobs
    GET    /v1/campaigns/{id}         job status + live sample count
    GET    /v1/campaigns/{id}/result  SSF + Wilson CI (when done)
    GET    /v1/campaigns/{id}/report  rendered obs report (text/plain)
    GET    /v1/campaigns/{id}/events  SSE progress stream (?poll=1 ⇒ JSON)
    DELETE /v1/campaigns/{id}         cancel
    POST   /v1/lease                  fleet: lease a chunk
    POST   /v1/heartbeat              fleet: renew a lease
    POST   /v1/chunks                 fleet: post a chunk result
    POST   /v1/telemetry              fleet: out-of-band telemetry bundle
    GET    /v1/fleet                  fleet: workers + runs snapshot
    GET    /v1/healthz                liveness + job state counts
    GET    /v1/metrics                Prometheus text exposition
"""

from __future__ import annotations

import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.campaign.spec import CampaignSpec
from repro.errors import ReproError, ServiceError
from repro.fleet.events import EVENT_END
from repro.service.service import EvaluationService

API_PREFIX = "/v1"

#: Long-poll waits are clamped to this so dead clients release their
#: handler thread in bounded time.
MAX_POLL_WAIT_S = 30.0


@dataclass
class ApiRequest:
    """One parsed HTTP request, transport-independent."""

    method: str
    path: str                      # already stripped of query string
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def from_target(
        cls, method: str, target: str, body: bytes = b""
    ) -> "ApiRequest":
        """Build from a raw request target (path + optional query)."""
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return cls(
            method=method.upper(),
            path=parsed.path.rstrip("/") or "/",
            query=query,
            body=body,
        )

    def json(self) -> dict:
        if not self.body:
            raise ServiceError("empty request body", status=400)
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}", status=400)
        if not isinstance(payload, dict):
            raise ServiceError(
                "request body must be a JSON object", status=400
            )
        return payload


@dataclass
class ApiResponse:
    """A complete response the transport just has to serialize."""

    status: int
    body: bytes
    content_type: str = "application/json"

    @classmethod
    def json(cls, status: int, payload) -> "ApiResponse":
        return cls(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    @classmethod
    def text(cls, status: int, text: str) -> "ApiResponse":
        return cls(
            status, text.encode("utf-8"), "text/plain; charset=utf-8"
        )


@dataclass
class EventStreamResponse:
    """SSE subscription descriptor; the transport owns the stream loop.

    ``topic`` is the event-bus topic (the job id) and ``after`` the
    first sequence number to deliver — a reconnecting client passes the
    last id it saw (+1) to resume without gaps.  The transport sends one
    ``format_sse`` frame per event and a comment frame every
    ``keepalive_s`` of silence, until it has delivered an
    ``EVENT_END``-typed event or the client disconnects.
    """

    topic: str
    after: int = 0
    keepalive_s: float = 15.0

    content_type = "text/event-stream"


def format_sse(seq: int, event: dict) -> bytes:
    data = json.dumps(event, sort_keys=True)
    return f"id: {seq}\ndata: {data}\n\n".encode("utf-8")


KEEPALIVE_FRAME = b": keepalive\n\n"


def is_end_event(event: dict) -> bool:
    return event.get("type") == EVENT_END


class ApiRouter:
    """Route table over one :class:`EvaluationService`."""

    def __init__(self, service: EvaluationService):
        self.service = service

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(
        self, request: ApiRequest
    ) -> Union[ApiResponse, EventStreamResponse]:
        """Never raises: errors become ``{"error": ...}`` responses."""
        try:
            if not request.path.startswith(API_PREFIX):
                raise ServiceError(
                    f"unknown path {request.path!r}", status=404
                )
            return self._route(request)
        except ServiceError as exc:
            return ApiResponse.json(exc.status or 500, {"error": str(exc)})
        except ReproError as exc:
            return ApiResponse.json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - must answer the client
            return ApiResponse.json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(
        self, request: ApiRequest
    ) -> Union[ApiResponse, EventStreamResponse]:
        service = self.service
        method, path = request.method, request.path

        if path == f"{API_PREFIX}/healthz" and method == "GET":
            return ApiResponse.json(
                200,
                {
                    "status": "ok",
                    "jobs": service.state_counts(),
                    "queue_depth": service.queue.depth(),
                },
            )
        if path == f"{API_PREFIX}/metrics" and method == "GET":
            return ApiResponse.text(200, service.metrics_text())
        if path == f"{API_PREFIX}/fleet" and method == "GET":
            return ApiResponse.json(200, service.fleet_status())
        if path == f"{API_PREFIX}/lease" and method == "POST":
            payload = request.json()
            worker = payload.get("worker")
            if not worker:
                raise ServiceError("lease request needs a worker id",
                                   status=400)
            return ApiResponse.json(200, service.fleet_lease(str(worker)))
        if path == f"{API_PREFIX}/heartbeat" and method == "POST":
            payload = request.json()
            lease_id = payload.get("lease_id")
            if not lease_id:
                raise ServiceError("heartbeat needs a lease_id", status=400)
            return ApiResponse.json(
                200, service.fleet_heartbeat(str(lease_id))
            )
        if path == f"{API_PREFIX}/chunks" and method == "POST":
            return ApiResponse.json(
                200, service.fleet_submit_chunk(request.json())
            )
        if path == f"{API_PREFIX}/telemetry" and method == "POST":
            return ApiResponse.json(
                200, service.fleet_telemetry(request.json())
            )
        if path == f"{API_PREFIX}/campaigns":
            if method == "POST":
                return self._submit(request)
            if method == "GET":
                return ApiResponse.json(
                    200, {"jobs": service.list_jobs()}
                )
        if path == f"{API_PREFIX}/campaigns/batch" and method == "POST":
            return self._submit_batch(request)
        if path.startswith(f"{API_PREFIX}/campaigns/"):
            job_id, sub = self._job_path(path)
            if job_id:
                return self._job_route(request, job_id, sub)
        raise ServiceError(
            f"unknown route {method} {path!r}", status=404
        )

    @staticmethod
    def _job_path(path: str) -> Tuple[Optional[str], Optional[str]]:
        parts = [p for p in path.split("/") if p]
        # parts == ["v1", "campaigns", <id>?, <sub>?]
        job_id = parts[2] if len(parts) > 2 else None
        sub = parts[3] if len(parts) > 3 else None
        return job_id, sub

    def _submit(self, request: ApiRequest) -> ApiResponse:
        payload = request.json()
        spec_data = payload.get("spec", payload)
        priority = int(payload.get("priority", 0)) if "spec" in payload else 0
        try:
            spec = CampaignSpec.from_dict(spec_data)
        except (ReproError, TypeError) as exc:
            raise ServiceError(f"invalid campaign spec: {exc}", status=400)
        job, cache_hit = self.service.submit(spec, priority=priority)
        return ApiResponse.json(
            202 if job.state == "queued" else 200,
            {
                "job_id": job.job_id,
                "run_id": job.run_id,
                "spec_hash": job.spec_hash,
                "state": job.state,
                "cache_hit": cache_hit,
            },
        )

    def _submit_batch(self, request: ApiRequest) -> ApiResponse:
        """``POST /v1/campaigns/batch``: N specs, one request.

        All specs are validated before any is submitted, so a malformed
        entry rejects the whole batch without enqueueing a partial
        prefix — the caller can fix and resend the batch idempotently.
        """
        payload = request.json()
        raw_specs = payload.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ServiceError(
                "batch submit needs a non-empty 'specs' list", status=400
            )
        priority = int(payload.get("priority", 0))
        specs = []
        for index, spec_data in enumerate(raw_specs):
            try:
                specs.append(CampaignSpec.from_dict(spec_data))
            except (ReproError, TypeError) as exc:
                raise ServiceError(
                    f"invalid campaign spec at index {index}: {exc}",
                    status=400,
                )
        submitted = self.service.submit_many(specs, priority=priority)
        jobs = [
            {
                "job_id": job.job_id,
                "run_id": job.run_id,
                "spec_hash": job.spec_hash,
                "state": job.state,
                "cache_hit": cache_hit,
            }
            for job, cache_hit in submitted
        ]
        all_cached = all(entry["cache_hit"] for entry in jobs)
        return ApiResponse.json(
            200 if all_cached else 202, {"jobs": jobs}
        )

    def _job_route(
        self, request: ApiRequest, job_id: str, sub: Optional[str]
    ) -> Union[ApiResponse, EventStreamResponse]:
        service = self.service
        method = request.method
        if method == "DELETE" and sub is None:
            job = service.cancel(job_id)
            return ApiResponse.json(
                200, {"job_id": job.job_id, "state": job.state}
            )
        if method != "GET":
            raise ServiceError(
                f"unsupported method {method} for job {job_id}", status=404
            )
        if sub is None:
            return ApiResponse.json(200, service.job_status(job_id))
        if sub == "result":
            return ApiResponse.json(200, service.job_result(job_id))
        if sub == "report":
            return ApiResponse.text(200, service.job_report(job_id))
        if sub == "events":
            return self._events(request, job_id)
        raise ServiceError(f"unknown subresource {sub!r}", status=404)

    # ------------------------------------------------------------------
    # progress events
    # ------------------------------------------------------------------
    def _events(
        self, request: ApiRequest, job_id: str
    ) -> Union[ApiResponse, EventStreamResponse]:
        job = self.service.get_job(job_id)  # 404 for unknown jobs
        try:
            after = int(request.query.get("after", 0))
        except ValueError:
            raise ServiceError("'after' must be an integer", status=400)
        if request.query.get("poll"):
            return self._long_poll(request, job, after)
        return EventStreamResponse(topic=job_id, after=after)

    def _long_poll(self, request: ApiRequest, job, after: int) -> ApiResponse:
        """One blocking wait, answered as plain JSON.

        A terminal job answers instantly from the buffer (never parks
        the client), so ``curl`` against a finished run always returns.
        """
        try:
            timeout_s = float(request.query.get("timeout", 10.0))
        except ValueError:
            raise ServiceError("'timeout' must be a number", status=400)
        timeout_s = max(0.0, min(timeout_s, MAX_POLL_WAIT_S))
        bus = self.service.events
        if job.terminal:
            events = bus.events_after(job.job_id, after)
        else:
            events = bus.wait(job.job_id, after, timeout_s=timeout_s)
        next_after = max((seq for seq, _ in events), default=after - 1) + 1
        return ApiResponse.json(
            200,
            {
                "job_id": job.job_id,
                "events": [
                    {"seq": seq, "event": event} for seq, event in events
                ],
                "next_after": next_after,
                "end": any(is_end_event(event) for _, event in events),
            },
        )
