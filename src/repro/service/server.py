"""HTTP front-end for the evaluation service (stdlib only).

A thin JSON layer over :class:`~repro.service.service.EvaluationService`
on :class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies.  Routes (all under ``/v1``)::

    POST   /v1/campaigns            submit a CampaignSpec (JSON body)
    GET    /v1/campaigns            list jobs
    GET    /v1/campaigns/{id}         job status + live sample count
    GET    /v1/campaigns/{id}/result  SSF + Wilson CI (when done)
    GET    /v1/campaigns/{id}/report  rendered obs report (text/plain)
    DELETE /v1/campaigns/{id}         cancel
    GET    /v1/healthz              liveness + job state counts
    GET    /v1/metrics              Prometheus text exposition

The submit body is either a bare spec document or ``{"spec": {...},
"priority": N}``.  Errors come back as ``{"error": "..."}`` with 400
(bad spec), 404 (unknown job), or 409 (result not ready / job failed).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.campaign.spec import CampaignSpec
from repro.errors import ReproError, ServiceError
from repro.obs.logging import get_logger
from repro.service.service import EvaluationService

API_PREFIX = "/v1"


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: EvaluationService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> EvaluationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        get_logger("service.http").debug(format, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send(status, text.encode("utf-8"), "text/plain; charset=utf-8")

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("empty request body", status=400)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}", status=400)
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object",
                               status=400)
        return payload

    def _job_path(self) -> Tuple[Optional[str], Optional[str]]:
        """``(job_id, subresource)`` from ``/v1/campaigns/...``."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        # parts == ["v1", "campaigns", <id>?, <sub>?]
        job_id = parts[2] if len(parts) > 2 else None
        sub = parts[3] if len(parts) > 3 else None
        return job_id, sub

    def _dispatch(self, method: str) -> None:
        try:
            path = self.path.split("?")[0].rstrip("/")
            if not path.startswith(API_PREFIX):
                raise ServiceError(f"unknown path {path!r}", status=404)
            self._route(method, path)
        except ServiceError as exc:
            self._send_json(exc.status or 500, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - handler must answer
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str) -> None:
        service = self.service
        if path == f"{API_PREFIX}/healthz" and method == "GET":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "jobs": service.state_counts(),
                    "queue_depth": service.queue.depth(),
                },
            )
            return
        if path == f"{API_PREFIX}/metrics" and method == "GET":
            self._send_text(200, service.metrics_text())
            return
        if path == f"{API_PREFIX}/campaigns":
            if method == "POST":
                self._submit()
                return
            if method == "GET":
                self._send_json(200, {"jobs": service.list_jobs()})
                return
        if path.startswith(f"{API_PREFIX}/campaigns/"):
            job_id, sub = self._job_path()
            if job_id:
                self._job_route(method, job_id, sub)
                return
        raise ServiceError(f"unknown route {method} {path!r}", status=404)

    def _submit(self) -> None:
        payload = self._read_json()
        spec_data = payload.get("spec", payload)
        priority = int(payload.get("priority", 0)) if "spec" in payload else 0
        try:
            spec = CampaignSpec.from_dict(spec_data)
        except (ReproError, TypeError) as exc:
            raise ServiceError(f"invalid campaign spec: {exc}", status=400)
        job, cache_hit = self.service.submit(spec, priority=priority)
        self._send_json(
            202 if job.state == "queued" else 200,
            {
                "job_id": job.job_id,
                "run_id": job.run_id,
                "spec_hash": job.spec_hash,
                "state": job.state,
                "cache_hit": cache_hit,
            },
        )

    def _job_route(self, method: str, job_id: str, sub: Optional[str]) -> None:
        service = self.service
        if method == "DELETE" and sub is None:
            job = service.cancel(job_id)
            self._send_json(200, {"job_id": job.job_id, "state": job.state})
            return
        if method != "GET":
            raise ServiceError(
                f"unsupported method {method} for job {job_id}", status=404
            )
        if sub is None:
            self._send_json(200, service.job_status(job_id))
        elif sub == "result":
            self._send_json(200, service.job_result(job_id))
        elif sub == "report":
            self._send_text(200, service.job_report(job_id))
        else:
            raise ServiceError(f"unknown subresource {sub!r}", status=404)

    # ------------------------------------------------------------------
    # verb entry points
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceServer:
    """Service + HTTP listener with start/stop, for the CLI and tests."""

    def __init__(
        self,
        service: EvaluationService,
        host: str = "127.0.0.1",
        port: int = 8321,
    ):
        self.service = service
        self.httpd = ServiceHTTPServer((host, port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, cancel_running: bool = False) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.stop(wait=True, cancel_running=cancel_running)
