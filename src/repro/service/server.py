"""Threaded HTTP front-end for the evaluation service (stdlib only).

A thin transport over :class:`~repro.service.router.ApiRouter` on
:class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies.  All routing, validation, and error shaping lives in the
router (shared with the asyncio front-end,
:mod:`repro.service.async_server`); this module only parses requests,
serializes responses, and drives SSE streams: an ``text/event-stream``
subscription pins one handler thread that blocks on the service event
bus and relays frames until the job ends or the client disconnects.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.logging import get_logger
from repro.service.router import (
    ApiRequest,
    ApiResponse,
    ApiRouter,
    EventStreamResponse,
    KEEPALIVE_FRAME,
    format_sse,
    is_end_event,
)
from repro.service.service import EvaluationService

API_PREFIX = "/v1"  # re-exported for backwards compatibility


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + router for handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: EvaluationService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.router = ApiRouter(service)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> EvaluationService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def router(self) -> ApiRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        get_logger("service.http").debug(format, *args)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _send_response(self, response: ApiResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        request = ApiRequest.from_target(method, self.path, self._read_body())
        outcome = self.router.handle(request)
        if isinstance(outcome, EventStreamResponse):
            self._stream_events(outcome)
        else:
            self._send_response(outcome)

    def _stream_events(self, stream: EventStreamResponse) -> None:
        """Relay bus events as SSE frames until end or disconnect.

        This pins the handler thread for the stream's lifetime — fine
        for the threaded front-end's scale; the asyncio front-end parks
        a task instead.
        """
        self.send_response(200)
        self.send_header("Content-Type", stream.content_type)
        self.send_header("Cache-Control", "no-cache")
        # Stream until close: no Content-Length, so the connection ends
        # the response.
        self.send_header("Connection", "close")
        self.end_headers()
        bus = self.service.events
        after = stream.after
        try:
            while True:
                events = bus.wait(
                    stream.topic, after, timeout_s=stream.keepalive_s
                )
                if not events:
                    self.wfile.write(KEEPALIVE_FRAME)
                    self.wfile.flush()
                    continue
                for seq, event in events:
                    self.wfile.write(format_sse(seq, event))
                    after = seq + 1
                    if is_end_event(event):
                        self.wfile.flush()
                        return
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    # ------------------------------------------------------------------
    # verb entry points
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceServer:
    """Service + HTTP listener with start/stop, for the CLI and tests."""

    def __init__(
        self,
        service: EvaluationService,
        host: str = "127.0.0.1",
        port: int = 8321,
    ):
        self.service = service
        self.httpd = ServiceHTTPServer((host, port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, cancel_running: bool = False) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.stop(wait=True, cancel_running=cancel_running)
