"""Asyncio HTTP front-end for the evaluation service (stdlib only).

Same API surface as the threaded :mod:`repro.service.server` — both
delegate every route to the shared
:class:`~repro.service.router.ApiRouter` — but connections are served by
one ``asyncio.start_server`` loop instead of one thread each.  The
payoff is progress streaming at scale: an SSE watcher on
``GET /v1/campaigns/<id>/events`` parks an asyncio *task* in
:meth:`~repro.fleet.events.EventBus.wait_async` (woken from publisher
threads via ``call_soon_threadsafe``), so hundreds of live dashboards
cost no threads.  Ordinary routes still execute service code that takes
locks and does fsyncs, so they run in the default executor rather than
on the loop.

The event loop runs on a dedicated daemon thread, giving this server
the same synchronous ``start()`` / ``stop()`` / ``url`` contract as
:class:`~repro.service.server.ServiceServer` — the CLI and tests switch
front-ends with one flag.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.errors import ServiceError
from repro.obs.logging import get_logger
from repro.service.router import (
    ApiRequest,
    ApiResponse,
    ApiRouter,
    EventStreamResponse,
    KEEPALIVE_FRAME,
    format_sse,
    is_end_event,
)
from repro.service.service import EvaluationService

logger = get_logger("service.async_http")

#: Hard caps keeping one misbehaving client from exhausting the loop.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    410: "Gone",
    500: "Internal Server Error",
}


def _status_line(status: int) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n".encode("ascii")


class AsyncServiceServer:
    """Service + asyncio HTTP listener with the sync start/stop contract."""

    def __init__(
        self,
        service: EvaluationService,
        host: str = "127.0.0.1",
        port: int = 8321,
    ):
        self.service = service
        self.router = ApiRouter(service)
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ServiceError("async server is not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self.service.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-async", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise ServiceError(
                f"async server failed to start: {self._startup_error}"
            )
        if self._address is None:
            raise ServiceError("async server did not come up in time")

    def stop(self, cancel_running: bool = False) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), loop
            ).result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.stop(wait=True, cancel_running=cancel_running)

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._serve, self.host, self.port)
            )
            sock = self._server.sockets[0]
            self._address = sock.getsockname()[:2]
        except BaseException as exc:  # noqa: BLE001 - report to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServiceError as exc:
                    # Oversized header/body: answer with a real HTTP
                    # error instead of a bare connection reset.  The
                    # request framing is unrecoverable (the offending
                    # bytes were never drained), so close afterwards.
                    await self._write_response(
                        writer,
                        ApiResponse.json(
                            exc.status or 400, {"error": str(exc)}
                        ),
                    )
                    return
                if request is None:
                    return
                outcome = await asyncio.get_event_loop().run_in_executor(
                    None, self.router.handle, request
                )
                if isinstance(outcome, EventStreamResponse):
                    await self._stream_events(writer, outcome)
                    return  # streams own the connection until close
                await self._write_response(writer, outcome)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        except Exception as exc:  # noqa: BLE001 - connection must not kill loop
            logger.debug("connection error: %s", exc)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[ApiRequest]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None  # client closed between requests
        except asyncio.LimitOverrunError:
            raise ServiceError("request header too large", status=400)
        if len(header_blob) > MAX_HEADER_BYTES:
            raise ServiceError("request header too large", status=400)
        lines = header_blob.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None  # not HTTP; drop the connection
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=400)
        body = await reader.readexactly(length) if length else b""
        return ApiRequest.from_target(method, target, body)

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: ApiResponse
    ) -> None:
        writer.write(_status_line(response.status))
        writer.write(
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            "\r\n".encode("latin-1")
        )
        writer.write(response.body)
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, stream: EventStreamResponse
    ) -> None:
        """SSE relay as an asyncio task — no thread pinned per watcher."""
        writer.write(_status_line(200))
        writer.write(
            f"Content-Type: {stream.content_type}\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n".encode("latin-1")
        )
        await writer.drain()
        bus = self.service.events
        after = stream.after
        while True:
            events = await bus.wait_async(
                stream.topic, after, timeout_s=stream.keepalive_s
            )
            if not events:
                writer.write(KEEPALIVE_FRAME)
                await writer.drain()
                continue
            for seq, event in events:
                writer.write(format_sse(seq, event))
                after = seq + 1
                if is_end_event(event):
                    await writer.drain()
                    return
            await writer.drain()
