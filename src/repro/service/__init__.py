"""SSF evaluation service (``repro.service``).

A long-lived layer over :mod:`repro.campaign` that makes the framework
multi-tenant: clients submit :class:`~repro.campaign.spec.CampaignSpec`
documents, the service deduplicates identical work by canonical spec
hash, queues and executes campaigns under bounded concurrency, caches
finished results content-addressed by that hash, and serves estimates,
live status, and observability reports over HTTP.

* :mod:`repro.service.jobs` — durable JSONL job log + priority queue
  (crash-safe like the campaign ``RunStore``);
* :mod:`repro.service.cache` — spec-hash result cache over run
  directories, with partial-run reuse via ``campaign resume``;
* :mod:`repro.service.service` — :class:`EvaluationService`: submit /
  dedup / worker pool / cancel / metrics;
* :mod:`repro.service.router` — transport-agnostic route table shared
  by both HTTP front-ends (campaign API + fleet protocol + SSE);
* :mod:`repro.service.server` — threaded stdlib HTTP API
  (``POST /v1/campaigns`` and friends);
* :mod:`repro.service.async_server` — asyncio front-end with cheap
  SSE progress streaming (one task per watcher, not one thread);
* :mod:`repro.service.client` — thin client used by the CLI verbs
  ``repro submit|status|result|cancel`` and by fleet workers.
"""

from repro.campaign.spec_hash import (
    canonical_spec_dict,
    canonical_spec_json,
    code_version_salt,
    spec_hash,
)
from repro.service.cache import CacheHit, ResultCache, result_payload
from repro.service.client import ServiceClient
from repro.service.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    Job,
    JobQueue,
    JobStore,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
)
from repro.service.async_server import AsyncServiceServer
from repro.service.router import ApiRequest, ApiResponse, ApiRouter
from repro.service.server import ServiceHTTPServer, ServiceServer
from repro.service.service import (
    DISPATCH_FLEET,
    DISPATCH_LOCAL,
    EvaluationService,
    JobCancelled,
)

__all__ = [
    "ACTIVE_STATES",
    "ApiRequest",
    "ApiResponse",
    "ApiRouter",
    "AsyncServiceServer",
    "CacheHit",
    "DISPATCH_FLEET",
    "DISPATCH_LOCAL",
    "EvaluationService",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobQueue",
    "JobStore",
    "ResultCache",
    "STATE_CANCELLED",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServiceClient",
    "ServiceHTTPServer",
    "ServiceServer",
    "TERMINAL_STATES",
    "canonical_spec_dict",
    "canonical_spec_json",
    "code_version_salt",
    "result_payload",
    "spec_hash",
]
