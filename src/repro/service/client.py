"""Thin HTTP client for the evaluation service (stdlib ``urllib``).

Used by the ``repro submit|status|result|cancel`` CLI verbs, by fleet
workers (``lease`` / ``heartbeat`` / ``post_chunk``), and by tests; any
HTTP or transport failure surfaces as
:class:`~repro.errors.ServiceError` carrying the status code, so
callers never touch ``urllib`` exceptions directly.

Transport failures (connection refused, timeouts — *not* HTTP error
statuses) on **GET** requests are retried with exponential backoff:
GETs here are idempotent, and a service restarting under a poll loop
shouldn't fail its clients.  Non-idempotent verbs never retry at this
layer — submitting twice could enqueue twice — callers that can retry
safely (the fleet worker's lease loop) do it themselves.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Union

from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.service.jobs import TERMINAL_STATES


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    ``retries`` / ``retry_backoff_s`` shape the idempotent-GET retry
    policy: attempt ``retries`` extra times after a transport failure,
    sleeping ``retry_backoff_s * 2**attempt`` between tries.  Defaults
    keep the worst case under a second so "service is down" still fails
    fast.

    ``sleep`` injects the backoff clock: tests pass a stub and assert
    the exact sleep sequence without paying wall-clock time (the default
    resolves ``time.sleep`` at call time, so monkeypatching the module
    attribute keeps working too).
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        retries: int = 2,
        retry_backoff_s: float = 0.1,
        sleep=None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.retry_backoff_s = retry_backoff_s
        self.sleep = sleep

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        as_text: bool = False,
    ):
        attempts = 1 + (self.retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, body, as_text)
            except ServiceError as exc:
                # status == 0 marks a transport failure; HTTP errors
                # (4xx/5xx) are real answers and never retried.
                if exc.status != 0 or attempt == attempts - 1:
                    raise
                (self.sleep or time.sleep)(
                    self.retry_backoff_s * (2 ** attempt)
                )

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        as_text: bool = False,
    ):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}",
                status=exc.code,
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from exc
        text = raw.decode("utf-8")
        return text if as_text else json.loads(text)

    # ------------------------------------------------------------------
    # API verbs
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Union[CampaignSpec, dict],
        priority: int = 0,
    ) -> dict:
        spec_data = spec.to_dict() if isinstance(spec, CampaignSpec) else spec
        return self._request(
            "POST",
            "/v1/campaigns",
            body={"spec": spec_data, "priority": priority},
        )

    def submit_many(
        self,
        specs,
        priority: int = 0,
    ) -> list:
        """Submit N specs in one ``POST /v1/campaigns/batch``.

        Sweep fan-out calls this instead of N :meth:`submit` round
        trips: one connection, one request, per-spec job documents back
        in input order.  Like :meth:`submit`, the POST is never retried
        at this layer — although batch submission *is* idempotent under
        the service's spec-hash dedup, the transport cannot know that.
        """
        payload = [
            spec.to_dict() if isinstance(spec, CampaignSpec) else spec
            for spec in specs
        ]
        response = self._request(
            "POST",
            "/v1/campaigns/batch",
            body={"specs": payload, "priority": priority},
        )
        return response["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{job_id}/result")

    def report(self, job_id: str) -> str:
        return self._request(
            "GET", f"/v1/campaigns/{job_id}/report", as_text=True
        )

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/campaigns/{job_id}")

    def list_jobs(self) -> dict:
        return self._request("GET", "/v1/campaigns")

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/v1/metrics", as_text=True)

    # ------------------------------------------------------------------
    # fleet protocol
    # ------------------------------------------------------------------
    def lease(self, worker: str) -> dict:
        """Ask the coordinator for a chunk lease (or an idle notice)."""
        return self._request("POST", "/v1/lease", body={"worker": worker})

    def heartbeat(self, lease_id: str) -> dict:
        return self._request(
            "POST", "/v1/heartbeat", body={"lease_id": lease_id}
        )

    def post_chunk(self, payload: dict) -> dict:
        """Stream one completed chunk result back to the coordinator."""
        return self._request("POST", "/v1/chunks", body=payload)

    def post_telemetry(self, payload: dict) -> dict:
        """Ship an out-of-band telemetry bundle (no result attached)."""
        return self._request("POST", "/v1/telemetry", body=payload)

    def fleet_status(self) -> dict:
        return self._request("GET", "/v1/fleet")

    def events(
        self, job_id: str, after: int = 0, timeout_s: float = 10.0
    ) -> dict:
        """One long-poll turn of the job's progress event stream."""
        return self._request(
            "GET",
            f"/v1/campaigns/{job_id}/events"
            f"?poll=1&after={int(after)}&timeout={timeout_s:g}",
        )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its
        final status document."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout_s:.0f}s"
                )
            time.sleep(poll_s)
