"""The evaluation service: submit → dedup/cache → queue → run → serve.

:class:`EvaluationService` is the long-lived core behind the HTTP API
(and usable directly, embedded).  One instance owns

* a durable :class:`~repro.service.jobs.JobStore` (crash-safe job
  table),
* a :class:`~repro.service.cache.ResultCache` over the campaign runs
  directory (finished identical specs are served instantly, interrupted
  ones are resumed),
* a bounded pool of worker threads driving
  :class:`~repro.campaign.runner.CampaignRunner` — each job is one
  durable campaign run, so every crash-safety property of the campaign
  layer (fsynced chunk log, bit-identical resume) carries over to the
  service,
* a :class:`~repro.obs.metrics.MetricsRegistry` exposing queue depth,
  jobs by state, and the cache hit ratio (``GET /v1/metrics``).

Submission semantics, in lookup order for an incoming spec hash:

1. an *active* (queued/running) job with the same hash → coalesce onto
   it (no new work, ``cache_hit`` false);
2. a *done* job, or any finished run directory, with the same hash →
   answer from the cache (``cache_hit`` true, zero new samples);
3. an *interrupted* run directory with the same hash → new job that
   resumes it, reusing every logged sample;
4. otherwise → new job, fresh run directory named after the job id.

Failed and cancelled jobs never satisfy dedup, so resubmitting after a
failure retries cleanly.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
from typing import Callable, Dict, Optional, Tuple, Union

from repro.campaign.hooks import CampaignHooks, HookChain
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.spec_hash import spec_hash
from repro.campaign.store import RunStore, SPEC_FILE
from repro.errors import JobCancelled, ReproError, ServiceError
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.events import EVENT_END, EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_report
from repro.obs.service_metrics import (
    record_cache_request,
    record_submission,
    update_job_gauges,
)
from repro.service.artifacts import (
    ArtifactStore,
    calibration_path,
    ensure_precharac,
)
from repro.service.cache import ResultCache, result_payload
from repro.service.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    Job,
    JobQueue,
    JobStore,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    new_job_id,
)

#: ``engine_factory(spec) -> (engine, sampler)``; tests inject stubs here.
EngineFactory = Callable[[CampaignSpec], Tuple[object, object]]

#: How jobs are executed: in-process fork pool vs. distributed fleet.
DISPATCH_LOCAL = "local"
DISPATCH_FLEET = "fleet"


class _JobEventHook(CampaignHooks):
    """Streams campaign progress onto the service event bus.

    Every consumed chunk publishes a ``progress`` event on the job's
    topic; SSE / long-poll subscribers on
    ``GET /v1/campaigns/<id>/events`` see them live.
    """

    def __init__(self, bus: EventBus, job_id: str):
        self.bus = bus
        self.job_id = job_id

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        self.bus.publish(
            self.job_id,
            {
                "type": "progress",
                "job_id": self.job_id,
                "chunk": chunk_index,
                "n_samples": estimator.n_samples,
                "ssf": estimator.ssf,
            },
        )

    def on_checkpoint(self, snapshot: dict) -> None:
        event = {"type": "checkpoint", "job_id": self.job_id}
        event.update(snapshot)
        self.bus.publish(self.job_id, event)


class _CancelHook(CampaignHooks):
    """Aborts the campaign between chunk merges once cancel is requested.

    Raising from ``on_batch`` rides the runner's interrupt path: the
    run checkpoints as ``interrupted`` (still resumable) before the
    exception reaches the worker.
    """

    def __init__(self, job: Job):
        self.job = job

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        if self.job.cancel_requested:
            raise JobCancelled(f"job {self.job.job_id} cancelled")


class EvaluationService:
    """Queued, cached, multi-tenant SSF evaluation over campaign runs."""

    def __init__(
        self,
        runs_dir: Union[str, pathlib.Path],
        state_dir: Optional[Union[str, pathlib.Path]] = None,
        max_concurrency: int = 1,
        campaign_workers: int = 1,
        checkpoint_every: int = 5,
        engine_factory: Optional[EngineFactory] = None,
        metrics: Optional[MetricsRegistry] = None,
        dispatch: str = DISPATCH_LOCAL,
        lease_ttl_s: float = 10.0,
    ):
        if dispatch not in (DISPATCH_LOCAL, DISPATCH_FLEET):
            raise ServiceError(f"unknown dispatch mode {dispatch!r}")
        self.runs_dir = pathlib.Path(runs_dir)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(
            state_dir if state_dir is not None else self.runs_dir / "service"
        )
        self.cache = ResultCache(self.runs_dir)
        self.artifacts = ArtifactStore(self.runs_dir / "artifacts")
        self.max_concurrency = max(1, max_concurrency)
        self.campaign_workers = max(1, campaign_workers)
        self.checkpoint_every = checkpoint_every
        self.engine_factory = engine_factory
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dispatch = dispatch
        self.events = EventBus()
        self.fleet: Optional[FleetCoordinator] = (
            FleetCoordinator(
                metrics=self.metrics,
                lease_ttl_s=lease_ttl_s,
                events=self.events,
            )
            if dispatch == DISPATCH_FLEET
            else None
        )
        self.queue = JobQueue()
        self._lock = threading.RLock()
        self._threads: list = []
        self._stopping = threading.Event()

        self.jobs: Dict[str, Job] = self.store.load()
        self._seq = max((j.seq for j in self.jobs.values()), default=-1) + 1
        self._recover()
        self._refresh_gauges()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Re-queue work interrupted by a crash.

        Jobs logged ``running`` at replay died with the previous
        process.  Their run directories are durable, so they go back on
        the queue and the worker resumes them from the chunk log.
        """
        pending = sorted(
            (j for j in self.jobs.values() if j.state in ACTIVE_STATES),
            key=lambda j: (-j.priority, j.seq),
        )
        for job in pending:
            if job.state == STATE_RUNNING:
                self._update(job, state=STATE_QUEUED)
            self.queue.push(job)

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._threads:
                return
            if self.fleet is not None:
                self.fleet.start()
            for i in range(self.max_concurrency):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def stop(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop the worker pool.

        ``cancel_running`` asks in-flight campaigns to abort at their
        next chunk merge (they checkpoint as interrupted and stay
        resumable); otherwise running jobs finish their campaign.
        """
        self._stopping.set()
        if cancel_running:
            with self._lock:
                for job in self.jobs.values():
                    if job.state == STATE_RUNNING:
                        job.cancel_requested = True
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join()
        if self.fleet is not None:
            self.fleet.stop()
        self._threads = []

    # ------------------------------------------------------------------
    # submission / dedup / cache
    # ------------------------------------------------------------------
    def submit(self, spec: CampaignSpec, priority: int = 0) -> Tuple[Job, bool]:
        """Register a spec; returns ``(job, cache_hit)``.

        Never blocks on evaluation: a cache hit returns a synthetic
        ``done`` job bound to the finished run, anything else returns a
        queued (or already-active) job to poll.
        """
        digest = spec_hash(spec)
        with self._lock:
            record_submission(self.metrics)
            active = self._find_job(digest, ACTIVE_STATES)
            if active is not None:
                record_cache_request(self.metrics, hit=False)
                self._refresh_gauges()
                return active, False

            done = self._find_job(digest, (STATE_DONE,))
            if done is not None and self.cache.run_hash(done.run_id) == digest:
                record_cache_request(self.metrics, hit=True)
                self._refresh_gauges()
                return done, True

            hit = self.cache.lookup_complete(digest)
            if hit is not None:
                job = Job(
                    job_id=new_job_id(),
                    spec=spec.to_dict(),
                    spec_hash=digest,
                    run_id=hit.run_id,
                    priority=priority,
                    seq=self._next_seq(),
                    state=STATE_DONE,
                    result=result_payload(
                        RunStore(self.runs_dir / hit.run_id)
                    ),
                    cache_hit=True,
                )
                self.store.record_submit(job)
                self.jobs[job.job_id] = job
                record_cache_request(self.metrics, hit=True)
                self._refresh_gauges()
                return job, True

            record_cache_request(self.metrics, hit=False)
            job_id = new_job_id()
            # Partial-run reuse: an interrupted run with this hash is
            # adopted and resumed instead of starting from sample zero.
            job = Job(
                job_id=job_id,
                spec=spec.to_dict(),
                spec_hash=digest,
                run_id=self.cache.lookup_partial(digest) or job_id,
                priority=priority,
                seq=self._next_seq(),
            )
            self.store.record_submit(job)
            self.jobs[job.job_id] = job
            self.queue.push(job)
            self._refresh_gauges()
            self.events.publish(
                job.job_id,
                {
                    "type": "state",
                    "job_id": job.job_id,
                    "state": job.state,
                    "error": None,
                },
            )
            return job, False

    def submit_many(
        self, specs, priority: int = 0
    ) -> list:
        """Submit a batch of specs; returns ``[(job, cache_hit), ...]``
        in input order.

        Each spec goes through the exact single-submit dedup path, so
        duplicate specs inside one batch coalesce onto one job just as
        they would across batches.  The batch holds the service lock
        once, keeping fan-out atomic with respect to concurrent
        submitters.
        """
        with self._lock:
            return [self.submit(spec, priority=priority) for spec in specs]

    def _find_job(self, digest: str, states) -> Optional[Job]:
        candidates = [
            j
            for j in self.jobs.values()
            if j.spec_hash == digest and j.state in states
        ]
        return min(candidates, key=lambda j: j.seq) if candidates else None

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # ------------------------------------------------------------------
    # job access
    # ------------------------------------------------------------------
    def get_job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def job_status(self, job_id: str) -> dict:
        """Job record plus live progress read from the run's durable
        checkpoint and exported :mod:`repro.obs` metrics."""
        job = self.get_job(job_id)
        payload = job.to_dict()
        payload["queue_depth"] = self.queue.depth()
        run_path = self.runs_dir / job.run_id
        if (run_path / SPEC_FILE).exists():
            store = RunStore(run_path)
            checkpoint = store.read_checkpoint()
            payload["run_status"] = checkpoint.get("status")
            payload["n_samples"] = checkpoint.get("n_samples", 0)
            payload["ssf"] = checkpoint.get("ssf")
            for metric in store.read_metrics():
                if metric["name"] == "campaign_n_samples":
                    payload["n_samples_live"] = metric["value"]
        return payload

    def job_result(self, job_id: str) -> dict:
        job = self.get_job(job_id)
        if job.state == STATE_FAILED:
            raise ServiceError(
                f"job {job_id} failed: {job.error}", status=409
            )
        if job.state != STATE_DONE:
            raise ServiceError(
                f"job {job_id} is {job.state}, result not ready", status=409
            )
        payload = result_payload(RunStore(self.runs_dir / job.run_id))
        payload["job_id"] = job.job_id
        payload["spec_hash"] = job.spec_hash
        payload["cache_hit"] = job.cache_hit
        return payload

    def job_report(self, job_id: str) -> str:
        """Rendered observability report for the job's run."""
        job = self.get_job(job_id)
        store = RunStore(self.runs_dir / job.run_id)
        snapshot = store.read_metrics()
        if not snapshot:
            raise ServiceError(
                f"job {job_id} has no exported metrics yet", status=409
            )
        return render_report(
            snapshot, title=f"Run report: {store.run_id} (job {job_id})"
        )

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job immediately, a running one at its next
        chunk merge; terminal jobs are left untouched."""
        with self._lock:
            job = self.get_job(job_id)
            if job.state == STATE_QUEUED:
                self._update(job, state=STATE_CANCELLED)
            elif job.state == STATE_RUNNING:
                job.cancel_requested = True
                self.store.record_update(job.job_id, cancel_requested=True)
            self._refresh_gauges()
            return job

    def list_jobs(self) -> list:
        with self._lock:
            return [
                job.to_dict()
                for job in sorted(self.jobs.values(), key=lambda j: j.seq)
            ]

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        # Blocking pop: workers park on the queue's Condition while idle
        # (zero CPU) instead of waking twice a second to poll.  ``None``
        # only comes back once the queue is closed and drained.
        while True:
            job = self.queue.pop()
            if job is None:
                return
            self._execute(job)

    def _with_cached_artifacts(self, spec: CampaignSpec) -> CampaignSpec:
        """Route derived precomputation through the artifact cache.

        Only applies when this process builds the real runtime (no
        injected engine factory, no fleet dispatch).  Every rewritten
        field is non-semantic, so the spec hash — and with it result
        caching, dedup, and resume identity — is unchanged.
        """
        if spec.charac_cache is None:
            path, _ = ensure_precharac(
                self.artifacts, spec.benchmark, spec.variant
            )
            spec = dataclasses.replace(spec, charac_cache=str(path))
        if spec.engine == "surrogate" and spec.calibration is None:
            target = calibration_path(self.artifacts, spec)
            spec = dataclasses.replace(spec, calibration=str(target))
        if spec.baseline_store is None:
            # Cycle baselines persist in the same content-addressed store,
            # so a restarted service warm-starts repeat campaigns on the
            # same (design, workload) without re-simulating golden cycles.
            spec = dataclasses.replace(
                spec, baseline_store=str(self.artifacts.root)
            )
        return spec

    def _execute(self, job: Job) -> None:
        self._update(job, state=STATE_RUNNING)
        try:
            spec = CampaignSpec.from_dict(job.spec)
            if self.fleet is None and self.engine_factory is None:
                spec = self._with_cached_artifacts(spec)
            run_path = self.runs_dir / job.run_id
            resume = (run_path / SPEC_FILE).exists()
            if resume:
                store = RunStore(run_path)
            elif run_path.exists():
                # Torn create from a crash (directory without a spec):
                # no chunk can have been logged yet, so materialize the
                # spec and run fresh.
                (run_path / SPEC_FILE).write_text(spec.to_json())
                store = RunStore(run_path)
            else:
                store = RunStore.create(self.runs_dir, spec, run_id=job.run_id)
            engine = sampler = scheduler = None
            if self.fleet is not None:
                # Fleet dispatch: chunks are evaluated by remote workers,
                # so the coordinator never builds the (expensive) real
                # runtime — the runner only consumes posted results.
                engine, sampler = FleetCoordinator.placeholder_runtime(spec)
                scheduler = self.fleet.scheduler_for(job, store, spec)
            elif self.engine_factory is not None:
                engine, sampler = self.engine_factory(spec)
            runner = CampaignRunner(
                spec,
                store=store,
                hooks=HookChain(
                    _CancelHook(job),
                    _JobEventHook(self.events, job.job_id),
                ),
                engine=engine,
                sampler=sampler,
                n_workers=self.campaign_workers,
                checkpoint_every=self.checkpoint_every,
                scheduler=scheduler,
            )
            runner.run(resume=resume)
            self._update(
                job, state=STATE_DONE, result=result_payload(store)
            )
        except JobCancelled:
            self._update(job, state=STATE_CANCELLED)
        except ReproError as exc:
            self._update(job, state=STATE_FAILED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - worker must not die
            self._update(
                job,
                state=STATE_FAILED,
                error=f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------------
    # state transitions + metrics
    # ------------------------------------------------------------------
    def _update(self, job: Job, **fields) -> None:
        """Durably record a transition, then apply it in memory."""
        with self._lock:
            self.store.record_update(job.job_id, **fields)
            for key, value in fields.items():
                setattr(job, key, value)
            self._refresh_gauges()
        if "state" in fields:
            self.events.publish(
                job.job_id,
                {
                    "type": "state",
                    "job_id": job.job_id,
                    "state": job.state,
                    "error": job.error,
                },
            )
            if job.terminal:
                # Sentinel so event streams know the topic is finished.
                self.events.publish(
                    job.job_id,
                    {
                        "type": EVENT_END,
                        "job_id": job.job_id,
                        "state": job.state,
                    },
                )

    def _refresh_gauges(self) -> None:
        update_job_gauges(
            self.metrics, self.state_counts(), self.queue.depth()
        )

    def metrics_text(self) -> str:
        """Prometheus exposition of the service registry."""
        with self._lock:
            self._refresh_gauges()
            return self.metrics.to_prometheus()

    # ------------------------------------------------------------------
    # fleet facade
    # ------------------------------------------------------------------
    def fleet_status(self) -> dict:
        """Fleet snapshot for ``GET /v1/fleet``; meaningful in any
        dispatch mode (a local service just reports no workers)."""
        payload = {"dispatch": self.dispatch}
        if self.fleet is not None:
            payload.update(self.fleet.status())
        else:
            payload.update({"workers": [], "runs": []})
        return payload

    def _require_fleet(self) -> FleetCoordinator:
        if self.fleet is None:
            raise ServiceError(
                "service is not running in fleet dispatch mode "
                "(start it with --fleet)",
                status=409,
            )
        return self.fleet

    def fleet_lease(self, worker: str) -> dict:
        return self._require_fleet().lease(worker)

    def fleet_heartbeat(self, lease_id: str) -> dict:
        return self._require_fleet().heartbeat(lease_id)

    def fleet_submit_chunk(self, payload: dict) -> dict:
        return self._require_fleet().submit_chunk(payload)

    def fleet_telemetry(self, payload: dict) -> dict:
        return self._require_fleet().post_telemetry(payload)
