"""Durable job records for the evaluation service.

The service's unit of work is a *job*: one submitted
:class:`~repro.campaign.spec.CampaignSpec`, content-addressed by its
spec hash and bound to one campaign run directory.  Job state lives in
an append-only, fsynced JSONL event log (``jobs.jsonl``) with the same
crash contract as the campaign :class:`~repro.campaign.store.RunStore`:
every transition is durable before it takes effect, a crash can at worst
tear the final line (which replay discards), and a restart rebuilds the
exact job table by folding the log.

Jobs found ``running`` during replay were interrupted by a crash; the
service re-queues them, and because the campaign run directory is itself
durable, execution continues via ``campaign resume`` rather than
restarting from sample zero.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import pathlib
import threading
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ServiceError

JOBS_FILE = "jobs.jsonl"

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: Every state a job can be in (gauge keys; order is display order).
JOB_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_FAILED,
    STATE_CANCELLED,
)

#: States in which a job still owns (or will own) compute.
ACTIVE_STATES = (STATE_QUEUED, STATE_RUNNING)

#: States a job never leaves.
TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submitted campaign, bound to a run directory by ``run_id``."""

    job_id: str
    spec: dict                      # CampaignSpec.to_dict()
    spec_hash: str
    run_id: str
    priority: int = 0               # higher runs first
    seq: int = 0                    # submission order (FIFO within priority)
    state: str = STATE_QUEUED
    error: Optional[str] = None
    result: Optional[dict] = None   # summary payload once done
    cache_hit: bool = False         # satisfied from the result cache
    cancel_requested: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobStore:
    """Append-only JSONL event log holding the service's job table.

    Two event kinds::

        {"event": "submit", "job": {...full job record...}}
        {"event": "update", "job_id": "...", "fields": {...}}

    Appends are fsynced before the in-memory table changes, so the log
    is always at least as new as any state the service acted on.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._log = self.path / JOBS_FILE
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # durable appends
    # ------------------------------------------------------------------
    def _append(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self._lock, open(self._log, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def record_submit(self, job: Job) -> None:
        self._append({"event": "submit", "job": job.to_dict()})

    def record_update(self, job_id: str, **fields) -> None:
        self._append({"event": "update", "job_id": job_id, "fields": fields})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Job]:
        """Fold the event log into a job table (insertion-ordered).

        A torn final line (crash mid-append) is discarded; any other
        malformed line raises, because silently skipping events would
        desynchronize the table from what the service already did.
        """
        jobs: Dict[str, Job] = {}
        if not self._log.exists():
            return jobs
        with open(self._log) as fh:
            lines = fh.read().split("\n")
        trailing_complete = bool(lines) and lines[-1] == ""
        if trailing_complete:
            lines.pop()
        for i, line in enumerate(lines):
            last = i == len(lines) - 1
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if last and not trailing_complete:
                    break  # torn final append: drop it
                raise ServiceError(
                    f"corrupt job log {self._log} at line {i + 1}"
                )
            if payload["event"] == "submit":
                job = Job.from_dict(payload["job"])
                jobs[job.job_id] = job
            elif payload["event"] == "update":
                job = jobs.get(payload["job_id"])
                if job is None:
                    raise ServiceError(
                        f"job log {self._log} updates unknown job "
                        f"{payload['job_id']!r} at line {i + 1}"
                    )
                for key, value in payload["fields"].items():
                    setattr(job, key, value)
            else:
                raise ServiceError(
                    f"job log {self._log} has unknown event "
                    f"{payload['event']!r} at line {i + 1}"
                )
        return jobs


@dataclass(order=True)
class _QueueItem:
    sort_key: tuple = field(init=False, repr=False)
    job: Job = field(compare=False)

    def __post_init__(self):
        # Highest priority first; FIFO (submission seq) within a priority.
        self.sort_key = (-self.job.priority, self.job.seq)


class JobQueue:
    """Thread-safe priority queue of queued jobs.

    Cancellation is lazy: a job cancelled while queued stays in the heap
    but is skipped at pop time (its state is no longer ``queued``), so
    cancel never races a concurrent pop.
    """

    def __init__(self):
        self._heap: List[_QueueItem] = []
        self._cond = threading.Condition()
        self._closed = False

    def push(self, job: Job) -> None:
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed")
            heapq.heappush(self._heap, _QueueItem(job=job))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next runnable job, or ``None`` on timeout / queue closed."""
        with self._cond:
            while True:
                while self._heap:
                    item = heapq.heappop(self._heap)
                    if item.job.state == STATE_QUEUED:
                        return item.job
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def close(self) -> None:
        """Wake every waiting worker; subsequent pops drain then stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        with self._cond:
            return sum(
                1 for item in self._heap if item.job.state == STATE_QUEUED
            )
