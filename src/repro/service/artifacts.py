"""Content-addressed cache for derived precomputation artifacts.

Campaigns pay a startup cost for work that is a pure function of the
*(design, workload)* pair, independent of the campaign's sampling
parameters: the pre-characterization (switching signatures, lifetimes,
cones) and the surrogate calibration model.  The spec hash deliberately
excludes the artifact *paths* (``charac_cache`` / ``calibration``), so
two campaigns differing only in seed or stopping rule are distinct
cache entries for the result cache but share this precomputation.

:class:`ArtifactStore` addresses artifacts by a SHA-256 over the
artifact kind plus its canonical key fields, salted with
:func:`~repro.campaign.spec_hash.code_version_salt` — a code upgrade
that could change the derived data invalidates the store wholesale, the
same policy the result cache applies.  Writes are atomic
(temp + rename), so a crashed builder never leaves a truncated artifact
to poison later runs.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Callable, Tuple, Union

#: Pre-characterization JSON (``repro.precharac.persistence``).
KIND_PRECHARAC = "precharac"
#: Surrogate calibration JSON (``repro.surrogate.persistence``).
KIND_CALIBRATION = "calibration"

#: ``builder(path)`` materializes the artifact at ``path``.
ArtifactBuilder = Callable[[pathlib.Path], None]


class ArtifactStore:
    """Content-addressed artifact directory (``<root>/<kind>/<key>.json``)."""

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)

    def key(self, kind: str, **fields) -> str:
        """Hex digest addressing one artifact."""
        from repro.campaign.spec_hash import code_version_salt

        payload = "\n".join(
            (
                code_version_salt(),
                kind,
                json.dumps(fields, sort_keys=True, separators=(",", ":")),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, **fields) -> pathlib.Path:
        return self.root / kind / f"{self.key(kind, **fields)}.json"

    def ensure(
        self, kind: str, builder: ArtifactBuilder, **fields
    ) -> Tuple[pathlib.Path, bool]:
        """Return ``(path, cache_hit)``, building the artifact on a miss.

        The builder writes to a temp path that is atomically renamed
        into place, so concurrent builders race benignly (last rename
        wins with identical content) and crashes leave no partial file.
        """
        path = self.path_for(kind, **fields)
        if path.exists():
            return path, True
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        builder(tmp)
        tmp.replace(path)
        return path, False


def ensure_precharac(
    store: ArtifactStore,
    benchmark: str,
    variant: str,
    builder: ArtifactBuilder = None,
) -> Tuple[pathlib.Path, bool]:
    """Cached pre-characterization for ``(benchmark, variant)``.

    The default builder runs the full characterization campaign once
    and persists it; tests inject a counting stub via ``builder``.
    """
    from repro.soc.mpu import MpuVariant

    name = MpuVariant.parse(variant).name
    if builder is None:

        def builder(path: pathlib.Path) -> None:
            from repro.core.context import build_context
            from repro.precharac.persistence import save_characterization
            from repro.soc.programs import (
                dma_exfiltration_benchmark,
                illegal_read_benchmark,
                illegal_write_benchmark,
            )

            benchmarks = {
                "write": illegal_write_benchmark,
                "read": illegal_read_benchmark,
                "dma": dma_exfiltration_benchmark,
            }
            context = build_context(
                benchmarks[benchmark](), mpu_variant=MpuVariant.parse(variant)
            )
            save_characterization(context.characterization, path)

    return store.ensure(
        KIND_PRECHARAC, builder, benchmark=benchmark, variant=name
    )


def calibration_path(store: ArtifactStore, spec) -> pathlib.Path:
    """Deterministic calibration-artifact path for a surrogate spec.

    Key fields are exactly those the in-process fit depends on: the
    attack geometry plus the campaign seed (the calibration seed tree
    roots at ``spec.seed``).  ``build_runtime`` fits-and-saves on a
    miss and loads on a hit, so repeat campaigns skip recalibration.
    """
    from repro.soc.mpu import MpuVariant

    return store.path_for(
        KIND_CALIBRATION,
        benchmark=spec.benchmark,
        variant=MpuVariant.parse(spec.variant).name,
        sampler=spec.sampler,
        window=spec.window,
        subblock_fraction=spec.subblock_fraction,
        impact_cycles=spec.impact_cycles,
        seed=spec.seed,
    )
