"""Content-addressed cache for derived precomputation artifacts.

Campaigns pay a startup cost for work that is a pure function of the
*(design, workload)* pair, independent of the campaign's sampling
parameters: the pre-characterization (switching signatures, lifetimes,
cones) and the surrogate calibration model.  The spec hash deliberately
excludes the artifact *paths* (``charac_cache`` / ``calibration``), so
two campaigns differing only in seed or stopping rule are distinct
cache entries for the result cache but share this precomputation.

:class:`ArtifactStore` addresses artifacts by a SHA-256 over the
artifact kind plus its canonical key fields, salted with
:func:`~repro.campaign.spec_hash.code_version_salt` — a code upgrade
that could change the derived data invalidates the store wholesale, the
same policy the result cache applies.  Writes are atomic
(temp + rename), so a crashed builder never leaves a truncated artifact
to poison later runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Callable, Tuple, Union

#: Pre-characterization JSON (``repro.precharac.persistence``).
KIND_PRECHARAC = "precharac"
#: Surrogate calibration JSON (``repro.surrogate.persistence``).
KIND_CALIBRATION = "calibration"
#: Per-cycle golden baseline JSON (``CycleBaselineStore``).
KIND_BASELINE = "baseline"

#: Payload schema of one persisted cycle baseline.
BASELINE_FORMAT_VERSION = 1

#: ``builder(path)`` materializes the artifact at ``path``.
ArtifactBuilder = Callable[[pathlib.Path], None]


class ArtifactStore:
    """Content-addressed artifact directory (``<root>/<kind>/<key>.json``)."""

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)

    def key(self, kind: str, **fields) -> str:
        """Hex digest addressing one artifact."""
        from repro.campaign.spec_hash import code_version_salt

        payload = "\n".join(
            (
                code_version_salt(),
                kind,
                json.dumps(fields, sort_keys=True, separators=(",", ":")),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, kind: str, **fields) -> pathlib.Path:
        return self.root / kind / f"{self.key(kind, **fields)}.json"

    def ensure(
        self, kind: str, builder: ArtifactBuilder, **fields
    ) -> Tuple[pathlib.Path, bool]:
        """Return ``(path, cache_hit)``, building the artifact on a miss.

        The builder writes to a temp path that is atomically renamed
        into place, so concurrent builders race benignly (last rename
        wins with identical content) and crashes leave no partial file.
        """
        path = self.path_for(kind, **fields)
        if path.exists():
            return path, True
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        builder(tmp)
        tmp.replace(path)
        return path, False


def ensure_precharac(
    store: ArtifactStore,
    benchmark: str,
    variant: str,
    builder: ArtifactBuilder = None,
) -> Tuple[pathlib.Path, bool]:
    """Cached pre-characterization for ``(benchmark, variant)``.

    The default builder runs the full characterization campaign once
    and persists it; tests inject a counting stub via ``builder``.
    """
    from repro.soc.mpu import MpuVariant

    name = MpuVariant.parse(variant).name
    if builder is None:

        def builder(path: pathlib.Path) -> None:
            from repro.core.context import build_context
            from repro.precharac.persistence import save_characterization
            from repro.soc.programs import (
                dma_exfiltration_benchmark,
                illegal_read_benchmark,
                illegal_write_benchmark,
            )

            benchmarks = {
                "write": illegal_write_benchmark,
                "read": illegal_read_benchmark,
                "dma": dma_exfiltration_benchmark,
            }
            context = build_context(
                benchmarks[benchmark](), mpu_variant=MpuVariant.parse(variant)
            )
            save_characterization(context.characterization, path)

    return store.ensure(
        KIND_PRECHARAC, builder, benchmark=benchmark, variant=name
    )


def netlist_fingerprint(netlist) -> dict:
    """Cheap structural identity of a netlist for artifact validation.

    Node count plus the register manifest — the same discriminator the
    surrogate persistence layer uses.  Any countermeasure / elaboration
    change shifts at least one of them, and with it every baseline key.
    """
    return {
        "n_nodes": len(netlist),
        "registers": dict(netlist.register_widths()),
    }


class CycleBaselineStore:
    """Persistent per-cycle golden baselines for one (design, workload).

    The second cache tier behind :class:`~repro.core.engine.
    CrossLevelEngine`'s in-memory LRU: each entry is the full shared
    per-cycle state — the MPU trace entry, the post-step architectural
    checkpoint, and the gate-level :class:`~repro.gatesim.transient.
    CycleBaseline` — addressed content-wise by (benchmark, variant,
    netlist fingerprint, precharacterization version, cycle) under the
    service's :class:`ArtifactStore` (which salts every key with the
    code version).  A campaign on a design whose netlist changed in any
    way therefore *misses* — never loads stale golden state — and the
    payload additionally embeds the fingerprint so a tampered or
    hand-moved artifact is rejected on load rather than trusted.

    Everything persisted is integers (register words, int8 node values),
    so a JSON round-trip is exact and a loaded baseline is bit-identical
    to a recomputed one.
    """

    def __init__(
        self,
        store: ArtifactStore,
        benchmark: str,
        variant: str,
        fingerprint: dict,
        precharac_version: int,
    ):
        self.store = store
        self.benchmark = benchmark
        self.variant = variant
        self.fingerprint = fingerprint
        self.precharac_version = precharac_version
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.writes = 0

    def _path(self, cycle: int) -> pathlib.Path:
        return self.store.path_for(
            KIND_BASELINE,
            benchmark=self.benchmark,
            variant=self.variant,
            fingerprint=self.fingerprint,
            precharac_version=self.precharac_version,
            cycle=cycle,
        )

    def load(self, cycle: int, probe: bool = False):
        """Return ``(entry, post_step, baseline)`` or None.

        ``probe=True`` (the LRU warm-up path) does not count an absent
        artifact as a miss — no demand existed yet.  An artifact whose
        embedded fingerprint or precharacterization version disagrees
        with this store's is rejected (counted, and a demand miss), so a
        stale baseline can only ever cost a recompute, never a wrong
        SSF.
        """
        import numpy as np

        from repro.gatesim.transient import CycleBaseline
        from repro.rtl.checkpoint import Checkpoint
        from repro.soc.soc import MpuTraceEntry

        path = self._path(cycle)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            if not probe:
                self.misses += 1
            return None
        if (
            payload.get("version") != BASELINE_FORMAT_VERSION
            or payload.get("fingerprint") != self.fingerprint
            or payload.get("precharac_version") != self.precharac_version
        ):
            self.rejected += 1
            if not probe:
                self.misses += 1
            return None
        data = payload["state"]
        entry = MpuTraceEntry(
            cycle=data["entry"]["cycle"],
            inputs=dict(data["entry"]["inputs"]),
            state=dict(data["entry"]["state"]),
        )
        post_step = Checkpoint(
            cycle=data["post_step"]["cycle"],
            registers=dict(data["post_step"]["registers"]),
            arrays={k: list(v) for k, v in data["post_step"]["arrays"].items()},
        )
        baseline = CycleBaseline(
            values=np.asarray(data["values"], dtype=np.int8),
            golden_next=dict(data["golden_next"]),
        )
        self.hits += 1
        return entry, post_step, baseline

    def save(self, cycle: int, entry, post_step, baseline) -> None:
        """Write one cycle's state through to disk (atomic, idempotent)."""
        path = self._path(cycle)
        if path.exists():
            return
        payload = {
            "version": BASELINE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "precharac_version": self.precharac_version,
            "cycle": cycle,
            "state": {
                "entry": {
                    "cycle": entry.cycle,
                    "inputs": dict(entry.inputs),
                    "state": dict(entry.state),
                },
                "post_step": {
                    "cycle": post_step.cycle,
                    "registers": dict(post_step.registers),
                    "arrays": {k: list(v) for k, v in post_step.arrays.items()},
                },
                "values": [int(v) for v in baseline.values],
                "golden_next": dict(baseline.golden_next),
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        self.writes += 1


def baseline_store_for(
    store: ArtifactStore, benchmark: str, variant: str, netlist
) -> CycleBaselineStore:
    """A baseline store scoped to one (benchmark, variant, netlist)."""
    from repro.precharac.persistence import FORMAT_VERSION
    from repro.soc.mpu import MpuVariant

    return CycleBaselineStore(
        store,
        benchmark=benchmark,
        variant=MpuVariant.parse(variant).name,
        fingerprint=netlist_fingerprint(netlist),
        precharac_version=FORMAT_VERSION,
    )


def calibration_path(store: ArtifactStore, spec) -> pathlib.Path:
    """Deterministic calibration-artifact path for a surrogate spec.

    Key fields are exactly those the in-process fit depends on: the
    attack geometry plus the campaign seed (the calibration seed tree
    roots at ``spec.seed``).  ``build_runtime`` fits-and-saves on a
    miss and loads on a hit, so repeat campaigns skip recalibration.
    """
    from repro.soc.mpu import MpuVariant

    return store.path_for(
        KIND_CALIBRATION,
        benchmark=spec.benchmark,
        variant=MpuVariant.parse(spec.variant).name,
        sampler=spec.sampler,
        window=spec.window,
        subblock_fraction=spec.subblock_fraction,
        impact_cycles=spec.impact_cycles,
        seed=spec.seed,
    )
