"""Declarative hardening-sweep specification and design-space expansion.

A :class:`SweepSpec` describes a *campaign of campaigns*: a shared
``base`` campaign document plus ``axes`` — an ordered mapping from
campaign field to the list of values to sweep.  Expansion takes the
cartesian product of the axes in declaration order and materializes one
:class:`~repro.campaign.spec.CampaignSpec` per point, so an 2×2×2 sweep
over ``variant`` × ``window`` × ``seed`` yields eight campaigns.

Expansion is deterministic and order-stable (same spec → same points in
the same order), and every point carries its content-addressed
``spec_hash`` — semantically duplicate points (e.g. ``"dual+parity"``
and ``"parity+dual"``, which normalize to one variant) collapse to a
single job before anything reaches the service queue.

Only *semantic* campaign fields may be swept: the fields listed in
:data:`~repro.campaign.spec_hash.NON_SEMANTIC_FIELDS` are excluded from
the spec hash, so two points differing only there would dedupe into one
cache entry — an axis that cannot differentiate points is a spec error,
not a silent 1-point sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.campaign.spec import CampaignSpec, StoppingConfig
from repro.campaign.spec_hash import (
    NON_SEMANTIC_FIELDS,
    code_version_salt,
    spec_hash,
)
from repro.errors import ReproError, SweepError

#: Campaign fields a sweep axis may range over (semantic top-level
#: fields; stopping-rule fields are addressed as ``stopping.<field>``).
SWEEPABLE_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(CampaignSpec)
    if f.name not in NON_SEMANTIC_FIELDS and f.name != "stopping"
)

#: Stopping-rule fields, addressed from an axis as ``stopping.<field>``.
STOPPING_FIELDS = tuple(f.name for f in dataclasses.fields(StoppingConfig))

#: Every legal axis name, in a stable order (for error messages).
VALID_AXES = SWEEPABLE_FIELDS + tuple(
    f"stopping.{name}" for name in STOPPING_FIELDS
)

#: Every legal ``base`` key: any campaign field (non-semantic knobs are
#: fine in the base — they configure execution without forking points).
VALID_BASE_FIELDS = tuple(
    f.name for f in dataclasses.fields(CampaignSpec)
)


@dataclass(frozen=True)
class SweepPoint:
    """One expanded design point: overrides + the campaign they select."""

    index: int                     # position in expansion order
    label: str                     # "variant=none,window=50"
    overrides: Mapping[str, object]
    spec: CampaignSpec
    digest: str                    # content-addressed spec hash


@dataclass(frozen=True)
class SweepPlan:
    """The expansion of one :class:`SweepSpec`.

    ``points`` holds the deduplicated design points in expansion order;
    ``n_raw`` counts cartesian-product combinations before semantic
    dedup, so ``n_raw - len(points)`` combinations collapsed onto an
    earlier point's spec hash.
    """

    points: Tuple[SweepPoint, ...]
    n_raw: int

    @property
    def n_duplicates(self) -> int:
        return self.n_raw - len(self.points)


@dataclass(frozen=True)
class SweepSpec:
    """Full declarative description of one hardening sweep."""

    name: str = "sweep"
    base: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Tuple[object, ...]] = field(default_factory=dict)
    baseline_report: Optional[str] = None  # pinned report to regress against
    regression_margin: float = 0.0         # CI slack before "regressed"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SweepError("sweep name must be a non-empty string")
        for key in self.base:
            if key not in VALID_BASE_FIELDS:
                raise SweepError(
                    f"unknown campaign field {key!r} in sweep base: "
                    f"valid fields are {', '.join(VALID_BASE_FIELDS)}"
                )
        if not self.axes:
            raise SweepError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if name in NON_SEMANTIC_FIELDS:
                raise SweepError(
                    f"axis {name!r} cannot differentiate sweep points: it "
                    f"is excluded from the spec hash (non-semantic), so "
                    f"every value would dedupe onto one cached campaign; "
                    f"set it in the sweep base instead"
                )
            if name not in VALID_AXES:
                raise SweepError(
                    f"unknown sweep axis {name!r}: valid axes are "
                    f"{', '.join(VALID_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise SweepError(
                    f"axis {name!r} needs a non-empty list of values"
                )
        if self.regression_margin < 0:
            raise SweepError("regression_margin must be >= 0")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {name: list(vals) for name, vals in self.axes.items()},
            "baseline_report": self.baseline_report,
            "regression_margin": self.regression_margin,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise SweepError("sweep spec must be a JSON object")
        known = {"name", "base", "axes", "baseline_report",
                 "regression_margin"}
        for key in data:
            if key not in known:
                raise SweepError(
                    f"unknown sweep field {key!r}: valid fields are "
                    f"{', '.join(sorted(known))}"
                )
        axes = data.get("axes", {})
        if not isinstance(axes, Mapping):
            raise SweepError("sweep axes must be an object of lists")
        return cls(
            name=data.get("name", "sweep"),
            base=dict(data.get("base", {})),
            axes={name: tuple(vals) if isinstance(vals, (list, tuple))
                  else vals for name, vals in axes.items()},
            baseline_report=data.get("baseline_report"),
            regression_margin=float(data.get("regression_margin", 0.0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> SweepPlan:
        """Materialize the design space (deterministic, order-stable).

        Axes iterate in declaration order, the last axis fastest — the
        cartesian product order of :func:`itertools.product`.  Points
        whose campaign hashes onto an already-expanded point are
        dropped (first occurrence wins).
        """
        names = list(self.axes)
        points: List[SweepPoint] = []
        seen: Dict[str, int] = {}
        n_raw = 0
        for combo in itertools.product(
            *(self.axes[name] for name in names)
        ):
            overrides = dict(zip(names, combo))
            label = ",".join(
                f"{name}={value}" for name, value in overrides.items()
            )
            spec = self._point_spec(label, overrides)
            digest = spec_hash(spec)
            n_raw += 1
            if digest in seen:
                continue
            seen[digest] = len(points)
            points.append(
                SweepPoint(
                    index=len(points),
                    label=label,
                    overrides=overrides,
                    spec=spec,
                    digest=digest,
                )
            )
        return SweepPlan(points=tuple(points), n_raw=n_raw)

    def _point_spec(
        self, label: str, overrides: Mapping[str, object]
    ) -> CampaignSpec:
        data = dict(self.base)
        stopping = dict(data.get("stopping", {}))
        for name, value in overrides.items():
            if name.startswith("stopping."):
                stopping[name.split(".", 1)[1]] = value
            else:
                data[name] = value
        if stopping:
            data["stopping"] = stopping
        try:
            return CampaignSpec.from_dict(data)
        except (ReproError, TypeError, ValueError) as exc:
            # EvaluationError from campaign validation, TypeError from an
            # unknown stopping field — either way, name the point.
            raise SweepError(
                f"sweep point ({label}) is not a valid campaign: {exc}"
            ) from exc

    def sweep_hash(self) -> str:
        """Content address of the *expanded* design space.

        Hashes the sorted set of member spec hashes (salted with the
        code version), so two sweeps whose axes spell out the same set
        of campaigns — in any axis order — share an identity, and a
        code upgrade that invalidates campaign hashes invalidates sweep
        hashes with it.
        """
        plan = self.expand()
        payload = code_version_salt() + "\n" + json.dumps(
            sorted(point.digest for point in plan.points)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_sweep_spec(path: Union[str, pathlib.Path]) -> SweepSpec:
    """Read a :class:`SweepSpec` from a JSON file.

    Missing or corrupt files raise :class:`SweepError` naming the path,
    mirroring :func:`repro.campaign.spec.load_spec`.
    """
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SweepError(f"cannot load sweep spec {path}: {exc}") from exc
    return SweepSpec.from_dict(data)
