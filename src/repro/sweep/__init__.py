"""Hardening sweeps: campaign-of-campaigns design-space evaluation.

``repro.sweep`` turns the single-campaign service into a pre-silicon
security-signoff product: a declarative :class:`SweepSpec` expands a
design space (countermeasure variants × attack windows × sampling knobs
× engine fidelities) into one :class:`~repro.campaign.spec.CampaignSpec`
per point, fans the points through the evaluation service's durable job
queue (deduplicating via content-addressed spec hashes), and aggregates
the finished estimates into a comparative report — SSF ± Wilson CI per
point, a Pareto front over (silicon area, SSF), and regression verdicts
against a pinned baseline report.
"""

from repro.sweep.report import (
    build_report,
    load_baseline,
    pareto_front,
    render_report_table,
    report_json,
    variant_area,
)
from repro.sweep.runner import SweepRunner, sweep_status
from repro.sweep.spec import (
    STOPPING_FIELDS,
    SWEEPABLE_FIELDS,
    SweepPlan,
    SweepPoint,
    SweepSpec,
    VALID_AXES,
    load_sweep_spec,
)
from repro.sweep.store import SweepStore

__all__ = [
    "STOPPING_FIELDS",
    "SWEEPABLE_FIELDS",
    "SweepPlan",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "SweepStore",
    "VALID_AXES",
    "build_report",
    "load_baseline",
    "load_sweep_spec",
    "pareto_front",
    "render_report_table",
    "report_json",
    "sweep_status",
    "variant_area",
]
