"""Sweep coordinator: expand → fan out → watch → aggregate.

The runner is deliberately *stateless about progress*: it expands the
design space, submits every point through
:meth:`~repro.service.client.ServiceClient.submit_many`, and lets the
service's content-addressed dedup decide what each submission means —
a fresh job, a coalesce onto an active job, a cache hit on a finished
run, or an adopted resume of an interrupted one.  That makes SIGKILL
recovery trivial: a restarted sweep just runs again.  Every point it
already submitted dedupes onto the durable queue (or the result cache),
no sample is re-evaluated, and the aggregated report — a pure function
of the design space and the member estimates — comes out bit-identical.

Progress streams onto a :class:`~repro.fleet.events.EventBus` topic
named by the sweep id (``sweep_started`` / ``point`` /
``sweep_progress`` / ``sweep_complete``, closed by the standard
``EVENT_END`` sentinel), and per-sweep gauges land in the shared
metrics registry via :mod:`repro.obs.sweep_metrics`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import ServiceError, SweepError
from repro.fleet.events import EVENT_END, EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.sweep_metrics import update_sweep_gauges
from repro.service.client import ServiceClient
from repro.service.jobs import TERMINAL_STATES
from repro.sweep.report import build_report, load_baseline, report_json
from repro.sweep.spec import SweepSpec
from repro.sweep.store import SweepStore

#: Points per ``submit_many`` POST.  Batching bounds request size while
#: still amortizing connection setup; the crash tests shrink it to 1 to
#: widen the mid-fan-out kill window.
DEFAULT_FANOUT_BATCH = 64


class SweepRunner:
    """Drive one hardening sweep against a running evaluation service."""

    def __init__(
        self,
        spec: SweepSpec,
        store: SweepStore,
        client: ServiceClient,
        events: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        poll_s: float = 0.2,
        timeout_s: float = 3600.0,
        priority: int = 0,
        fanout_batch: int = DEFAULT_FANOUT_BATCH,
        fanout_delay_s: float = 0.0,
        report_delay_s: float = 0.0,
    ):
        self.spec = spec
        self.store = store
        self.client = client
        self.events = events if events is not None else EventBus()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.priority = priority
        self.fanout_batch = max(1, fanout_batch)
        # Crash-test hooks: sleeps after each fan-out batch and between
        # "all jobs done" and the report write, widening the mid-fan-out
        # and mid-aggregation SIGKILL windows respectively.
        self.fanout_delay_s = fanout_delay_s
        self.report_delay_s = report_delay_s

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Run (or resume) the sweep to a finished comparative report."""
        existing = self.store.read_report()
        if existing is not None:
            return existing

        # A bad baseline path must fail before any fan-out.
        baseline = (
            load_baseline(self.spec.baseline_report)
            if self.spec.baseline_report
            else None
        )

        plan = self.spec.expand()
        self._publish(
            {
                "type": "sweep_started",
                "sweep_id": self.store.sweep_id,
                "name": self.spec.name,
                "n_points": len(plan.points),
                "n_duplicates": plan.n_duplicates,
            }
        )

        jobs = self._fan_out(plan)
        self._watch(plan, jobs)
        results = {
            point.digest: self.client.result(jobs[point.label]["job_id"])
            for point in plan.points
        }
        if self.report_delay_s:
            time.sleep(self.report_delay_s)
        report = build_report(self.spec, plan, results, baseline=baseline)
        self.store.write_report(report_json(report))
        self._publish(
            {
                "type": "sweep_complete",
                "sweep_id": self.store.sweep_id,
                "n_points": report["n_points"],
                "verdict": report["regression"]["verdict"],
            }
        )
        self._publish(
            {
                "type": EVENT_END,
                "sweep_id": self.store.sweep_id,
            }
        )
        return report

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _fan_out(self, plan) -> Dict[str, dict]:
        """Submit every point; returns label → submit response.

        One ``submit_many`` POST per ``fanout_batch`` points.  Each
        response is durably logged before the next batch goes out, so a
        crash mid-fan-out leaves a clean prefix in ``points.jsonl`` —
        and because submission is idempotent under the service's dedup,
        the restart resubmits everything without duplicating work.
        """
        jobs: Dict[str, dict] = {}
        points = list(plan.points)
        for start in range(0, len(points), self.fanout_batch):
            batch = points[start:start + self.fanout_batch]
            responses = self.client.submit_many(
                [point.spec for point in batch], priority=self.priority
            )
            for point, response in zip(batch, responses):
                jobs[point.label] = response
                self.store.record_point(
                    {
                        "label": point.label,
                        "spec_hash": point.digest,
                        "job_id": response["job_id"],
                        "state": response["state"],
                        "cache_hit": response["cache_hit"],
                    }
                )
                self._publish(
                    {
                        "type": "point",
                        "sweep_id": self.store.sweep_id,
                        "label": point.label,
                        "job_id": response["job_id"],
                        "state": response["state"],
                        "cache_hit": response["cache_hit"],
                    }
                )
            self._refresh(plan, jobs)
            if self.fanout_delay_s:
                time.sleep(self.fanout_delay_s)
        return jobs

    # ------------------------------------------------------------------
    # watching
    # ------------------------------------------------------------------
    def _watch(self, plan, jobs: Dict[str, dict]) -> None:
        """Poll member jobs until all are terminal (or the sweep times
        out); failed or cancelled members fail the sweep."""
        deadline = time.monotonic() + self.timeout_s
        pending = {
            label: response["job_id"]
            for label, response in jobs.items()
            if response["state"] not in TERMINAL_STATES
        }
        while pending:
            if time.monotonic() >= deadline:
                raise SweepError(
                    f"sweep {self.store.sweep_id} timed out with "
                    f"{len(pending)} of {len(jobs)} points unfinished"
                )
            time.sleep(self.poll_s)
            changed = False
            for label, job_id in list(pending.items()):
                status = self.client.status(job_id)
                if status["state"] == jobs[label]["state"]:
                    continue
                jobs[label] = {**jobs[label], **status}
                changed = True
                self.store.record_point(
                    {
                        "label": label,
                        "job_id": job_id,
                        "state": status["state"],
                    }
                )
                self._publish(
                    {
                        "type": "point",
                        "sweep_id": self.store.sweep_id,
                        "label": label,
                        "job_id": job_id,
                        "state": status["state"],
                    }
                )
                if status["state"] in TERMINAL_STATES:
                    del pending[label]
            if changed:
                self._refresh(plan, jobs)
        failed = sorted(
            label
            for label, response in jobs.items()
            if response["state"] in ("failed", "cancelled")
        )
        if failed:
            details = []
            for label in failed:
                error = jobs[label].get("error")
                details.append(
                    f"({label}): {error}" if error else f"({label})"
                )
            raise SweepError(
                f"sweep {self.store.sweep_id} has "
                f"{len(failed)} failed point(s): " + "; ".join(details)
            )

    # ------------------------------------------------------------------
    # progress surfaces
    # ------------------------------------------------------------------
    def _refresh(self, plan, jobs: Dict[str, dict]) -> None:
        counts = {"queued": 0, "running": 0, "cached": 0, "done": 0,
                  "failed": 0}
        cached = 0
        for response in jobs.values():
            state = response["state"]
            if response.get("cache_hit") and state == "done":
                cached += 1
                counts["cached"] += 1
            elif state in counts:
                counts[state] += 1
            elif state == "cancelled":
                counts["failed"] += 1
        update_sweep_gauges(
            self.metrics,
            self.store.sweep_id,
            total=len(plan.points),
            state_counts=counts,
            cached=cached,
        )
        self._publish(
            {
                "type": "sweep_progress",
                "sweep_id": self.store.sweep_id,
                "n_points": len(plan.points),
                "n_submitted": len(jobs),
                "n_done": counts["done"] + counts["cached"],
                "n_cached": cached,
                "states": counts,
            }
        )

    def _publish(self, event: dict) -> None:
        self.events.publish(self.store.sweep_id, event)


def sweep_status(store: SweepStore, client: Optional[ServiceClient] = None) -> dict:
    """Status document for ``repro sweep status`` (service optional).

    Folds the durable point log; when a client is supplied, refreshes
    each logged point's state from the live service (logged states go
    stale the moment a coordinator dies).
    """
    spec = store.load_spec()
    plan = spec.expand()
    points = store.read_points()
    if client is not None:
        for label, point in points.items():
            job_id = point.get("job_id")
            if job_id is None:
                continue
            try:
                status = client.status(job_id)
            except ServiceError:
                continue  # job unknown to this service instance
            point["state"] = status["state"]
    counts = {"queued": 0, "running": 0, "cached": 0, "done": 0,
              "failed": 0}
    cached = 0
    for point in points.values():
        state = point.get("state", "queued")
        if point.get("cache_hit") and state == "done":
            cached += 1
            counts["cached"] += 1
        elif state in counts:
            counts[state] += 1
        elif state == "cancelled":
            counts["failed"] += 1
    report = store.read_report()
    return {
        "sweep_id": store.sweep_id,
        "name": spec.name,
        "n_points": len(plan.points),
        "n_duplicates": plan.n_duplicates,
        "n_submitted": len(points),
        "n_cached": cached,
        "cache_hit_ratio": (
            cached / len(plan.points) if plan.points else 0.0
        ),
        "states": counts,
        "complete": report is not None,
        "verdict": (
            report["regression"]["verdict"] if report is not None else None
        ),
    }
