"""Durable sweep store: spec + append-only point log + atomic report.

Layout of one sweep directory (``<root>/<sweep_id>/``)::

    sweep.json    the SweepSpec (written once at creation)
    points.jsonl  one JSON line per point event (submitted / state change)
    report.json   the canonical comparative report (atomic, written last)

Mirrors the :class:`~repro.campaign.store.RunStore` durability idioms:
the point log is fsynced before each append returns (a crash can at
worst tear the final line, which replay discards), and the report is
written tmp-then-rename so readers never observe a half-written file.

The point log is *advisory* for correctness — resume does not replay it
to decide what to submit.  A restarted sweep simply re-expands the spec
and resubmits every point: the service's content-addressed dedup turns
each resubmission into a coalesce (active job), a cache hit (finished
run), or an adopted resume (interrupted run).  The log exists so
``repro sweep status`` can answer without a live coordinator.
"""

from __future__ import annotations

import json
import os
import pathlib
import uuid
from typing import Dict, List, Optional, Union

from repro.errors import SweepError
from repro.sweep.spec import SweepSpec

SWEEP_FILE = "sweep.json"
POINTS_FILE = "points.jsonl"
REPORT_FILE = "report.json"


class SweepStore:
    """Filesystem persistence for one hardening sweep."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)

    @property
    def sweep_id(self) -> str:
        return self.path.name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: Union[str, pathlib.Path],
        spec: SweepSpec,
        sweep_id: Optional[str] = None,
    ) -> "SweepStore":
        sweep_id = sweep_id or uuid.uuid4().hex[:12]
        path = pathlib.Path(root) / sweep_id
        if (path / SWEEP_FILE).exists():
            raise SweepError(
                f"sweep {sweep_id!r} already exists at {path}"
            )
        path.mkdir(parents=True, exist_ok=True)
        store = cls(path)
        (path / SWEEP_FILE).write_text(spec.to_json())
        return store

    @classmethod
    def open(
        cls, root: Union[str, pathlib.Path], sweep_id: str
    ) -> "SweepStore":
        path = pathlib.Path(root) / sweep_id
        if not (path / SWEEP_FILE).exists():
            raise SweepError(f"no sweep {sweep_id!r} under {root}")
        return cls(path)

    @classmethod
    def exists(
        cls, root: Union[str, pathlib.Path], sweep_id: str
    ) -> bool:
        return (pathlib.Path(root) / sweep_id / SWEEP_FILE).exists()

    @classmethod
    def list_sweeps(cls, root: Union[str, pathlib.Path]) -> List[str]:
        root = pathlib.Path(root)
        if not root.exists():
            return []
        return sorted(
            p.name for p in root.iterdir() if (p / SWEEP_FILE).exists()
        )

    def load_spec(self) -> SweepSpec:
        try:
            data = json.loads((self.path / SWEEP_FILE).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(
                f"cannot load sweep spec for {self.sweep_id}: {exc}"
            ) from exc
        return SweepSpec.from_dict(data)

    # ------------------------------------------------------------------
    # append-only point log
    # ------------------------------------------------------------------
    def record_point(self, payload: dict) -> None:
        """Durably append one point event (fsynced before returning).

        ``payload`` must carry the point's ``label``; later events for
        the same label supersede earlier ones on read.
        """
        line = json.dumps(payload, sort_keys=True)
        with open(self.path / POINTS_FILE, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def read_points(self) -> Dict[str, dict]:
        """Fold the point log into latest-state-per-label.

        A torn final line (crash mid-append) is dropped, mirroring the
        campaign chunk-log replay.
        """
        target = self.path / POINTS_FILE
        if not target.exists():
            return {}
        out: Dict[str, dict] = {}
        with open(target) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn final append
                label = payload.get("label")
                if label is not None:
                    out[label] = {**out.get(label, {}), **payload}
        return out

    # ------------------------------------------------------------------
    # report (atomic, written once at aggregation)
    # ------------------------------------------------------------------
    def write_report(self, text: str) -> None:
        """Atomically replace ``report.json`` with the canonical text."""
        tmp = self.path / (REPORT_FILE + ".tmp")
        tmp.write_text(text)
        tmp.replace(self.path / REPORT_FILE)

    def read_report_text(self) -> Optional[str]:
        target = self.path / REPORT_FILE
        if not target.exists():
            return None
        return target.read_text()

    def read_report(self) -> Optional[dict]:
        text = self.read_report_text()
        if text is None:
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepError(
                f"corrupt sweep report for {self.sweep_id}: {exc}"
            ) from exc
