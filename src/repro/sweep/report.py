"""Comparative sweep report: SSF ± CI per point, Pareto front, regression.

The report is *canonical*: a pure function of the design space and the
member campaigns' estimates.  Job ids, run ids, cache hits, and wall
times are deliberately excluded, so an interrupted-and-resumed sweep
(whose points are adopted from the durable queue or served from the
result cache) renders a **bit-identical** ``report.json`` to an
uninterrupted run — the property the SIGKILL-resume tests pin.

Three sections:

* ``points`` — per design point: SSF ± Wilson CI (straight from the
  campaign result payload), silicon area of the point's countermeasure
  variant (measured from the elaborated MPU netlist, memoized per
  variant), and area overhead relative to the cheapest point;
* ``pareto`` — the Pareto-efficient labels minimizing (area, SSF):
  a point is dominated when another point is no worse on both axes and
  strictly better on one;
* ``regression`` — verdict against a pinned baseline report: a point
  *regressed* when its CI lower bound clears the baseline's CI upper
  bound by more than ``regression_margin`` (i.e. SSF got significantly
  worse); disjoint-below counts as improved.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import SweepError
from repro.sweep.spec import SweepPlan, SweepPoint, SweepSpec

REPORT_SCHEMA = 1

#: Result-payload keys copied verbatim into each report point.  Order
#: matters only for readability; all are deterministic for a fixed spec.
RESULT_KEYS = (
    "ssf",
    "ci_low",
    "ci_high",
    "ci_z",
    "n_samples",
    "n_success",
    "std_error",
    "stop_reason",
)

_AREA_CACHE: Dict[str, float] = {}


def variant_area(variant: str) -> float:
    """Silicon area (µm²) of one countermeasure variant's MPU netlist.

    Memoized per normalized variant name: a sweep touching four variants
    elaborates four netlists once, however many points share them.
    """
    from repro.soc.mpu import MpuVariant, build_mpu_netlist

    name = MpuVariant.parse(variant).name
    if name not in _AREA_CACHE:
        _AREA_CACHE[name] = build_mpu_netlist(
            variant=MpuVariant.parse(name)
        ).area()
    return _AREA_CACHE[name]


def pareto_front(points: Sequence[Mapping]) -> List[str]:
    """Labels of the Pareto-efficient points minimizing (area, SSF).

    Input order never matters: the front is computed pairwise and the
    result sorted by (area, ssf, label) — the reordering-invariance
    property pinned by the Hypothesis suite.  Ties (equal on both axes)
    are all kept: neither strictly dominates the other.
    """
    front = []
    for candidate in points:
        dominated = any(
            other is not candidate
            and other["area_um2"] <= candidate["area_um2"]
            and other["ssf"] <= candidate["ssf"]
            and (
                other["area_um2"] < candidate["area_um2"]
                or other["ssf"] < candidate["ssf"]
            )
            for other in points
        )
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda p: (p["area_um2"], p["ssf"], p["label"]))
    return [p["label"] for p in front]


def _regression(
    points: Sequence[Mapping],
    baseline: Optional[Mapping],
    margin: float,
) -> dict:
    """Per-point verdicts against a pinned baseline report."""
    if baseline is None:
        return {"baseline": None, "verdict": "no_baseline", "points": []}
    base_points = {p["label"]: p for p in baseline.get("points", [])}
    rows = []
    any_regressed = False
    for point in points:
        base = base_points.get(point["label"])
        if base is None:
            rows.append({"label": point["label"], "verdict": "new"})
            continue
        regressed = point["ci_low"] > base["ci_high"] + margin
        improved = point["ci_high"] < base["ci_low"] - margin
        any_regressed = any_regressed or regressed
        rows.append(
            {
                "label": point["label"],
                "ssf": point["ssf"],
                "baseline_ssf": base["ssf"],
                "baseline_ci_low": base["ci_low"],
                "baseline_ci_high": base["ci_high"],
                "verdict": (
                    "regressed" if regressed
                    else "improved" if improved
                    else "unchanged"
                ),
            }
        )
    return {
        "baseline": {
            "name": baseline.get("name"),
            "sweep_hash": baseline.get("sweep_hash"),
        },
        "verdict": "regressed" if any_regressed else "pass",
        "points": rows,
    }


def build_report(
    spec: SweepSpec,
    plan: SweepPlan,
    results: Mapping[str, Mapping],
    baseline: Optional[Mapping] = None,
) -> dict:
    """Assemble the canonical comparative report.

    ``results`` maps each point's spec hash to its campaign result
    payload (the :func:`repro.service.cache.result_payload` document).
    A missing result is a caller bug — the runner only aggregates once
    every member job is done.
    """
    point_rows: List[dict] = []
    for point in plan.points:
        result = results.get(point.digest)
        if result is None:
            raise SweepError(
                f"sweep point ({point.label}) has no result to aggregate"
            )
        row = {
            "label": point.label,
            "axes": dict(point.overrides),
            "spec_hash": point.digest,
            "area_um2": variant_area(point.spec.variant),
        }
        for key in RESULT_KEYS:
            row[key] = result.get(key)
        point_rows.append(row)

    min_area = min((row["area_um2"] for row in point_rows), default=0.0)
    for row in point_rows:
        row["area_overhead"] = (
            (row["area_um2"] - min_area) / min_area if min_area else 0.0
        )
    front = pareto_front(point_rows)
    for row in point_rows:
        row["pareto"] = row["label"] in front

    return {
        "schema": REPORT_SCHEMA,
        "name": spec.name,
        "sweep_hash": spec.sweep_hash(),
        "n_points": len(plan.points),
        "n_duplicates": plan.n_duplicates,
        "points": point_rows,
        "pareto": front,
        "regression": _regression(
            point_rows, baseline, spec.regression_margin
        ),
    }


def report_json(report: Mapping) -> str:
    """The canonical serialized form (what ``report.json`` holds)."""
    return json.dumps(report, indent=2, sort_keys=True)


def load_baseline(path: Union[str, pathlib.Path]) -> dict:
    """Read a pinned baseline report, raising :class:`SweepError` on
    missing or corrupt files."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SweepError(
            f"cannot load baseline report {path}: {exc}"
        ) from exc
    if not isinstance(data, dict) or "points" not in data:
        raise SweepError(
            f"baseline report {path} is not a sweep report "
            f"(missing 'points')"
        )
    return data


def render_report_table(report: Mapping) -> str:
    """Human-readable rendering for the non-``--json`` CLI path."""
    lines = [
        f"sweep: {report['name']}  "
        f"({report['n_points']} points, "
        f"{report['n_duplicates']} duplicates collapsed)",
        "",
        f"{'label':<44} {'ssf':>8} {'ci_low':>8} {'ci_high':>8} "
        f"{'area_um2':>10} {'overhead':>9} {'pareto':>7}",
    ]
    for row in report["points"]:
        lines.append(
            f"{row['label']:<44} {row['ssf']:>8.4f} "
            f"{row['ci_low']:>8.4f} {row['ci_high']:>8.4f} "
            f"{row['area_um2']:>10.1f} "
            f"{row['area_overhead'] * 100:>8.2f}% "
            f"{'*' if row['pareto'] else '':>7}"
        )
    lines.append("")
    lines.append("pareto front: " + ", ".join(report["pareto"]))
    regression = report["regression"]
    lines.append(f"regression verdict: {regression['verdict']}")
    for row in regression["points"]:
        if row["verdict"] != "unchanged":
            lines.append(f"  {row['label']}: {row['verdict']}")
    return "\n".join(lines)
