"""FSM-level vulnerability analysis (the AVFSM-style baseline).

The paper's related work [11] (Nahiyan et al., "AVFSM", DAC 2016) analyzes
fault-attack vulnerability by extracting a design's finite state machine,
finding its don't-care states, and checking which single-bit state faults
skip protection states.  This package implements that class of analysis
over our platform, as the *comparison baseline* the Monte Carlo framework
is evaluated against: it is fast and exhaustive over state encodings, but
blind to everything the cross-level flow models (combinational transients,
timing windows, multi-register interactions, attack-parameter
uncertainty).
"""

from repro.fsmcheck.extract import FsmExtraction, extract_fsm
from repro.fsmcheck.analyze import FsmVulnerabilityReport, analyze_fsm

__all__ = [
    "FsmExtraction",
    "extract_fsm",
    "FsmVulnerabilityReport",
    "analyze_fsm",
]
