"""FSM extraction from RTL runs.

An FSM here is a chosen set of registers (e.g. the core's ``core_state``,
or the MPU's decision pair) observed while representative workloads run.
The extraction records the *reachable* composite states and the observed
transition relation; every unobserved encoding is a **don't-care state** —
the object AVFSM's analysis revolves around.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import EvaluationError

State = Tuple[int, ...]  # one value per FSM register, in declared order


@dataclass
class FsmExtraction:
    """Observed behaviour of one register-set FSM."""

    registers: Tuple[str, ...]
    widths: Tuple[int, ...]
    states: Set[State] = field(default_factory=set)
    transitions: Dict[State, Set[State]] = field(default_factory=dict)
    visit_counts: Dict[State, int] = field(default_factory=dict)

    @property
    def n_encodings(self) -> int:
        total = 1
        for width in self.widths:
            total <<= width
        return total

    def dont_care_states(self) -> List[State]:
        """Encodings never observed in any workload."""
        all_states = itertools.product(
            *[range(1 << width) for width in self.widths]
        )
        return [s for s in all_states if s not in self.states]

    def state_bits(self) -> int:
        return sum(self.widths)

    def pack(self, state: State) -> int:
        """Concatenate the registers into one integer (LSB = register 0)."""
        value = 0
        shift = 0
        for component, width in zip(state, self.widths):
            value |= (component & ((1 << width) - 1)) << shift
            shift += width
        return value

    def unpack(self, value: int) -> State:
        parts = []
        shift = 0
        for width in self.widths:
            parts.append((value >> shift) & ((1 << width) - 1))
            shift += width
        return tuple(parts)

    def single_bit_neighbours(self, state: State) -> List[State]:
        """All states at Hamming distance 1 in the packed encoding."""
        packed = self.pack(state)
        return [
            self.unpack(packed ^ (1 << bit)) for bit in range(self.state_bits())
        ]

    def merge(self, other: "FsmExtraction") -> "FsmExtraction":
        if other.registers != self.registers:
            raise EvaluationError("cannot merge FSMs over different registers")
        self.states |= other.states
        for state, nexts in other.transitions.items():
            self.transitions.setdefault(state, set()).update(nexts)
        for state, count in other.visit_counts.items():
            self.visit_counts[state] = self.visit_counts.get(state, 0) + count
        return self


def extract_fsm(
    device,
    registers: Sequence[str],
    n_cycles: int,
    reset: bool = True,
) -> FsmExtraction:
    """Observe an FSM over one run of an already-loaded device."""
    specs = device.register_specs()
    missing = [name for name in registers if name not in specs]
    if missing:
        raise EvaluationError(f"unknown FSM registers: {missing}")
    if n_cycles <= 0:
        raise EvaluationError("n_cycles must be positive")

    extraction = FsmExtraction(
        registers=tuple(registers),
        widths=tuple(specs[name].width for name in registers),
    )
    if reset:
        device.reset()

    def observe() -> State:
        values = device.get_registers()
        return tuple(values[name] for name in registers)

    current = observe()
    extraction.states.add(current)
    extraction.visit_counts[current] = 1
    for _ in range(n_cycles):
        device.step()
        nxt = observe()
        extraction.states.add(nxt)
        extraction.visit_counts[nxt] = extraction.visit_counts.get(nxt, 0) + 1
        extraction.transitions.setdefault(current, set()).add(nxt)
        current = nxt
    return extraction


def extract_fsm_from_workloads(
    device_factory,
    programs: Iterable,
    registers: Sequence[str],
    max_cycles: int = 20000,
) -> FsmExtraction:
    """Union extraction over several workloads (fresh device each)."""
    merged: FsmExtraction = None
    for program in programs:
        device = device_factory()
        device.load_program(program.program.words)
        device.reset()
        n = device.run_until_halt(max_cycles)
        device.reset()
        extraction = extract_fsm(device, registers, n, reset=False)
        merged = extraction if merged is None else merged.merge(extraction)
    if merged is None:
        raise EvaluationError("no workloads provided")
    return merged
