"""AVFSM-style vulnerability analysis over an extracted FSM.

Given the observed FSM and a predicate marking *protection states* (e.g.
"the violation is flagged"), the analysis asks, for every reachable state
and every single-bit state-register fault:

* does the faulty encoding land in a reachable state that **skips** a
  protection state the fault-free machine was headed for?  (a *bypass
  fault*), or
* does it land in a **don't-care** encoding, whose behaviour is undefined
  at this abstraction level?  (flagged for designer review, as AVFSM does)

The output is a per-state fault census plus the two headline metrics the
AVFSM paper reports: the fraction of state faults that can defeat the
protection, and the set of dangerous don't-care encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import EvaluationError
from repro.fsmcheck.extract import FsmExtraction, State


@dataclass(frozen=True)
class StateFault:
    """One single-bit state-register fault."""

    from_state: State
    bit: int
    to_state: State
    kind: str  # "bypass" | "dont_care" | "benign"


@dataclass
class FsmVulnerabilityReport:
    """Results of the state-level fault census."""

    registers: Tuple[str, ...]
    n_reachable: int
    n_encodings: int
    protection_states: Set[State]
    faults: List[StateFault] = field(default_factory=list)
    dont_care: List[State] = field(default_factory=list)

    @property
    def bypass_faults(self) -> List[StateFault]:
        return [f for f in self.faults if f.kind == "bypass"]

    @property
    def dont_care_faults(self) -> List[StateFault]:
        return [f for f in self.faults if f.kind == "dont_care"]

    @property
    def vulnerability_fraction(self) -> float:
        """Share of single-bit state faults that defeat the protection."""
        if not self.faults:
            return 0.0
        return len(self.bypass_faults) / len(self.faults)

    def summary(self) -> Dict[str, object]:
        return {
            "registers": list(self.registers),
            "reachable_states": self.n_reachable,
            "total_encodings": self.n_encodings,
            "dont_care_states": len(self.dont_care),
            "faults_total": len(self.faults),
            "bypass_faults": len(self.bypass_faults),
            "dont_care_faults": len(self.dont_care_faults),
            "vulnerability_fraction": round(self.vulnerability_fraction, 4),
        }


def _reaches_protection(
    extraction: FsmExtraction,
    start: State,
    protection: Set[State],
    horizon: int,
) -> bool:
    """Can the observed transition relation reach a protection state?"""
    frontier = {start}
    seen: Set[State] = set()
    for _ in range(horizon):
        if frontier & protection:
            return True
        seen |= frontier
        frontier = {
            nxt
            for state in frontier
            for nxt in extraction.transitions.get(state, ())
        } - seen
        if not frontier:
            return False
    return bool(frontier & protection)


def analyze_fsm(
    extraction: FsmExtraction,
    is_protection_state: Callable[[State], bool],
    horizon: int = 16,
) -> FsmVulnerabilityReport:
    """Single-bit state-fault census against a protection predicate.

    A fault in state ``s`` is a **bypass** when the fault-free machine
    would have reached a protection state within ``horizon`` observed
    transitions, but from the faulty state it no longer can.
    """
    protection = {s for s in extraction.states if is_protection_state(s)}
    if not protection:
        raise EvaluationError(
            "no protection states observed; check the predicate or extend "
            "the extraction workloads"
        )
    dont_care = extraction.dont_care_states()
    dont_care_set = set(dont_care)

    faults: List[StateFault] = []
    for state in sorted(extraction.states):
        heading_to_protection = _reaches_protection(
            extraction, state, protection, horizon
        )
        for bit, faulty in enumerate(extraction.single_bit_neighbours(state)):
            if faulty == state:
                continue
            if faulty in dont_care_set:
                kind = "dont_care"
            elif heading_to_protection and not _reaches_protection(
                extraction, faulty, protection, horizon
            ):
                kind = "bypass"
            else:
                kind = "benign"
            faults.append(
                StateFault(from_state=state, bit=bit, to_state=faulty, kind=kind)
            )

    return FsmVulnerabilityReport(
        registers=extraction.registers,
        n_reachable=len(extraction.states),
        n_encodings=extraction.n_encodings,
        protection_states=protection,
        faults=faults,
        dont_care=dont_care,
    )


def probe_dont_care_recovery(
    device,
    extraction: FsmExtraction,
    warmup_cycles: int,
    settle_cycles: int = 8,
) -> Dict[State, State]:
    """Where does the *real* design go from each don't-care encoding?

    AVFSM flags don't-care states as undefined; with a simulatable device
    we can answer the question: force each unobserved encoding mid-run and
    observe the state ``settle_cycles`` later.  Complements the static
    census with ground truth.
    """
    recovery: Dict[State, State] = {}
    for state in extraction.dont_care_states():
        device.reset()
        for _ in range(warmup_cycles):
            device.step()
        device.set_registers(
            {name: value for name, value in zip(extraction.registers, state)}
        )
        for _ in range(settle_cycles):
            device.step()
        values = device.get_registers()
        recovery[state] = tuple(values[name] for name in extraction.registers)
    return recovery
