"""Zero-delay logic evaluation of a netlist.

Two entry points:

* :meth:`LogicEvaluator.evaluate` — scalar, one cycle: word-level inputs and
  register state in, every node's logic value out.  This is what the
  transient simulator uses for baseline values and sensitization checks.
* :meth:`LogicEvaluator.evaluate_trace` — bit-parallel over a multi-cycle
  trace: per-cycle source values are packed 64 cycles per ``uint64`` word and
  the whole combinational network is evaluated once, which is the paper's
  "fast bit-parallel calculation" used to derive switching signatures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.netlist.cells import GateKind, eval_gate_words
from repro.netlist.graph import Netlist, group_ports
from repro.utils.bitvec import BitSequence, pack_bits

NodeValues = np.ndarray  # int8 array indexed by node id


class LogicEvaluator:
    """Evaluates the combinational network of one netlist.

    The netlist is levelized once at construction; each evaluation is a
    single pass over the topological order.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._topo = netlist.topo_order()
        self._input_groups = group_ports(netlist.inputs.keys())
        self._output_groups = group_ports(netlist.outputs.keys())

    # ------------------------------------------------------------------
    # word-level packing helpers
    # ------------------------------------------------------------------
    def input_ports(self) -> Dict[str, int]:
        """Word-level input ports: base name -> width."""
        return {base: len(bits) for base, bits in self._input_groups.items()}

    def output_ports(self) -> Dict[str, int]:
        return {base: len(bits) for base, bits in self._output_groups.items()}

    def _spread_sources(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int],
        values: np.ndarray,
    ) -> None:
        for base, bits in self._input_groups.items():
            if base not in inputs:
                raise SimulationError(f"missing input {base!r}")
            word = int(inputs[base])
            for idx, full in bits:
                values[self.netlist.inputs[full]] = (word >> idx) & 1
        for reg, dff_ids in self.netlist.registers.items():
            if reg not in state:
                raise SimulationError(f"missing register state {reg!r}")
            word = int(state[reg])
            for bit, nid in enumerate(dff_ids):
                values[nid] = (word >> bit) & 1
        for node in self.netlist.nodes:
            if node.kind is GateKind.CONST1:
                values[node.nid] = 1

    # ------------------------------------------------------------------
    # scalar evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, inputs: Mapping[str, int], state: Mapping[str, int]
    ) -> NodeValues:
        """One-cycle evaluation: values for every node, indexed by node id."""
        nodes = self.netlist.nodes
        values = np.zeros(len(nodes), dtype=np.int8)
        self._spread_sources(inputs, state, values)
        for nid in self._topo:
            node = nodes[nid]
            kind = node.kind
            f = node.fanins
            if kind is GateKind.AND:
                values[nid] = values[f[0]] & values[f[1]]
            elif kind is GateKind.OR:
                values[nid] = values[f[0]] | values[f[1]]
            elif kind is GateKind.XOR:
                values[nid] = values[f[0]] ^ values[f[1]]
            elif kind is GateKind.NOT:
                values[nid] = values[f[0]] ^ 1
            elif kind is GateKind.NAND:
                values[nid] = (values[f[0]] & values[f[1]]) ^ 1
            elif kind is GateKind.NOR:
                values[nid] = (values[f[0]] | values[f[1]]) ^ 1
            elif kind is GateKind.XNOR:
                values[nid] = (values[f[0]] ^ values[f[1]]) ^ 1
            elif kind is GateKind.MUX:
                values[nid] = values[f[2]] if values[f[0]] else values[f[1]]
            elif kind is GateKind.BUF:
                values[nid] = values[f[0]]
            else:  # pragma: no cover - validate() keeps this unreachable
                raise SimulationError(f"cannot evaluate node kind {kind}")
        return values

    def next_state(self, values: NodeValues) -> Dict[str, int]:
        """Register next-state words from the DFF D pins."""
        out: Dict[str, int] = {}
        for reg, dff_ids in self.netlist.registers.items():
            word = 0
            for bit, nid in enumerate(dff_ids):
                d_pin = self.netlist.node(nid).fanins[0]
                word |= int(values[d_pin]) << bit
            out[reg] = word
        return out

    def outputs(self, values: NodeValues) -> Dict[str, int]:
        """Word-level output port values."""
        out: Dict[str, int] = {}
        for base, bits in self._output_groups.items():
            word = 0
            for idx, full in bits:
                word |= int(values[self.netlist.outputs[full]]) << idx
            out[base] = word
        return out

    def step(
        self, inputs: Mapping[str, int], state: Mapping[str, int]
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Convenience: one clock cycle -> (outputs, next register state)."""
        values = self.evaluate(inputs, state)
        return self.outputs(values), self.next_state(values)

    # ------------------------------------------------------------------
    # bit-parallel trace evaluation
    # ------------------------------------------------------------------
    def evaluate_trace(
        self,
        input_trace: Mapping[str, Sequence[int]],
        state_trace: Mapping[str, Sequence[int]],
    ) -> Dict[int, BitSequence]:
        """Evaluate the comb network over a whole trace at once.

        ``input_trace``/``state_trace`` hold per-cycle word values; all
        sequences must be equally long.  Returns, for every node id, the
        packed per-cycle logic value sequence (not the switching signature —
        call :meth:`BitSequence.from_values` / use
        :func:`signatures_from_values` for that).
        """
        lengths = {len(v) for v in input_trace.values()}
        lengths |= {len(v) for v in state_trace.values()}
        if len(lengths) != 1:
            raise SimulationError("trace sequences must all have equal length")
        n_cycles = lengths.pop()
        n_words = (n_cycles + 63) // 64

        words: Dict[int, np.ndarray] = {}
        ones = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        zeros = np.zeros(n_words, dtype=np.uint64)

        for base, bits in self._input_groups.items():
            if base not in input_trace:
                raise SimulationError(f"missing input trace {base!r}")
            series = list(input_trace[base])
            for idx, full in bits:
                bitvals = [(int(v) >> idx) & 1 for v in series]
                words[self.netlist.inputs[full]] = pack_bits(bitvals)
        for reg, dff_ids in self.netlist.registers.items():
            if reg not in state_trace:
                raise SimulationError(f"missing register trace {reg!r}")
            series = list(state_trace[reg])
            for bit, nid in enumerate(dff_ids):
                bitvals = [(int(v) >> bit) & 1 for v in series]
                words[nid] = pack_bits(bitvals)
        for node in self.netlist.nodes:
            if node.kind is GateKind.CONST1:
                words[node.nid] = ones.copy()
            elif node.kind is GateKind.CONST0:
                words[node.nid] = zeros.copy()

        for nid in self._topo:
            node = self.netlist.nodes[nid]
            words[nid] = eval_gate_words(
                node.kind, [words[f] for f in node.fanins]
            )

        result: Dict[int, BitSequence] = {}
        for nid, w in words.items():
            # Mask any padding bits beyond n_cycles.
            seq = BitSequence(n_cycles, w[: (n_cycles + 63) // 64])
            result[nid] = seq
        return result


def signatures_from_values(
    value_traces: Mapping[int, BitSequence]
) -> Dict[int, BitSequence]:
    """Turn per-node logic-value traces into switching signatures.

    ``ss_i = value_i XOR value_{i-1}`` with ``ss_0 = 0`` — computed
    word-parallel by XOR-ing each trace with itself shifted one cycle.
    """
    out: Dict[int, BitSequence] = {}
    for nid, trace in value_traces.items():
        shifted = trace.shift_right(1)
        # Cycle 0 of ``shifted`` is 0; force ss_0 = 0 by clearing any diff.
        ss = trace ^ shifted
        if ss.length > 0 and trace.get(0) == 1:
            ss.set(0, 0)
        out[nid] = ss
    return out
