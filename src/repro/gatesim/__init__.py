"""Gate-level simulation.

Three cooperating pieces:

* :mod:`repro.gatesim.logic` — zero-delay two-valued evaluation of the
  combinational network, both scalar (one cycle) and bit-parallel (64 cycles
  per machine word, used for switching-signature extraction).
* :mod:`repro.gatesim.timing` — the timing model: clock period, per-gate
  delays, DFF setup/hold window, and electrical pulse attenuation.
* :mod:`repro.gatesim.transient` — voltage-transient injection and
  propagation for the fault-injection cycle (Section 5.3 of the paper):
  transients are generated at radiated gates, propagate through sensitized
  paths with electrical masking, and are latched by flip-flops whose
  setup/hold window they overlap.
"""

from repro.gatesim.logic import LogicEvaluator, NodeValues, group_ports
from repro.gatesim.timing import TimingModel, for_netlist
from repro.gatesim.transient import (
    Pulse,
    TransientInjection,
    TransientResult,
    TransientSimulator,
)

__all__ = [
    "LogicEvaluator",
    "NodeValues",
    "group_ports",
    "TimingModel",
    "for_netlist",
    "Pulse",
    "TransientInjection",
    "TransientResult",
    "TransientSimulator",
]
