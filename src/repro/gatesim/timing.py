"""Timing model for the transient simulation.

Captures the quantities the latch-window analysis (Fig. 6 of the paper)
needs: the clock period, per-gate propagation delays (from the cell
library), DFF setup/hold times, and a simple electrical-masking model where
a pulse loses a fixed width per logic stage and dies below a minimum width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.errors import AttackModelError
from repro.netlist.cells import CELL_LIBRARY, GateKind


@dataclass(frozen=True)
class TimingModel:
    """All timing constants, in picoseconds.

    The default clock period comfortably exceeds the elaborated MPU's
    critical path (~1.4 ns with this cell library), as any design that
    closes timing must; :func:`for_netlist` derives a period from an actual
    critical path when a different design is simulated.
    """

    clock_period_ps: float = 1800.0
    setup_ps: float = 40.0
    hold_ps: float = 25.0
    # Electrical masking: width lost per traversed gate, and the width below
    # which a pulse can no longer switch a gate.
    attenuation_ps: float = 6.0
    min_pulse_ps: float = 12.0
    delay_overrides: Dict[GateKind, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clock_period_ps <= 0:
            raise AttackModelError("clock period must be positive")
        if self.setup_ps < 0 or self.hold_ps < 0:
            raise AttackModelError("setup/hold must be non-negative")
        if self.attenuation_ps < 0 or self.min_pulse_ps <= 0:
            raise AttackModelError("attenuation must be >= 0, min pulse > 0")

    def gate_delay(self, kind: GateKind) -> float:
        if kind in self.delay_overrides:
            return self.delay_overrides[kind]
        return CELL_LIBRARY[kind].delay_ps

    @property
    def latch_window(self) -> tuple:
        """(open, close) of the capture window around the clock edge.

        The clock edge sits at ``clock_period_ps``; a pulse present anywhere
        in ``[T - setup, T + hold]`` violates the flop's sampling and gets
        latched (pessimistic capture, as in the paper's Fig. 6(b)).
        """
        return (
            self.clock_period_ps - self.setup_ps,
            self.clock_period_ps + self.hold_ps,
        )

    def attenuate(self, width_ps: float) -> float:
        """Pulse width after traversing one gate; <= 0 means filtered out."""
        remaining = width_ps - self.attenuation_ps
        return remaining if remaining >= self.min_pulse_ps else 0.0

    def latch_hits(
        self, starts_ps: Sequence[float], widths_ps: Sequence[float]
    ) -> np.ndarray:
        """Vectorized latch-window classification for a batch of pulses.

        Element ``i`` is True iff the pulse ``[starts[i], starts[i] +
        widths[i])`` overlaps :attr:`latch_window` — the same float64
        comparisons as :meth:`~repro.gatesim.transient.Pulse.overlaps`,
        so a batched check is bit-identical to the scalar one.
        """
        starts = np.asarray(starts_ps, dtype=np.float64)
        widths = np.asarray(widths_ps, dtype=np.float64)
        lo, hi = self.latch_window
        return (starts < hi) & (starts + widths > lo)


def for_netlist(netlist, slack_fraction: float = 0.25, **overrides) -> TimingModel:
    """A timing model whose clock period fits the netlist's critical path.

    ``period = critical_path * (1 + slack_fraction)``, mirroring how a real
    design is clocked at its slowest path plus margin.
    """
    from repro.netlist.cells import CELL_LIBRARY

    arrival = [0.0] * len(netlist)
    for nid in netlist.topo_order():
        node = netlist.node(nid)
        delay = CELL_LIBRARY[node.kind].delay_ps
        arrival[nid] = delay + max(arrival[f] for f in node.fanins)
    critical = max(arrival) if arrival else 1000.0
    period = critical * (1.0 + slack_fraction)
    return TimingModel(clock_period_ps=period, **overrides)
