"""Voltage-transient injection, propagation, and latching.

Implements the gate-level half of the cross-level flow (Section 5.3):

1. the attack model hands over a set of impacted gates with initial pulse
   widths (and, for direct hits on flip-flops, state flips);
2. pulses propagate through the combinational network in topological order,
   subject to **logical masking** (a pulse only passes a gate whose side
   inputs sensitize the struck pin) and **electrical masking** (width
   attenuation per stage);
3. every pulse arriving at a DFF data pin that overlaps the setup/hold
   window is latched, flipping that register bit's next state.

The result is the set of faulty register bits at the end of the fault
injection cycle, which the engine writes back into the RTL simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gatesim.logic import LogicEvaluator, NodeValues
from repro.gatesim.timing import TimingModel
from repro.netlist.cells import GateKind, gate_sensitized
from repro.netlist.graph import Netlist

#: Samples per lane word in the batched kernel (one uint64 = 64 lanes).
_LANE_BITS = 64

#: Batch size at which ``simulate_cycle_batch`` switches from the
#: per-sample exact sweep to the columnar multi-lane sweep.  Below this
#: the numpy dispatch overhead outweighs the loop it replaces.
VECTORIZED_MIN_BATCH = 8


@dataclass(frozen=True)
class Pulse:
    """One voltage transient at a node output: [start, start + width)."""

    start_ps: float
    width_ps: float

    @property
    def end_ps(self) -> float:
        return self.start_ps + self.width_ps

    def overlaps(self, lo: float, hi: float) -> bool:
        return self.start_ps < hi and self.end_ps > lo


@dataclass
class TransientInjection:
    """What the attack deposits into the circuit in the injection cycle.

    ``gate_pulses`` maps combinational-node ids to initial pulse widths;
    ``struck_dffs`` lists flip-flop node ids whose stored state the strike
    flips directly (attack on sequential elements).
    """

    gate_pulses: Dict[int, float] = field(default_factory=dict)
    struck_dffs: List[int] = field(default_factory=list)
    strike_time_ps: float = 0.0


@dataclass
class TransientResult:
    """Outcome of one injection-cycle gate-level simulation."""

    # (register name, bit index) whose *latched next state* flipped.
    flipped_bits: Set[Tuple[str, int]]
    # Faulty next-state words per register (fault-free registers omitted).
    faulty_next_state: Dict[str, int]
    # Fault-free next state of every register, for reference.
    golden_next_state: Dict[str, int]
    # How many pulses were generated / survived to a D pin.
    n_pulses_injected: int = 0
    n_pulses_latched: int = 0

    @property
    def any_fault(self) -> bool:
        return bool(self.flipped_bits)

    def flipped_registers(self) -> Set[str]:
        return {reg for reg, _bit in self.flipped_bits}


@dataclass
class CycleBaseline:
    """Sample-independent gate-level state of one injection cycle.

    Everything here is a pure function of ``(inputs, state)`` — the golden
    stimulus of the cycle — and therefore shared by every sample injected
    into that cycle: the settled node values, the fault-free next state,
    and a lazily-filled memo of per-(node, pin) sensitization verdicts
    (logical masking depends only on the baseline side-input values, never
    on the injected pulses).  Built once per (injection cycle, cone) by
    :meth:`TransientSimulator.make_baseline` and cached at the engine
    level, so batched evaluation computes golden logic values once per
    cycle instead of once per sample.
    """

    values: NodeValues
    golden_next: Dict[str, int]
    sensitized: Dict[Tuple[int, int], bool] = field(default_factory=dict)


class TransientSimulator:
    """Propagates transients through one clock cycle of a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        timing: Optional[TimingModel] = None,
        max_pulses_per_node: int = 8,
    ):
        self.netlist = netlist
        self.timing = timing or TimingModel()
        self.evaluator = LogicEvaluator(netlist)
        self.max_pulses_per_node = max_pulses_per_node
        self._arrival = self._compute_arrival_times()
        self._dffs = [n for n in netlist.nodes if n.is_dff and n.fanins]

    def _compute_arrival_times(self) -> List[float]:
        """Static settle time of each node output within a cycle."""
        arrival = [0.0] * len(self.netlist)
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            delay = self.timing.gate_delay(node.kind)
            arrival[nid] = delay + max(self._safe_arrival(arrival, f) for f in node.fanins)
        return arrival

    @staticmethod
    def _safe_arrival(arrival: List[float], nid: int) -> float:
        return arrival[nid]

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def simulate_cycle(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int],
        injection: TransientInjection,
    ) -> TransientResult:
        """Run the fault injection cycle.

        ``inputs``/``state`` are the word-level stimulus and register state
        at the start of the cycle (provided by the RTL simulation).
        """
        values = self.evaluator.evaluate(inputs, state)
        golden_next = self.evaluator.next_state(values)

        pulses = self._seed_pulses(injection)
        n_injected = sum(len(p) for p in pulses.values())
        self._propagate(values, pulses)
        flipped, n_latched = self._latch(values, pulses)
        return self._finish_cycle(
            injection, flipped, golden_next, n_injected, n_latched
        )

    def make_baseline(
        self, inputs: Mapping[str, int], state: Mapping[str, int]
    ) -> CycleBaseline:
        """Evaluate the golden logic of one cycle for reuse across samples."""
        values = self.evaluator.evaluate(inputs, state)
        return CycleBaseline(
            values=values, golden_next=self.evaluator.next_state(values)
        )

    def simulate_cycle_batch(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int],
        injections: Sequence[TransientInjection],
        baseline: Optional[CycleBaseline] = None,
        vectorized: Optional[bool] = None,
    ) -> List[TransientResult]:
        """Run the injection cycle for a batch of same-cycle samples.

        Bit-identical to calling :meth:`simulate_cycle` once per
        injection, but the shared work is done once: the golden evaluation
        and sensitization verdicts come from ``baseline`` (built here when
        not supplied), and latch-window classification is one vectorized
        check over every surviving D-pin pulse in the batch.

        Two propagation backends implement the exact sweep:

        * the **per-sample path** (``vectorized=False``) runs a ``uint64``
          lane-reachability pre-pass and then the exact scalar propagation
          per sample over its reached nodes;
        * the **columnar path** (``vectorized=True``) keeps every sample's
          pulses at a node in shared numpy arrays tagged with an owner
          lane, so one topological sweep serves the whole batch — delay
          addition, electrical attenuation, and interval sorting happen
          across all lanes at once, with an exact scalar fallback only
          for the rare (owner, node) groups whose pulses actually merge.

        ``vectorized=None`` picks the columnar path for batches of at
        least :data:`VECTORIZED_MIN_BATCH`.  Both backends produce
        bit-identical pulse sets (ordering, float arithmetic, and
        truncation all replicate :meth:`_propagate`), which
        ``tests/gatesim/test_lane_propagation.py`` locks down.
        """
        if baseline is None:
            baseline = self.make_baseline(inputs, state)
        per_sample = [self._seed_pulses(inj) for inj in injections]
        n_injected = [sum(len(p) for p in ps.values()) for ps in per_sample]
        if vectorized is None:
            vectorized = len(injections) >= VECTORIZED_MIN_BATCH
        if vectorized:
            flipped_sets, latched_counts = self._simulate_columnar(
                baseline, per_sample
            )
        else:
            reached = self._reachable_by_sample(baseline, per_sample)
            for pulses, topo_reached in zip(per_sample, reached):
                if pulses:
                    self._propagate_pruned(baseline, pulses, topo_reached)
            flipped_sets, latched_counts = self._latch_batch(per_sample)
        return [
            self._finish_cycle(
                inj,
                flipped_sets[b],
                baseline.golden_next,
                n_injected[b],
                latched_counts[b],
            )
            for b, inj in enumerate(injections)
        ]

    def _finish_cycle(
        self,
        injection: TransientInjection,
        flipped: Set[Tuple[str, int]],
        golden_next: Dict[str, int],
        n_injected: int,
        n_latched: int,
    ) -> TransientResult:
        # Direct strikes on flip-flops flip the bit the flop will hold next
        # cycle (the strike corrupts the storage node).
        for dff_id in injection.struck_dffs:
            node = self.netlist.node(dff_id)
            if not node.is_dff:
                raise SimulationError(f"struck node {dff_id} is not a DFF")
            if node.register is None or node.bit is None:
                raise SimulationError(f"struck DFF {dff_id} has no register identity")
            key = (node.register, node.bit)
            if key in flipped:
                flipped.discard(key)  # double flip cancels
            else:
                flipped.add(key)

        faulty_next: Dict[str, int] = {}
        for reg, bit in flipped:
            word = faulty_next.get(reg, golden_next[reg])
            faulty_next[reg] = word ^ (1 << bit)

        return TransientResult(
            flipped_bits=flipped,
            faulty_next_state=faulty_next,
            golden_next_state=golden_next,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _seed_pulses(self, injection: TransientInjection) -> Dict[int, List[Pulse]]:
        pulses: Dict[int, List[Pulse]] = {}
        for nid, width in injection.gate_pulses.items():
            node = self.netlist.node(nid)
            if not node.kind.is_combinational:
                continue  # strikes on non-gates handled via struck_dffs
            if width < self.timing.min_pulse_ps:
                continue
            # The transient appears at the struck gate's output once the
            # strike has happened and the gate has settled.
            start = max(injection.strike_time_ps, self._arrival[nid])
            pulses.setdefault(nid, []).append(Pulse(start, width))
        return pulses

    def _propagate(self, values: NodeValues, pulses: Dict[int, List[Pulse]]) -> None:
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            incoming: List[Pulse] = []
            for pin, f in enumerate(node.fanins):
                if f not in pulses:
                    continue
                in_vals = [int(values[x]) for x in node.fanins]
                if not gate_sensitized(node.kind, in_vals, pin):
                    continue  # logical masking
                delay = self.timing.gate_delay(node.kind)
                for pulse in pulses[f]:
                    width = self.timing.attenuate(pulse.width_ps)
                    if width <= 0:
                        continue  # electrical masking
                    incoming.append(Pulse(pulse.start_ps + delay, width))
            if incoming:
                merged = _merge_pulses(incoming)
                existing = pulses.get(nid, [])
                pulses[nid] = _merge_pulses(existing + merged)[
                    : self.max_pulses_per_node
                ]

    def _pin_sensitized(self, baseline: CycleBaseline, node, pin: int) -> bool:
        """Memoized :func:`gate_sensitized` on the baseline node values."""
        key = (node.nid, pin)
        verdict = baseline.sensitized.get(key)
        if verdict is None:
            in_vals = [int(baseline.values[x]) for x in node.fanins]
            verdict = gate_sensitized(node.kind, in_vals, pin)
            baseline.sensitized[key] = verdict
        return verdict

    def _reachable_by_sample(
        self,
        baseline: CycleBaseline,
        per_sample: Sequence[Dict[int, List[Pulse]]],
    ) -> List[List[int]]:
        """Per-sample pulse-reachable node lists, in topological order.

        Packs the batch into ``uint64`` lane words (sample ``b`` is bit
        ``b % 64`` of word ``b // 64``) and ORs the words through every
        sensitized pin in one topological sweep.  Attenuation is ignored,
        so the result is a sound over-approximation of where each sample's
        pulses can live: restricting the exact scalar propagation to a
        sample's reached nodes cannot change its outcome.
        """
        reached: List[List[int]] = [[] for _ in per_sample]
        n_words = (len(per_sample) + _LANE_BITS - 1) // _LANE_BITS
        lanes = np.zeros((len(self.netlist), n_words), dtype=np.uint64)
        seeded = False
        for b, pulses in enumerate(per_sample):
            if not pulses:
                continue
            seeded = True
            word, bit = divmod(b, _LANE_BITS)
            mask = np.uint64(1 << bit)
            for nid in pulses:
                lanes[nid, word] |= mask
        if not seeded:
            return reached
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            acc = None
            for pin, f in enumerate(node.fanins):
                words = lanes[f]
                if not words.any():
                    continue
                if not self._pin_sensitized(baseline, node, pin):
                    continue  # logical masking kills every lane at this pin
                acc = words if acc is None else (acc | words)
            if acc is not None:
                lanes[nid] |= acc
            row = lanes[nid]
            if row.any():
                packed = int.from_bytes(row.tobytes(), "little")
                while packed:
                    low = packed & -packed
                    reached[low.bit_length() - 1].append(nid)
                    packed ^= low
        return reached

    def _propagate_pruned(
        self,
        baseline: CycleBaseline,
        pulses: Dict[int, List[Pulse]],
        topo_reached: List[int],
    ) -> None:
        """Exact scalar propagation restricted to one sample's reached nodes.

        The per-node body replicates :meth:`_propagate` exactly — same
        (pin, fanin) order, attenuation, merge, and truncation — so the
        resulting pulse sets are bit-identical to the unpruned sweep.
        """
        for nid in topo_reached:
            node = self.netlist.node(nid)
            incoming: List[Pulse] = []
            for pin, f in enumerate(node.fanins):
                if f not in pulses:
                    continue
                if not self._pin_sensitized(baseline, node, pin):
                    continue  # logical masking
                delay = self.timing.gate_delay(node.kind)
                for pulse in pulses[f]:
                    width = self.timing.attenuate(pulse.width_ps)
                    if width <= 0:
                        continue  # electrical masking
                    incoming.append(Pulse(pulse.start_ps + delay, width))
            if incoming:
                merged = _merge_pulses(incoming)
                existing = pulses.get(nid, [])
                pulses[nid] = _merge_pulses(existing + merged)[
                    : self.max_pulses_per_node
                ]

    def _latch_batch(
        self, per_sample: Sequence[Dict[int, List[Pulse]]]
    ) -> Tuple[List[Set[Tuple[str, int]]], List[int]]:
        """Batched latch-window classification across every sample.

        Flattens all surviving D-pin pulses into one array pair and makes
        a single vectorized :meth:`TimingModel.latch_hits` call; a DFF
        counts as latched for a sample when any of that sample's pulses
        at its D pin hits the window — exactly :meth:`_latch`.
        """
        flipped: List[Set[Tuple[str, int]]] = [set() for _ in per_sample]
        latched = [0] * len(per_sample)
        starts: List[float] = []
        widths: List[float] = []
        owners: List[Tuple[int, int]] = []
        for b, pulses in enumerate(per_sample):
            if not pulses:
                continue
            for di, node in enumerate(self._dffs):
                for pulse in pulses.get(node.fanins[0], ()):
                    starts.append(pulse.start_ps)
                    widths.append(pulse.width_ps)
                    owners.append((b, di))
        if starts:
            hits = self.timing.latch_hits(starts, widths)
            seen: Set[Tuple[int, int]] = set()
            for i in np.nonzero(hits)[0]:
                owner = owners[i]
                if owner in seen:
                    continue  # one latch per (sample, DFF), like _latch
                seen.add(owner)
                b, di = owner
                latched[b] += 1
                node = self._dffs[di]
                if node.register is not None and node.bit is not None:
                    flipped[b].add((node.register, node.bit))
        return flipped, latched

    # ------------------------------------------------------------------
    # columnar (multi-lane) exact propagation
    # ------------------------------------------------------------------
    def _simulate_columnar(
        self, baseline: CycleBaseline, per_sample: Sequence[Dict[int, List[Pulse]]]
    ) -> Tuple[List[Set[Tuple[str, int]]], List[int]]:
        """Exact propagation + latching for the whole batch in one sweep.

        The pulse population lives in a columnar store: per node, three
        parallel arrays ``(starts, widths, owners)`` sorted by (owner,
        start) — each owner's slice is exactly the pulse list the scalar
        path would hold at that node.
        """
        store: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        seeds: Dict[int, Tuple[List[float], List[float], List[int]]] = {}
        for b, pulses in enumerate(per_sample):
            for nid, plist in pulses.items():
                ss, ww, oo = seeds.setdefault(nid, ([], [], []))
                for pulse in plist:
                    ss.append(pulse.start_ps)
                    ww.append(pulse.width_ps)
                    oo.append(b)
        for nid, (ss, ww, oo) in seeds.items():
            store[nid] = (
                np.asarray(ss, dtype=np.float64),
                np.asarray(ww, dtype=np.float64),
                np.asarray(oo, dtype=np.int64),
            )
        if store:
            self._propagate_columnar(
                baseline, store, self._union_reachable(baseline, set(store))
            )
        return self._latch_columnar(store, len(per_sample))

    def _union_reachable(
        self, baseline: CycleBaseline, seeded: Set[int]
    ) -> List[int]:
        """Topo-ordered nodes reachable from any seed via sensitized pins.

        The union over samples of the per-sample reachability the lane
        pre-pass computes — one boolean per node suffices here because
        the columnar sweep carries the owner lane in the pulse arrays.
        """
        reach = bytearray(len(self.netlist))
        for nid in seeded:
            reach[nid] = 1
        out: List[int] = []
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            hit = reach[nid]
            if not hit:
                for pin, f in enumerate(node.fanins):
                    if reach[f] and self._pin_sensitized(baseline, node, pin):
                        hit = 1
                        break
                reach[nid] = hit
            if hit:
                out.append(nid)
        return out

    def _propagate_columnar(
        self,
        baseline: CycleBaseline,
        store: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]],
        topo_nodes: List[int],
    ) -> None:
        """One exact topological sweep over the whole batch's pulses.

        Per node, the incoming pulses of *every* owner are gathered from
        the sensitized fanins, delayed and attenuated with vectorized
        float64 arithmetic (bit-identical to the scalar ops), and merged
        per owner by :meth:`_merge_columnar`.
        """
        min_pulse = self.timing.min_pulse_ps
        attenuation = self.timing.attenuation_ps
        for nid in topo_nodes:
            node = self.netlist.node(nid)
            pieces = []
            for pin, f in enumerate(node.fanins):
                col = store.get(f)
                if col is None:
                    continue
                if not self._pin_sensitized(baseline, node, pin):
                    continue  # logical masking
                delay = self.timing.gate_delay(node.kind)
                s, w, o = col
                remaining = w - attenuation
                widths = np.where(remaining >= min_pulse, remaining, 0.0)
                keep = widths > 0  # electrical masking
                if keep.any():
                    pieces.append((s[keep] + delay, widths[keep], o[keep]))
            if not pieces:
                continue
            in_s = np.concatenate([p[0] for p in pieces])
            in_w = np.concatenate([p[1] for p in pieces])
            in_o = np.concatenate([p[2] for p in pieces])
            store[nid] = self._merge_columnar(store.get(nid), in_s, in_w, in_o)

    def _merge_columnar(
        self,
        existing: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        in_s: np.ndarray,
        in_w: np.ndarray,
        in_o: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-owner double merge replicating the scalar node update.

        The scalar path computes ``_merge_pulses(existing +
        _merge_pulses(incoming))[:max]`` per owner.  ``_merge_pulses``
        with no overlapping intervals is just a stable sort, so the
        common case is handled entirely with lexsorts; an owner whose
        intervals actually touch falls back to the scalar merge on its
        own pulses (in the scalar arrival order), preserving
        bit-identity including the float round-trip of interval
        extension.
        """
        # Stage 1: incoming per owner, sorted by start, stable on arrival.
        order = np.lexsort((np.arange(len(in_s)), in_s, in_o))
        s1, w1, o1 = in_s[order], in_w[order], in_o[order]
        dirty: Set[int] = set()
        if len(s1) > 1:
            same = o1[1:] == o1[:-1]
            overlap = same & (s1[1:] <= s1[:-1] + w1[:-1])
            dirty.update(int(b) for b in np.unique(o1[1:][overlap]))
        # Stage 2: existing before merged-incoming on equal starts.
        if existing is not None:
            es, ew, eo = existing
            s2 = np.concatenate([es, s1])
            w2 = np.concatenate([ew, w1])
            o2 = np.concatenate([eo, o1])
            order2 = np.lexsort((np.arange(len(s2)), s2, o2))
            s2, w2, o2 = s2[order2], w2[order2], o2[order2]
        else:
            s2, w2, o2 = s1, w1, o1
        if len(s2) > 1:
            same = o2[1:] == o2[:-1]
            overlap = same & (s2[1:] <= s2[:-1] + w2[:-1])
            dirty.update(int(b) for b in np.unique(o2[1:][overlap]))
        if dirty:
            clean = ~np.isin(o2, np.fromiter(dirty, dtype=np.int64))
            parts_s = [s2[clean]]
            parts_w = [w2[clean]]
            parts_o = [o2[clean]]
            for b in sorted(dirty):
                mask_in = in_o == b
                incoming = [
                    Pulse(s, w) for s, w in zip(in_s[mask_in], in_w[mask_in])
                ]
                before: List[Pulse] = []
                if existing is not None:
                    mask_ex = eo == b
                    before = [
                        Pulse(s, w) for s, w in zip(es[mask_ex], ew[mask_ex])
                    ]
                merged = _merge_pulses(before + _merge_pulses(incoming))[
                    : self.max_pulses_per_node
                ]
                parts_s.append(np.array([p.start_ps for p in merged]))
                parts_w.append(np.array([p.width_ps for p in merged]))
                parts_o.append(np.full(len(merged), b, dtype=np.int64))
            s2 = np.concatenate(parts_s)
            w2 = np.concatenate(parts_w)
            o2 = np.concatenate(parts_o)
            # Owners are disjoint between the clean part and the fallback
            # parts, and each part is internally ordered, so a stable
            # owner sort restores the (owner, start) invariant.
            order3 = np.argsort(o2, kind="stable")
            s2, w2, o2 = s2[order3], w2[order3], o2[order3]
        # Per-owner truncation to the first max_pulses_per_node intervals
        # (fallback owners are already truncated; position < max holds).
        if len(s2):
            new_group = np.concatenate(([True], o2[1:] != o2[:-1]))
            boundaries = np.flatnonzero(new_group)
            group_id = np.cumsum(new_group) - 1
            position = np.arange(len(o2)) - boundaries[group_id]
            keep = position < self.max_pulses_per_node
            if not keep.all():
                s2, w2, o2 = s2[keep], w2[keep], o2[keep]
        return s2, w2, o2

    def _latch_columnar(
        self,
        store: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]],
        n_samples: int,
    ) -> Tuple[List[Set[Tuple[str, int]]], List[int]]:
        """Latch-window classification over the columnar pulse store.

        Same contract as :meth:`_latch_batch`: one vectorized
        ``latch_hits`` call, one latch per (sample, DFF) however many
        pulses hit its window.
        """
        flipped: List[Set[Tuple[str, int]]] = [set() for _ in range(n_samples)]
        latched = [0] * n_samples
        starts_parts: List[np.ndarray] = []
        widths_parts: List[np.ndarray] = []
        owner_parts: List[np.ndarray] = []
        dff_parts: List[np.ndarray] = []
        for di, node in enumerate(self._dffs):
            col = store.get(node.fanins[0])
            if col is None:
                continue
            s, w, o = col
            starts_parts.append(s)
            widths_parts.append(w)
            owner_parts.append(o)
            dff_parts.append(np.full(len(o), di, dtype=np.int64))
        if not starts_parts:
            return flipped, latched
        hits = self.timing.latch_hits(
            np.concatenate(starts_parts), np.concatenate(widths_parts)
        )
        owners = np.concatenate(owner_parts)[hits]
        dffs = np.concatenate(dff_parts)[hits]
        for key in np.unique(owners * len(self._dffs) + dffs):
            b, di = divmod(int(key), len(self._dffs))
            latched[b] += 1
            node = self._dffs[di]
            if node.register is not None and node.bit is not None:
                flipped[b].add((node.register, node.bit))
        return flipped, latched

    def _latch(
        self, values: NodeValues, pulses: Dict[int, List[Pulse]]
    ) -> Tuple[Set[Tuple[str, int]], int]:
        lo, hi = self.timing.latch_window
        flipped: Set[Tuple[str, int]] = set()
        n_latched = 0
        for node in self.netlist.nodes:
            if not node.is_dff or not node.fanins:
                continue
            d_pin = node.fanins[0]
            if d_pin not in pulses:
                continue
            if any(p.overlaps(lo, hi) for p in pulses[d_pin]):
                n_latched += 1
                if node.register is not None and node.bit is not None:
                    flipped.add((node.register, node.bit))
        return flipped, n_latched


def _merge_pulses(pulses: Sequence[Pulse]) -> List[Pulse]:
    """Coalesce overlapping pulses at one node into maximal intervals."""
    if not pulses:
        return []
    ordered = sorted(pulses, key=lambda p: p.start_ps)
    merged: List[Pulse] = [ordered[0]]
    for pulse in ordered[1:]:
        last = merged[-1]
        if pulse.start_ps <= last.end_ps:
            end = max(last.end_ps, pulse.end_ps)
            merged[-1] = Pulse(last.start_ps, end - last.start_ps)
        else:
            merged.append(pulse)
    return merged
