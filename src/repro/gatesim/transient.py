"""Voltage-transient injection, propagation, and latching.

Implements the gate-level half of the cross-level flow (Section 5.3):

1. the attack model hands over a set of impacted gates with initial pulse
   widths (and, for direct hits on flip-flops, state flips);
2. pulses propagate through the combinational network in topological order,
   subject to **logical masking** (a pulse only passes a gate whose side
   inputs sensitize the struck pin) and **electrical masking** (width
   attenuation per stage);
3. every pulse arriving at a DFF data pin that overlaps the setup/hold
   window is latched, flipping that register bit's next state.

The result is the set of faulty register bits at the end of the fault
injection cycle, which the engine writes back into the RTL simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.gatesim.logic import LogicEvaluator, NodeValues
from repro.gatesim.timing import TimingModel
from repro.netlist.cells import GateKind, gate_sensitized
from repro.netlist.graph import Netlist


@dataclass(frozen=True)
class Pulse:
    """One voltage transient at a node output: [start, start + width)."""

    start_ps: float
    width_ps: float

    @property
    def end_ps(self) -> float:
        return self.start_ps + self.width_ps

    def overlaps(self, lo: float, hi: float) -> bool:
        return self.start_ps < hi and self.end_ps > lo


@dataclass
class TransientInjection:
    """What the attack deposits into the circuit in the injection cycle.

    ``gate_pulses`` maps combinational-node ids to initial pulse widths;
    ``struck_dffs`` lists flip-flop node ids whose stored state the strike
    flips directly (attack on sequential elements).
    """

    gate_pulses: Dict[int, float] = field(default_factory=dict)
    struck_dffs: List[int] = field(default_factory=list)
    strike_time_ps: float = 0.0


@dataclass
class TransientResult:
    """Outcome of one injection-cycle gate-level simulation."""

    # (register name, bit index) whose *latched next state* flipped.
    flipped_bits: Set[Tuple[str, int]]
    # Faulty next-state words per register (fault-free registers omitted).
    faulty_next_state: Dict[str, int]
    # Fault-free next state of every register, for reference.
    golden_next_state: Dict[str, int]
    # How many pulses were generated / survived to a D pin.
    n_pulses_injected: int = 0
    n_pulses_latched: int = 0

    @property
    def any_fault(self) -> bool:
        return bool(self.flipped_bits)

    def flipped_registers(self) -> Set[str]:
        return {reg for reg, _bit in self.flipped_bits}


class TransientSimulator:
    """Propagates transients through one clock cycle of a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        timing: Optional[TimingModel] = None,
        max_pulses_per_node: int = 8,
    ):
        self.netlist = netlist
        self.timing = timing or TimingModel()
        self.evaluator = LogicEvaluator(netlist)
        self.max_pulses_per_node = max_pulses_per_node
        self._arrival = self._compute_arrival_times()

    def _compute_arrival_times(self) -> List[float]:
        """Static settle time of each node output within a cycle."""
        arrival = [0.0] * len(self.netlist)
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            delay = self.timing.gate_delay(node.kind)
            arrival[nid] = delay + max(self._safe_arrival(arrival, f) for f in node.fanins)
        return arrival

    @staticmethod
    def _safe_arrival(arrival: List[float], nid: int) -> float:
        return arrival[nid]

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def simulate_cycle(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int],
        injection: TransientInjection,
    ) -> TransientResult:
        """Run the fault injection cycle.

        ``inputs``/``state`` are the word-level stimulus and register state
        at the start of the cycle (provided by the RTL simulation).
        """
        values = self.evaluator.evaluate(inputs, state)
        golden_next = self.evaluator.next_state(values)

        pulses = self._seed_pulses(injection)
        n_injected = sum(len(p) for p in pulses.values())
        self._propagate(values, pulses)
        flipped, n_latched = self._latch(values, pulses)

        # Direct strikes on flip-flops flip the bit the flop will hold next
        # cycle (the strike corrupts the storage node).
        for dff_id in injection.struck_dffs:
            node = self.netlist.node(dff_id)
            if not node.is_dff:
                raise SimulationError(f"struck node {dff_id} is not a DFF")
            if node.register is None or node.bit is None:
                raise SimulationError(f"struck DFF {dff_id} has no register identity")
            key = (node.register, node.bit)
            if key in flipped:
                flipped.discard(key)  # double flip cancels
            else:
                flipped.add(key)

        faulty_next: Dict[str, int] = {}
        for reg, bit in flipped:
            word = faulty_next.get(reg, golden_next[reg])
            faulty_next[reg] = word ^ (1 << bit)

        return TransientResult(
            flipped_bits=flipped,
            faulty_next_state=faulty_next,
            golden_next_state=golden_next,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _seed_pulses(self, injection: TransientInjection) -> Dict[int, List[Pulse]]:
        pulses: Dict[int, List[Pulse]] = {}
        for nid, width in injection.gate_pulses.items():
            node = self.netlist.node(nid)
            if not node.kind.is_combinational:
                continue  # strikes on non-gates handled via struck_dffs
            if width < self.timing.min_pulse_ps:
                continue
            # The transient appears at the struck gate's output once the
            # strike has happened and the gate has settled.
            start = max(injection.strike_time_ps, self._arrival[nid])
            pulses.setdefault(nid, []).append(Pulse(start, width))
        return pulses

    def _propagate(self, values: NodeValues, pulses: Dict[int, List[Pulse]]) -> None:
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            incoming: List[Pulse] = []
            for pin, f in enumerate(node.fanins):
                if f not in pulses:
                    continue
                in_vals = [int(values[x]) for x in node.fanins]
                if not gate_sensitized(node.kind, in_vals, pin):
                    continue  # logical masking
                delay = self.timing.gate_delay(node.kind)
                for pulse in pulses[f]:
                    width = self.timing.attenuate(pulse.width_ps)
                    if width <= 0:
                        continue  # electrical masking
                    incoming.append(Pulse(pulse.start_ps + delay, width))
            if incoming:
                merged = _merge_pulses(incoming)
                existing = pulses.get(nid, [])
                pulses[nid] = _merge_pulses(existing + merged)[
                    : self.max_pulses_per_node
                ]

    def _latch(
        self, values: NodeValues, pulses: Dict[int, List[Pulse]]
    ) -> Tuple[Set[Tuple[str, int]], int]:
        lo, hi = self.timing.latch_window
        flipped: Set[Tuple[str, int]] = set()
        n_latched = 0
        for node in self.netlist.nodes:
            if not node.is_dff or not node.fanins:
                continue
            d_pin = node.fanins[0]
            if d_pin not in pulses:
                continue
            if any(p.overlaps(lo, hi) for p in pulses[d_pin]):
                n_latched += 1
                if node.register is not None and node.bit is not None:
                    flipped.add((node.register, node.bit))
        return flipped, n_latched


def _merge_pulses(pulses: Sequence[Pulse]) -> List[Pulse]:
    """Coalesce overlapping pulses at one node into maximal intervals."""
    if not pulses:
        return []
    ordered = sorted(pulses, key=lambda p: p.start_ps)
    merged: List[Pulse] = [ordered[0]]
    for pulse in ordered[1:]:
        last = merged[-1]
        if pulse.start_ps <= last.end_ps:
            end = max(last.end_ps, pulse.end_ps)
            merged[-1] = Pulse(last.start_ps, end - last.start_ps)
        else:
            merged.append(pulse)
    return merged
