"""Voltage-transient injection, propagation, and latching.

Implements the gate-level half of the cross-level flow (Section 5.3):

1. the attack model hands over a set of impacted gates with initial pulse
   widths (and, for direct hits on flip-flops, state flips);
2. pulses propagate through the combinational network in topological order,
   subject to **logical masking** (a pulse only passes a gate whose side
   inputs sensitize the struck pin) and **electrical masking** (width
   attenuation per stage);
3. every pulse arriving at a DFF data pin that overlaps the setup/hold
   window is latched, flipping that register bit's next state.

The result is the set of faulty register bits at the end of the fault
injection cycle, which the engine writes back into the RTL simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gatesim.logic import LogicEvaluator, NodeValues
from repro.gatesim.timing import TimingModel
from repro.netlist.cells import GateKind, gate_sensitized
from repro.netlist.graph import Netlist

#: Samples per lane word in the batched kernel (one uint64 = 64 lanes).
_LANE_BITS = 64


@dataclass(frozen=True)
class Pulse:
    """One voltage transient at a node output: [start, start + width)."""

    start_ps: float
    width_ps: float

    @property
    def end_ps(self) -> float:
        return self.start_ps + self.width_ps

    def overlaps(self, lo: float, hi: float) -> bool:
        return self.start_ps < hi and self.end_ps > lo


@dataclass
class TransientInjection:
    """What the attack deposits into the circuit in the injection cycle.

    ``gate_pulses`` maps combinational-node ids to initial pulse widths;
    ``struck_dffs`` lists flip-flop node ids whose stored state the strike
    flips directly (attack on sequential elements).
    """

    gate_pulses: Dict[int, float] = field(default_factory=dict)
    struck_dffs: List[int] = field(default_factory=list)
    strike_time_ps: float = 0.0


@dataclass
class TransientResult:
    """Outcome of one injection-cycle gate-level simulation."""

    # (register name, bit index) whose *latched next state* flipped.
    flipped_bits: Set[Tuple[str, int]]
    # Faulty next-state words per register (fault-free registers omitted).
    faulty_next_state: Dict[str, int]
    # Fault-free next state of every register, for reference.
    golden_next_state: Dict[str, int]
    # How many pulses were generated / survived to a D pin.
    n_pulses_injected: int = 0
    n_pulses_latched: int = 0

    @property
    def any_fault(self) -> bool:
        return bool(self.flipped_bits)

    def flipped_registers(self) -> Set[str]:
        return {reg for reg, _bit in self.flipped_bits}


@dataclass
class CycleBaseline:
    """Sample-independent gate-level state of one injection cycle.

    Everything here is a pure function of ``(inputs, state)`` — the golden
    stimulus of the cycle — and therefore shared by every sample injected
    into that cycle: the settled node values, the fault-free next state,
    and a lazily-filled memo of per-(node, pin) sensitization verdicts
    (logical masking depends only on the baseline side-input values, never
    on the injected pulses).  Built once per (injection cycle, cone) by
    :meth:`TransientSimulator.make_baseline` and cached at the engine
    level, so batched evaluation computes golden logic values once per
    cycle instead of once per sample.
    """

    values: NodeValues
    golden_next: Dict[str, int]
    sensitized: Dict[Tuple[int, int], bool] = field(default_factory=dict)


class TransientSimulator:
    """Propagates transients through one clock cycle of a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        timing: Optional[TimingModel] = None,
        max_pulses_per_node: int = 8,
    ):
        self.netlist = netlist
        self.timing = timing or TimingModel()
        self.evaluator = LogicEvaluator(netlist)
        self.max_pulses_per_node = max_pulses_per_node
        self._arrival = self._compute_arrival_times()
        self._dffs = [n for n in netlist.nodes if n.is_dff and n.fanins]

    def _compute_arrival_times(self) -> List[float]:
        """Static settle time of each node output within a cycle."""
        arrival = [0.0] * len(self.netlist)
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            delay = self.timing.gate_delay(node.kind)
            arrival[nid] = delay + max(self._safe_arrival(arrival, f) for f in node.fanins)
        return arrival

    @staticmethod
    def _safe_arrival(arrival: List[float], nid: int) -> float:
        return arrival[nid]

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def simulate_cycle(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int],
        injection: TransientInjection,
    ) -> TransientResult:
        """Run the fault injection cycle.

        ``inputs``/``state`` are the word-level stimulus and register state
        at the start of the cycle (provided by the RTL simulation).
        """
        values = self.evaluator.evaluate(inputs, state)
        golden_next = self.evaluator.next_state(values)

        pulses = self._seed_pulses(injection)
        n_injected = sum(len(p) for p in pulses.values())
        self._propagate(values, pulses)
        flipped, n_latched = self._latch(values, pulses)
        return self._finish_cycle(
            injection, flipped, golden_next, n_injected, n_latched
        )

    def make_baseline(
        self, inputs: Mapping[str, int], state: Mapping[str, int]
    ) -> CycleBaseline:
        """Evaluate the golden logic of one cycle for reuse across samples."""
        values = self.evaluator.evaluate(inputs, state)
        return CycleBaseline(
            values=values, golden_next=self.evaluator.next_state(values)
        )

    def simulate_cycle_batch(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int],
        injections: Sequence[TransientInjection],
        baseline: Optional[CycleBaseline] = None,
    ) -> List[TransientResult]:
        """Run the injection cycle for a batch of same-cycle samples.

        Bit-identical to calling :meth:`simulate_cycle` once per
        injection, but the shared work is done once: the golden evaluation
        and sensitization verdicts come from ``baseline`` (built here when
        not supplied), a ``uint64`` lane-reachability pre-pass prunes each
        sample's propagation to the nodes its pulses can actually reach,
        and latch-window classification is one vectorized check over every
        surviving D-pin pulse in the batch.
        """
        if baseline is None:
            baseline = self.make_baseline(inputs, state)
        per_sample = [self._seed_pulses(inj) for inj in injections]
        n_injected = [sum(len(p) for p in ps.values()) for ps in per_sample]
        reached = self._reachable_by_sample(baseline, per_sample)
        for pulses, topo_reached in zip(per_sample, reached):
            if pulses:
                self._propagate_pruned(baseline, pulses, topo_reached)
        flipped_sets, latched_counts = self._latch_batch(per_sample)
        return [
            self._finish_cycle(
                inj,
                flipped_sets[b],
                baseline.golden_next,
                n_injected[b],
                latched_counts[b],
            )
            for b, inj in enumerate(injections)
        ]

    def _finish_cycle(
        self,
        injection: TransientInjection,
        flipped: Set[Tuple[str, int]],
        golden_next: Dict[str, int],
        n_injected: int,
        n_latched: int,
    ) -> TransientResult:
        # Direct strikes on flip-flops flip the bit the flop will hold next
        # cycle (the strike corrupts the storage node).
        for dff_id in injection.struck_dffs:
            node = self.netlist.node(dff_id)
            if not node.is_dff:
                raise SimulationError(f"struck node {dff_id} is not a DFF")
            if node.register is None or node.bit is None:
                raise SimulationError(f"struck DFF {dff_id} has no register identity")
            key = (node.register, node.bit)
            if key in flipped:
                flipped.discard(key)  # double flip cancels
            else:
                flipped.add(key)

        faulty_next: Dict[str, int] = {}
        for reg, bit in flipped:
            word = faulty_next.get(reg, golden_next[reg])
            faulty_next[reg] = word ^ (1 << bit)

        return TransientResult(
            flipped_bits=flipped,
            faulty_next_state=faulty_next,
            golden_next_state=golden_next,
            n_pulses_injected=n_injected,
            n_pulses_latched=n_latched,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _seed_pulses(self, injection: TransientInjection) -> Dict[int, List[Pulse]]:
        pulses: Dict[int, List[Pulse]] = {}
        for nid, width in injection.gate_pulses.items():
            node = self.netlist.node(nid)
            if not node.kind.is_combinational:
                continue  # strikes on non-gates handled via struck_dffs
            if width < self.timing.min_pulse_ps:
                continue
            # The transient appears at the struck gate's output once the
            # strike has happened and the gate has settled.
            start = max(injection.strike_time_ps, self._arrival[nid])
            pulses.setdefault(nid, []).append(Pulse(start, width))
        return pulses

    def _propagate(self, values: NodeValues, pulses: Dict[int, List[Pulse]]) -> None:
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            incoming: List[Pulse] = []
            for pin, f in enumerate(node.fanins):
                if f not in pulses:
                    continue
                in_vals = [int(values[x]) for x in node.fanins]
                if not gate_sensitized(node.kind, in_vals, pin):
                    continue  # logical masking
                delay = self.timing.gate_delay(node.kind)
                for pulse in pulses[f]:
                    width = self.timing.attenuate(pulse.width_ps)
                    if width <= 0:
                        continue  # electrical masking
                    incoming.append(Pulse(pulse.start_ps + delay, width))
            if incoming:
                merged = _merge_pulses(incoming)
                existing = pulses.get(nid, [])
                pulses[nid] = _merge_pulses(existing + merged)[
                    : self.max_pulses_per_node
                ]

    def _pin_sensitized(self, baseline: CycleBaseline, node, pin: int) -> bool:
        """Memoized :func:`gate_sensitized` on the baseline node values."""
        key = (node.nid, pin)
        verdict = baseline.sensitized.get(key)
        if verdict is None:
            in_vals = [int(baseline.values[x]) for x in node.fanins]
            verdict = gate_sensitized(node.kind, in_vals, pin)
            baseline.sensitized[key] = verdict
        return verdict

    def _reachable_by_sample(
        self,
        baseline: CycleBaseline,
        per_sample: Sequence[Dict[int, List[Pulse]]],
    ) -> List[List[int]]:
        """Per-sample pulse-reachable node lists, in topological order.

        Packs the batch into ``uint64`` lane words (sample ``b`` is bit
        ``b % 64`` of word ``b // 64``) and ORs the words through every
        sensitized pin in one topological sweep.  Attenuation is ignored,
        so the result is a sound over-approximation of where each sample's
        pulses can live: restricting the exact scalar propagation to a
        sample's reached nodes cannot change its outcome.
        """
        reached: List[List[int]] = [[] for _ in per_sample]
        n_words = (len(per_sample) + _LANE_BITS - 1) // _LANE_BITS
        lanes = np.zeros((len(self.netlist), n_words), dtype=np.uint64)
        seeded = False
        for b, pulses in enumerate(per_sample):
            if not pulses:
                continue
            seeded = True
            word, bit = divmod(b, _LANE_BITS)
            mask = np.uint64(1 << bit)
            for nid in pulses:
                lanes[nid, word] |= mask
        if not seeded:
            return reached
        for nid in self.netlist.topo_order():
            node = self.netlist.node(nid)
            acc = None
            for pin, f in enumerate(node.fanins):
                words = lanes[f]
                if not words.any():
                    continue
                if not self._pin_sensitized(baseline, node, pin):
                    continue  # logical masking kills every lane at this pin
                acc = words if acc is None else (acc | words)
            if acc is not None:
                lanes[nid] |= acc
            row = lanes[nid]
            if row.any():
                packed = int.from_bytes(row.tobytes(), "little")
                while packed:
                    low = packed & -packed
                    reached[low.bit_length() - 1].append(nid)
                    packed ^= low
        return reached

    def _propagate_pruned(
        self,
        baseline: CycleBaseline,
        pulses: Dict[int, List[Pulse]],
        topo_reached: List[int],
    ) -> None:
        """Exact scalar propagation restricted to one sample's reached nodes.

        The per-node body replicates :meth:`_propagate` exactly — same
        (pin, fanin) order, attenuation, merge, and truncation — so the
        resulting pulse sets are bit-identical to the unpruned sweep.
        """
        for nid in topo_reached:
            node = self.netlist.node(nid)
            incoming: List[Pulse] = []
            for pin, f in enumerate(node.fanins):
                if f not in pulses:
                    continue
                if not self._pin_sensitized(baseline, node, pin):
                    continue  # logical masking
                delay = self.timing.gate_delay(node.kind)
                for pulse in pulses[f]:
                    width = self.timing.attenuate(pulse.width_ps)
                    if width <= 0:
                        continue  # electrical masking
                    incoming.append(Pulse(pulse.start_ps + delay, width))
            if incoming:
                merged = _merge_pulses(incoming)
                existing = pulses.get(nid, [])
                pulses[nid] = _merge_pulses(existing + merged)[
                    : self.max_pulses_per_node
                ]

    def _latch_batch(
        self, per_sample: Sequence[Dict[int, List[Pulse]]]
    ) -> Tuple[List[Set[Tuple[str, int]]], List[int]]:
        """Batched latch-window classification across every sample.

        Flattens all surviving D-pin pulses into one array pair and makes
        a single vectorized :meth:`TimingModel.latch_hits` call; a DFF
        counts as latched for a sample when any of that sample's pulses
        at its D pin hits the window — exactly :meth:`_latch`.
        """
        flipped: List[Set[Tuple[str, int]]] = [set() for _ in per_sample]
        latched = [0] * len(per_sample)
        starts: List[float] = []
        widths: List[float] = []
        owners: List[Tuple[int, int]] = []
        for b, pulses in enumerate(per_sample):
            if not pulses:
                continue
            for di, node in enumerate(self._dffs):
                for pulse in pulses.get(node.fanins[0], ()):
                    starts.append(pulse.start_ps)
                    widths.append(pulse.width_ps)
                    owners.append((b, di))
        if starts:
            hits = self.timing.latch_hits(starts, widths)
            seen: Set[Tuple[int, int]] = set()
            for i in np.nonzero(hits)[0]:
                owner = owners[i]
                if owner in seen:
                    continue  # one latch per (sample, DFF), like _latch
                seen.add(owner)
                b, di = owner
                latched[b] += 1
                node = self._dffs[di]
                if node.register is not None and node.bit is not None:
                    flipped[b].add((node.register, node.bit))
        return flipped, latched

    def _latch(
        self, values: NodeValues, pulses: Dict[int, List[Pulse]]
    ) -> Tuple[Set[Tuple[str, int]], int]:
        lo, hi = self.timing.latch_window
        flipped: Set[Tuple[str, int]] = set()
        n_latched = 0
        for node in self.netlist.nodes:
            if not node.is_dff or not node.fanins:
                continue
            d_pin = node.fanins[0]
            if d_pin not in pulses:
                continue
            if any(p.overlaps(lo, hi) for p in pulses[d_pin]):
                n_latched += 1
                if node.register is not None and node.bit is not None:
                    flipped.add((node.register, node.bit))
        return flipped, n_latched


def _merge_pulses(pulses: Sequence[Pulse]) -> List[Pulse]:
    """Coalesce overlapping pulses at one node into maximal intervals."""
    if not pulses:
        return []
    ordered = sorted(pulses, key=lambda p: p.start_ps)
    merged: List[Pulse] = [ordered[0]]
    for pulse in ordered[1:]:
        last = merged[-1]
        if pulse.start_ps <= last.end_ps:
            end = max(last.end_ps, pulse.end_ps)
            merged[-1] = Pulse(last.start_ps, end - last.start_ps)
        else:
            merged.append(pulse)
    return merged
