"""Canonical, content-addressed hashing of campaign specs.

Two campaigns with the same hash are guaranteed to produce the same
final estimate (for a fixed code version), so the hash is usable as a
cache key: the evaluation service deduplicates submissions and serves a
finished run's SSF/CI instantly when an identical spec arrives again.

Canonicalization rules (pinned by golden-hash tests):

* every field is serialized explicitly with its effective value, so a
  spec built from defaults hashes identically to one that spells the
  defaults out, and field order never matters (``sort_keys``);
* the MPU ``variant`` string is normalized through
  :meth:`~repro.soc.mpu.MpuVariant.parse` — ``"TMR+PARITY"``,
  ``"tmr+parity"`` and ``"parity+tmr"`` are one variant, and they hash
  as one;
* pure observability/performance knobs that cannot change the estimate
  are *excluded*: ``trace`` (span recording), ``charac_cache`` (a
  memoized pre-characterization is derived deterministically from the
  benchmark + variant, the path only skips recomputation),
  ``calibration`` (likewise: the surrogate model is refitted
  deterministically from the spec seed when the artifact path is
  absent, so the path only skips the fit), ``batch`` (the batched
  kernel is bit-identical to the scalar path, so batched and scalar
  runs of one spec share a cache entry), ``telemetry`` (fleet
  workers' shipped spans/metrics/logs are forced non-deterministic on
  ingest and can never reach the estimator or the deterministic metric
  view), and ``baseline_store`` (a loaded cycle baseline is
  bit-identical to a recomputed one — the store only skips golden
  re-simulation, and stale entries are rejected by fingerprint);
* everything else — including ``seed`` and ``chunk_size``, both of which
  select the per-chunk seed streams and therefore the exact sample
  sequence, and ``engine``/``fidelity``, which swap the evaluation
  backend and hence the sampled estimate — is part of the identity.

The digest is salted with the package version plus a schema version, so
a code upgrade that could change results invalidates every cached entry
instead of silently serving stale estimates.
"""

from __future__ import annotations

import hashlib
import json

from repro.campaign.spec import CampaignSpec

#: Bump when canonicalization rules change (invalidates all cached hashes).
#: v2: ``engine``/``fidelity`` joined the semantic set; ``calibration``
#: joined the excluded set.
HASH_SCHEMA_VERSION = 2

#: Spec fields that cannot affect the campaign's estimate.
NON_SEMANTIC_FIELDS = (
    "trace",
    "charac_cache",
    "calibration",
    "batch",
    "telemetry",
    "baseline_store",
)


def code_version_salt() -> str:
    """Salt folding the code version into every spec hash."""
    import repro

    return f"repro/{repro.__version__}/spec-hash/v{HASH_SCHEMA_VERSION}"


def canonical_spec_dict(spec: CampaignSpec) -> dict:
    """The semantic content of ``spec`` as a plain dict.

    Fields listed in :data:`NON_SEMANTIC_FIELDS` are dropped and the
    countermeasure variant is normalized, so semantically identical
    specs canonicalize identically.
    """
    from repro.soc.mpu import MpuVariant

    data = spec.to_dict()
    for field in NON_SEMANTIC_FIELDS:
        data.pop(field, None)
    data["variant"] = MpuVariant.parse(data["variant"]).name
    return data


def canonical_spec_json(spec: CampaignSpec) -> str:
    """Minified, key-sorted JSON of the canonical spec dict."""
    return json.dumps(
        canonical_spec_dict(spec), sort_keys=True, separators=(",", ":")
    )


def spec_hash(spec: CampaignSpec) -> str:
    """Hex SHA-256 of the salted canonical spec JSON."""
    payload = code_version_salt() + "\n" + canonical_spec_json(spec)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
