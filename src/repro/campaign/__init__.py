"""Campaign orchestration subsystem.

A layer between the Monte Carlo engine and the user that makes SSF
campaigns *operable* at scale:

* :class:`CampaignSpec` — declarative, JSON-serializable description of a
  campaign (benchmark, sampler, seed policy, sharding, stopping rule);
* :class:`RunStore` — durable append-only sample log + checkpoints, so an
  interrupted run resumes exactly (``campaign resume <run-id>``);
* adaptive stopping rules (:mod:`repro.campaign.stopping`) driven by the
  paper's Section 3.3 (ε, δ) convergence bound;
* :class:`WorkStealingScheduler` — dynamic sharding across worker
  processes with straggler-free chunking and early cancellation;
* :class:`CampaignHooks` — progress/telemetry callbacks the CLI renders
  as live convergence status; :class:`ObsHooks` publishes the same events
  into a :class:`repro.obs.MetricsRegistry`.

Everything meets in :class:`CampaignRunner`.
"""

from repro.campaign.hooks import (
    CampaignHooks,
    ConsoleProgress,
    HookChain,
    ObsHooks,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.scheduler import (
    Chunk,
    ChunkResult,
    WorkStealingScheduler,
    chunk_seed_sequence,
)
from repro.campaign.spec import CampaignSpec, StoppingConfig, load_spec
from repro.campaign.spec_hash import (
    canonical_spec_dict,
    canonical_spec_json,
    code_version_salt,
    spec_hash,
)
from repro.campaign.stopping import (
    BoundedRule,
    CiWidthRule,
    FixedSampleRule,
    RiskTargetRule,
    StopDecision,
    StoppingRule,
    build_stopping_rule,
)
from repro.campaign.store import (
    ChunkLogEntry,
    METRICS_FILE,
    PROM_FILE,
    RunStore,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    TRACE_FILE,
    record_from_dict,
    record_to_dict,
)

__all__ = [
    "CampaignHooks",
    "CampaignRunner",
    "CampaignSpec",
    "Chunk",
    "ChunkLogEntry",
    "ChunkResult",
    "ConsoleProgress",
    "HookChain",
    "ObsHooks",
    "RunStore",
    "StoppingConfig",
    "StopDecision",
    "StoppingRule",
    "FixedSampleRule",
    "RiskTargetRule",
    "CiWidthRule",
    "BoundedRule",
    "WorkStealingScheduler",
    "build_stopping_rule",
    "canonical_spec_dict",
    "canonical_spec_json",
    "chunk_seed_sequence",
    "code_version_salt",
    "load_spec",
    "spec_hash",
    "record_from_dict",
    "record_to_dict",
    "STATUS_COMPLETE",
    "STATUS_INTERRUPTED",
    "STATUS_RUNNING",
    "METRICS_FILE",
    "PROM_FILE",
    "TRACE_FILE",
]
