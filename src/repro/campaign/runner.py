"""Campaign orchestration: spec → scheduler → durable store → result.

The runner owns the deterministic part of a campaign.  Chunks may finish
in any order (work stealing), but they are *consumed* — logged, merged
into the Welford estimator, and fed to the stopping rule — strictly in
chunk-index order via a reorder buffer.  Consequences:

* the final estimate is a pure function of (spec, chunk plan), independent
  of worker count and scheduling order;
* the durable log is always a contiguous chunk prefix, so resuming after
  a crash replays the exact same estimator state and continues with the
  first unconsumed chunk — an interrupted-and-resumed campaign returns
  bit-identical results to an uninterrupted one;
* the stopping rule sees the same estimator sequence every time, so the
  stop point is reproducible too.  Chunks that completed out of order
  past the stop point are discarded, never logged.

Observability rides the same consumption order: each chunk's serialized
metrics snapshot (recorded by the worker's engine, or rebuilt from its
records when absent) is merged into the runner's registry in chunk-index
order, so the merged metrics inherit every determinism guarantee above —
1 worker or 8, uninterrupted or SIGKILL-resumed, the deterministic subset
is identical.  The merged registry is exported to ``metrics.jsonl`` /
``metrics.prom`` in the run directory at every checkpoint; a recording
tracer additionally captures runner/scheduler spans (chunk dispatch,
steal, merge, checkpoint fsync) exported as Chrome ``trace.json``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.campaign.hooks import CampaignHooks, HookChain, ObsHooks
from repro.campaign.scheduler import Chunk, ChunkResult, WorkStealingScheduler
from repro.campaign.spec import CampaignSpec
from repro.campaign.stopping import StopDecision, build_stopping_rule
from repro.campaign.store import (
    RunStore,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
)
from repro.core.results import CampaignResult, SampleRecord
from repro.errors import EvaluationError
from repro.obs.engine_metrics import metrics_from_records
from repro.obs.logging import warn_once
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sampling.estimator import SsfEstimator


class CampaignRunner:
    """Drives one campaign end-to-end (fresh or resumed).

    ``engine`` and ``sampler`` are normally built from the spec; tests (or
    callers that already hold a context) may inject their own.  The runner
    always maintains a merged :class:`MetricsRegistry` (``self.metrics``);
    pass a recording :class:`~repro.obs.tracing.Tracer` (or set
    ``spec.trace``) to capture spans as well.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[RunStore] = None,
        hooks: Optional[CampaignHooks] = None,
        engine=None,
        sampler=None,
        n_workers: Optional[int] = None,
        checkpoint_every: int = 5,
        poll_interval_s: float = 0.5,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        scheduler=None,
    ):
        self.spec = spec
        self.store = store
        self.hooks = hooks or CampaignHooks()
        self.n_workers = n_workers
        # Injected scheduler (e.g. a fleet lease scheduler) replacing the
        # default in-process work-stealing pool.  Anything with the same
        # ``run(chunks, on_chunk, start_index)`` contract fits; the
        # deterministic consumption path below is shared either way.
        self.scheduler = scheduler
        self.checkpoint_every = max(1, checkpoint_every)
        self.poll_interval_s = poll_interval_s
        self._engine = engine
        self._sampler = sampler
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None and getattr(spec, "trace", False):
            tracer = Tracer(metrics=self.metrics)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Runner-owned obs hook: first in the chain, also fed during
        # replay, so campaign progress metrics are deterministic.
        self._obs = ObsHooks(self.metrics)
        self._hook_chain = HookChain(self._obs, self.hooks)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        start = time.perf_counter()
        if self._engine is None or self._sampler is None:
            with self.tracer.span("campaign.build_runtime"):
                self._engine, self._sampler = self.spec.build_runtime()
        if self.tracer.enabled and (
            getattr(self._engine, "tracer", None) is NULL_TRACER
        ):
            # Give the engine our span buffer: in-process (sequential)
            # chunks then contribute per-sample stage spans.  Fork
            # workers inherit a copy whose spans never travel back —
            # their stage *timings* still do, via the metrics snapshot.
            self._engine.tracer = self.tracer
        self._warn_on_stopping_overlap()
        self.hooks.bind(self.metrics, self.tracer)
        hooks = self._hook_chain

        rule = build_stopping_rule(self.spec.stopping)
        chunks = [
            Chunk(i, n) for i, n in enumerate(self.spec.chunk_sizes())
        ]
        estimator = SsfEstimator(record_history=True)
        records: List[SampleRecord] = []

        next_index = 0
        if resume:
            if self.store is None:
                raise EvaluationError("resume requires a run store")
            with self.tracer.span("campaign.replay"):
                for entry in self.store.replay_chunks():
                    for record in entry.records:
                        estimator.push(record.sample, record.e)
                        records.append(record)
                    self._merge_chunk_metrics(entry.records, entry.metrics)
                    self._obs.on_batch(
                        entry.index, len(entry.records), estimator, None
                    )
                    next_index = entry.index + 1
        decision = rule.check(estimator) if next_index else None
        if decision is not None and not decision.stop:
            decision = None

        if decision is None:
            decision = self._drive(
                chunks, next_index, rule, estimator, records
            )

        wall = time.perf_counter() - start
        snapshot = self._snapshot(
            STATUS_COMPLETE, estimator, decision, len(records)
        )
        if self.store is not None:
            with self.tracer.span("checkpoint.fsync"):
                self.store.write_checkpoint(snapshot)
        hooks.on_checkpoint(snapshot)
        hooks.on_stop(decision, estimator)
        self._export_obs()
        return CampaignResult(
            strategy=f"campaign:{self._sampler.name} ({decision.reason})",
            records=records,
            estimator=estimator,
            wall_time_s=wall,
            metrics=self.metrics.snapshot(),
        )

    @classmethod
    def resume(
        cls,
        store: RunStore,
        hooks: Optional[CampaignHooks] = None,
        engine=None,
        sampler=None,
        n_workers: Optional[int] = None,
        tracer=None,
    ) -> CampaignResult:
        """Continue an interrupted run exactly where its log ends."""
        runner = cls(
            store.load_spec(),
            store=store,
            hooks=hooks,
            engine=engine,
            sampler=sampler,
            n_workers=n_workers,
            tracer=tracer,
        )
        return runner.run(resume=True)

    # ------------------------------------------------------------------
    # scheduling loop
    # ------------------------------------------------------------------
    def _drive(self, chunks, next_index, rule, estimator, records) -> StopDecision:
        scheduler = self.scheduler
        if scheduler is None:
            scheduler = WorkStealingScheduler(
                self._engine,
                self._sampler,
                seed=self.spec.seed,
                n_workers=self.n_workers,
                poll_interval_s=self.poll_interval_s,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        elif hasattr(scheduler, "bind_obs"):
            # Injected schedulers (the fleet lease scheduler) get the
            # runner's registry and tracer so shipped worker telemetry
            # lands in the same metrics.jsonl / merged-trace exports.
            scheduler.bind_obs(self.metrics, self.tracer)
        hooks = self._hook_chain
        pending: Dict[int, ChunkResult] = {}
        state = {"next": next_index, "decision": None, "since_ckpt": 0}

        def consume(result: ChunkResult) -> bool:
            pending[result.index] = result
            while state["next"] in pending:
                ready = pending.pop(state["next"])
                if self.store is not None:
                    with self.tracer.span("chunk.append", chunk=ready.index):
                        self.store.append_chunk(
                            ready.index, ready.records, metrics=ready.metrics
                        )
                with self.tracer.span("chunk.merge", chunk=ready.index):
                    for record in ready.records:
                        estimator.push(record.sample, record.e)
                        records.append(record)
                    self._merge_chunk_metrics(ready.records, ready.metrics)
                state["next"] += 1
                decision = rule.check(estimator)
                hooks.on_batch(
                    ready.index, len(ready.records), estimator, decision
                )
                state["since_ckpt"] += 1
                if state["since_ckpt"] >= self.checkpoint_every:
                    state["since_ckpt"] = 0
                    self._checkpoint(STATUS_RUNNING, estimator, decision,
                                     len(records))
                if decision.stop:
                    state["decision"] = decision
                    return False
            return True

        try:
            scheduler.run(chunks, consume, start_index=next_index)
        except BaseException:
            # Mark the run resumable before propagating (the log already
            # holds every consumed chunk).
            self._checkpoint(
                STATUS_INTERRUPTED, estimator, state["decision"], len(records)
            )
            self._export_obs()
            raise
        self._workers_used = scheduler.n_workers_used

        decision = state["decision"]
        if decision is None:
            # The chunk plan ran dry; the bounded rule fires at the cap, so
            # this only happens when resuming an already-finished run.
            decision = rule.check(estimator)
            if not decision.stop:
                decision = StopDecision(True, "chunk plan exhausted")
        return decision

    # ------------------------------------------------------------------
    # metrics merging
    # ------------------------------------------------------------------
    def _merge_chunk_metrics(
        self, chunk_records: List[SampleRecord], snapshot: Optional[List[dict]]
    ) -> None:
        """Fold one chunk's metrics into the merged registry, in the
        strict chunk-index order the caller guarantees.

        Chunks from unobserved engines (stubs, pre-observability logs)
        carry no snapshot; their deterministic metrics are rebuilt from
        the records so the merged registry stays complete either way.
        """
        if snapshot is None:
            snapshot = metrics_from_records(chunk_records).snapshot()
        self.metrics.merge_snapshot(snapshot)

    def _export_obs(self) -> None:
        if self.store is None:
            return
        self.store.write_metrics(self.metrics)
        if self.tracer.enabled:
            self.store.write_trace(self.tracer)

    def _warn_on_stopping_overlap(self) -> None:
        config = getattr(self._engine, "config", None)
        if getattr(config, "stop_on_convergence", False):
            warn_once(
                "engine-stop-under-campaign",
                "EngineConfig.stop_on_convergence is active under campaign "
                "orchestration: the campaign stopping rule (which sees the "
                "merged cross-chunk estimator) takes precedence, while the "
                "engine-level rule can truncate individual chunks and break "
                "worker-count determinism. Disable stop_on_convergence and "
                "use StoppingConfig(mode='risk'|'ci') instead.",
            )

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def _snapshot(self, status, estimator, decision, n_records) -> dict:
        return {
            "status": status,
            "n_samples": estimator.n_samples,
            "n_success": estimator.n_success,
            "n_records": n_records,
            "ssf": estimator.ssf,
            "variance": estimator.variance,
            "std_error": (
                estimator.std_error if estimator.n_samples >= 2 else None
            ),
            "stop_reason": decision.reason if decision else None,
            "target_samples": (
                decision.target_samples if decision else None
            ),
        }

    def _checkpoint(self, status, estimator, decision, n_records) -> None:
        if self.store is None:
            return
        snapshot = self._snapshot(status, estimator, decision, n_records)
        with self.tracer.span("checkpoint.fsync", status=status):
            self.store.write_checkpoint(snapshot)
        self._export_obs()
        self._hook_chain.on_checkpoint(snapshot)
