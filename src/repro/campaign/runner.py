"""Campaign orchestration: spec → scheduler → durable store → result.

The runner owns the deterministic part of a campaign.  Chunks may finish
in any order (work stealing), but they are *consumed* — logged, merged
into the Welford estimator, and fed to the stopping rule — strictly in
chunk-index order via a reorder buffer.  Consequences:

* the final estimate is a pure function of (spec, chunk plan), independent
  of worker count and scheduling order;
* the durable log is always a contiguous chunk prefix, so resuming after
  a crash replays the exact same estimator state and continues with the
  first unconsumed chunk — an interrupted-and-resumed campaign returns
  bit-identical results to an uninterrupted one;
* the stopping rule sees the same estimator sequence every time, so the
  stop point is reproducible too.  Chunks that completed out of order
  past the stop point are discarded, never logged.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.campaign.hooks import CampaignHooks
from repro.campaign.scheduler import Chunk, ChunkResult, WorkStealingScheduler
from repro.campaign.spec import CampaignSpec
from repro.campaign.stopping import StopDecision, build_stopping_rule
from repro.campaign.store import (
    RunStore,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
)
from repro.core.results import CampaignResult, SampleRecord
from repro.errors import EvaluationError
from repro.sampling.estimator import SsfEstimator


class CampaignRunner:
    """Drives one campaign end-to-end (fresh or resumed).

    ``engine`` and ``sampler`` are normally built from the spec; tests (or
    callers that already hold a context) may inject their own.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[RunStore] = None,
        hooks: Optional[CampaignHooks] = None,
        engine=None,
        sampler=None,
        n_workers: Optional[int] = None,
        checkpoint_every: int = 5,
        poll_interval_s: float = 0.5,
    ):
        self.spec = spec
        self.store = store
        self.hooks = hooks or CampaignHooks()
        self.n_workers = n_workers
        self.checkpoint_every = max(1, checkpoint_every)
        self.poll_interval_s = poll_interval_s
        self._engine = engine
        self._sampler = sampler

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        start = time.perf_counter()
        if self._engine is None or self._sampler is None:
            self._engine, self._sampler = self.spec.build_runtime()

        rule = build_stopping_rule(self.spec.stopping)
        chunks = [
            Chunk(i, n) for i, n in enumerate(self.spec.chunk_sizes())
        ]
        estimator = SsfEstimator(record_history=True)
        records: List[SampleRecord] = []

        next_index = 0
        if resume:
            if self.store is None:
                raise EvaluationError("resume requires a run store")
            for index, chunk_records in self.store.replay():
                for record in chunk_records:
                    estimator.push(record.sample, record.e)
                    records.append(record)
                next_index = index + 1
        decision = rule.check(estimator) if next_index else None
        if decision is not None and not decision.stop:
            decision = None

        if decision is None:
            decision = self._drive(
                chunks, next_index, rule, estimator, records
            )

        wall = time.perf_counter() - start
        snapshot = self._snapshot(
            STATUS_COMPLETE, estimator, decision, len(records)
        )
        if self.store is not None:
            self.store.write_checkpoint(snapshot)
        self.hooks.on_checkpoint(snapshot)
        self.hooks.on_stop(decision, estimator)
        return CampaignResult(
            strategy=f"campaign:{self._sampler.name} ({decision.reason})",
            records=records,
            estimator=estimator,
            wall_time_s=wall,
        )

    @classmethod
    def resume(
        cls,
        store: RunStore,
        hooks: Optional[CampaignHooks] = None,
        engine=None,
        sampler=None,
        n_workers: Optional[int] = None,
    ) -> CampaignResult:
        """Continue an interrupted run exactly where its log ends."""
        runner = cls(
            store.load_spec(),
            store=store,
            hooks=hooks,
            engine=engine,
            sampler=sampler,
            n_workers=n_workers,
        )
        return runner.run(resume=True)

    # ------------------------------------------------------------------
    # scheduling loop
    # ------------------------------------------------------------------
    def _drive(self, chunks, next_index, rule, estimator, records) -> StopDecision:
        scheduler = WorkStealingScheduler(
            self._engine,
            self._sampler,
            seed=self.spec.seed,
            n_workers=self.n_workers,
            poll_interval_s=self.poll_interval_s,
        )
        pending: Dict[int, ChunkResult] = {}
        state = {"next": next_index, "decision": None, "since_ckpt": 0}

        def consume(result: ChunkResult) -> bool:
            pending[result.index] = result
            while state["next"] in pending:
                ready = pending.pop(state["next"])
                if self.store is not None:
                    self.store.append_chunk(ready.index, ready.records)
                for record in ready.records:
                    estimator.push(record.sample, record.e)
                    records.append(record)
                state["next"] += 1
                decision = rule.check(estimator)
                self.hooks.on_batch(
                    ready.index, len(ready.records), estimator, decision
                )
                state["since_ckpt"] += 1
                if state["since_ckpt"] >= self.checkpoint_every:
                    state["since_ckpt"] = 0
                    self._checkpoint(STATUS_RUNNING, estimator, decision,
                                     len(records))
                if decision.stop:
                    state["decision"] = decision
                    return False
            return True

        try:
            scheduler.run(chunks, consume, start_index=next_index)
        except BaseException:
            # Mark the run resumable before propagating (the log already
            # holds every consumed chunk).
            self._checkpoint(
                STATUS_INTERRUPTED, estimator, state["decision"], len(records)
            )
            raise
        self._workers_used = scheduler.n_workers_used

        decision = state["decision"]
        if decision is None:
            # The chunk plan ran dry; the bounded rule fires at the cap, so
            # this only happens when resuming an already-finished run.
            decision = rule.check(estimator)
            if not decision.stop:
                decision = StopDecision(True, "chunk plan exhausted")
        return decision

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def _snapshot(self, status, estimator, decision, n_records) -> dict:
        return {
            "status": status,
            "n_samples": estimator.n_samples,
            "n_success": estimator.n_success,
            "n_records": n_records,
            "ssf": estimator.ssf,
            "variance": estimator.variance,
            "std_error": (
                estimator.std_error if estimator.n_samples >= 2 else None
            ),
            "stop_reason": decision.reason if decision else None,
            "target_samples": (
                decision.target_samples if decision else None
            ),
        }

    def _checkpoint(self, status, estimator, decision, n_records) -> None:
        if self.store is None:
            return
        snapshot = self._snapshot(status, estimator, decision, n_records)
        self.store.write_checkpoint(snapshot)
        self.hooks.on_checkpoint(snapshot)
