"""Adaptive stopping rules for SSF campaigns.

The paper's Section 3.3 convergence analysis gives a Chebyshev bound on the
number of samples needed to hit an (ε, δ) risk target:
``N >= σ² / (δ·ε²)`` (:func:`repro.utils.stats.samples_for_risk`).  A fixed
sample budget either under-shoots the target or wastes work past it; a
stopping rule re-evaluates the bound with the *running* variance estimate
and terminates the campaign as soon as the target is met.

Three rules are provided, all bounded by a hard sample cap:

* :class:`FixedSampleRule` — the classic fixed-N campaign (the baseline);
* :class:`RiskTargetRule` — stop once ``n >= σ̂²/(δ·ε²)``, i.e. the
  empirical Chebyshev bound for ``Pr[|SSF_hat − SSF| ≥ ε] ≤ δ`` is met;
* :class:`CiWidthRule` — stop once the Wilson confidence interval on the
  raw success probability is narrower than a target width.

Rules are pure functions of the estimator state, so the decision sequence
is deterministic given the sample sequence — a resumed campaign replays the
same decisions and stops at exactly the same sample as an uninterrupted
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import EvaluationError
from repro.sampling.estimator import SsfEstimator
from repro.utils.stats import samples_for_risk, wilson_interval


@dataclass(frozen=True)
class StopDecision:
    """Outcome of one stopping-rule check."""

    stop: bool
    reason: str = ""
    # Current estimate of the total samples the rule wants (None if the
    # rule cannot quantify a target yet, e.g. zero variance so far).
    target_samples: Optional[int] = None


class StoppingRule:
    """Decides after every consumed batch whether the campaign is done."""

    def check(self, estimator: SsfEstimator) -> StopDecision:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSampleRule(StoppingRule):
    """Stop after exactly ``n_samples`` — the pre-subsystem behaviour."""

    n_samples: int

    def check(self, estimator: SsfEstimator) -> StopDecision:
        if estimator.n_samples >= self.n_samples:
            return StopDecision(
                True, f"fixed budget of {self.n_samples} samples reached",
                self.n_samples,
            )
        return StopDecision(False, target_samples=self.n_samples)

    def describe(self) -> str:
        return f"fixed N={self.n_samples}"


@dataclass(frozen=True)
class RiskTargetRule(StoppingRule):
    """Stop when the empirical Chebyshev (ε, δ) bound is satisfied.

    ``min_samples`` guards the early phase where the variance estimate is
    unreliable (an all-zero prefix has σ̂² = 0 and would stop immediately).
    """

    epsilon: float
    delta: float = 0.05
    min_samples: int = 200

    def check(self, estimator: SsfEstimator) -> StopDecision:
        if estimator.n_samples < self.min_samples:
            return StopDecision(False)
        needed = samples_for_risk(estimator.variance, self.epsilon, self.delta)
        needed = max(needed, self.min_samples)
        if estimator.n_samples >= needed:
            return StopDecision(
                True,
                f"(eps={self.epsilon}, delta={self.delta}) risk target met "
                f"at n={estimator.n_samples} (bound {needed})",
                needed,
            )
        return StopDecision(False, target_samples=needed)

    def describe(self) -> str:
        return f"risk eps={self.epsilon} delta={self.delta}"


@dataclass(frozen=True)
class CiWidthRule(StoppingRule):
    """Stop when the Wilson CI on the raw success rate is narrow enough."""

    width: float
    z: float = 1.96
    min_samples: int = 100

    def check(self, estimator: SsfEstimator) -> StopDecision:
        if estimator.n_samples < self.min_samples:
            return StopDecision(False)
        lo, hi = wilson_interval(
            estimator.n_success, estimator.n_samples, self.z
        )
        if hi - lo <= self.width:
            return StopDecision(
                True,
                f"CI width {hi - lo:.4g} <= {self.width} "
                f"at n={estimator.n_samples}",
            )
        return StopDecision(False)

    def describe(self) -> str:
        return f"ci width<={self.width} z={self.z}"


@dataclass(frozen=True)
class BoundedRule(StoppingRule):
    """Wrap a rule with a hard sample cap so campaigns always terminate."""

    inner: StoppingRule
    max_samples: int

    def check(self, estimator: SsfEstimator) -> StopDecision:
        decision = self.inner.check(estimator)
        if decision.stop:
            return decision
        if estimator.n_samples >= self.max_samples:
            return StopDecision(
                True,
                f"sample cap of {self.max_samples} reached before "
                f"{self.inner.describe()} converged",
                decision.target_samples,
            )
        return decision

    def describe(self) -> str:
        return f"{self.inner.describe()} (cap {self.max_samples})"


def build_stopping_rule(config) -> StoppingRule:
    """Construct the rule a :class:`~repro.campaign.spec.StoppingConfig`
    describes (always wrapped in the hard cap)."""
    mode = config.mode
    if mode == "fixed":
        inner: StoppingRule = FixedSampleRule(config.n_samples)
        return BoundedRule(inner, config.n_samples)
    if mode == "risk":
        inner = RiskTargetRule(
            epsilon=config.epsilon,
            delta=config.delta,
            min_samples=config.min_samples,
        )
    elif mode == "ci":
        inner = CiWidthRule(
            width=config.ci_width,
            z=config.z,
            min_samples=config.min_samples,
        )
    else:
        raise EvaluationError(f"unknown stopping mode {mode!r}")
    return BoundedRule(inner, config.max_samples)
