"""Dynamic shard scheduler: work-stealing chunks over worker processes.

The old ``parallel_evaluate`` split a campaign into one static slice per
worker, so the slowest worker gated the wall time and nothing could stop
early.  Here the campaign is cut into small *chunks* that idle workers
pull from a shared queue:

* stragglers no longer matter — a worker that drew expensive samples just
  pulls fewer chunks;
* an adaptive stopping rule can cancel in-flight work the moment the
  target is met (``on_chunk`` returning ``False`` tears the pool down);
* each chunk owns an independent seed stream spawned from the campaign
  root seed (``SeedSequence(seed).spawn``), so results are reproducible
  for a given (seed, chunk plan) *regardless of worker count or
  scheduling order*.

The parent polls the result queue with a timeout and watches worker
liveness, so a worker that dies without reporting (OOM-kill, segfault)
raises :class:`~repro.errors.EvaluationError` instead of hanging the
campaign forever.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.results import SampleRecord
from repro.errors import EvaluationError
from repro.obs.tracing import NULL_TRACER


@dataclass(frozen=True)
class Chunk:
    """One schedulable unit of work: ``n_samples`` draws at chunk ``index``."""

    index: int
    n_samples: int


@dataclass(frozen=True)
class ChunkResult:
    """Completed chunk, in whatever order the pool finished it.

    ``metrics`` is the serialized per-chunk metrics snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) recorded by the
    worker's engine during this chunk, or ``None`` when the engine ran
    unobserved — consumers fall back to rebuilding the deterministic
    subset from ``records``.
    """

    index: int
    records: List[SampleRecord]
    metrics: Optional[List[dict]] = None


def chunk_seed_sequence(seed: Optional[int], index: int) -> np.random.SeedSequence:
    """The ``index``-th spawned child of the campaign root seed.

    Identical to ``np.random.SeedSequence(seed).spawn(index + 1)[index]``
    (spawned children are ``SeedSequence(entropy, spawn_key=(i,))``), but
    O(1) in the index.  Distinct (seed, index) pairs never collide — unlike
    the old ``seed + index`` scheme, where campaign seed 0 / chunk 1 reused
    campaign seed 1 / chunk 0's stream.
    """
    return np.random.SeedSequence(entropy=seed, spawn_key=(index,))


def _run_chunk(engine, sampler, seed: Optional[int], chunk: Chunk) -> ChunkResult:
    # Pass the chunk's SeedSequence itself (not a Generator): the engine
    # spawns one child stream per sample from it, so samples within a
    # chunk never share RNG state and each is replayable in isolation.
    # Stub engines that call ``as_generator`` on it see the same stream
    # the old Generator-passing code produced.
    result = engine.evaluate(
        sampler, chunk.n_samples, seed=chunk_seed_sequence(seed, chunk.index)
    )
    return ChunkResult(
        chunk.index, list(result.records), getattr(result, "metrics", None)
    )


def _chunk_worker(engine, sampler, seed, task_queue, result_queue) -> None:
    """Worker loop: pull chunk descriptors until the ``None`` sentinel."""
    while True:
        task = task_queue.get()
        if task is None:
            break
        index, n_samples = task
        try:
            result = _run_chunk(engine, sampler, seed, Chunk(index, n_samples))
            result_queue.put((index, (result.records, result.metrics)))
        except Exception as exc:  # pragma: no cover - surfaced to the parent
            result_queue.put((index, exc))


class WorkStealingScheduler:
    """Streams chunk results to a consumer callback.

    ``on_chunk`` is invoked in *completion* order (callers that need chunk
    order keep a reorder buffer); returning ``False`` cancels all queued
    and in-flight work immediately.
    """

    def __init__(
        self,
        engine,
        sampler,
        seed: Optional[int] = 0,
        n_workers: Optional[int] = None,
        poll_interval_s: float = 0.5,
        prefetch: int = 2,
        tracer=None,
        metrics=None,
    ):
        self.engine = engine
        self.sampler = sampler
        self.seed = seed
        if n_workers is None:
            n_workers = min(4, multiprocessing.cpu_count())
        self.n_workers = max(1, n_workers)
        self.poll_interval_s = poll_interval_s
        self.prefetch = max(1, prefetch)
        self.n_workers_used = 1
        # Parent-side observability (operational, not part of the
        # deterministic merge): chunk dispatch/complete counters + spans.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, deterministic=False).inc(amount)

    def run(
        self,
        chunks: Sequence[Chunk],
        on_chunk: Callable[[ChunkResult], bool],
        start_index: int = 0,
    ) -> None:
        """Process ``chunks[start_index:]`` until done or cancelled."""
        remaining = [c for c in chunks if c.index >= start_index]
        if not remaining:
            return
        n_workers = min(self.n_workers, len(remaining))
        use_fork = "fork" in multiprocessing.get_all_start_methods()
        if n_workers <= 1 or not use_fork:
            self.n_workers_used = 1
            if self.metrics is not None:
                self.metrics.gauge(
                    "scheduler_workers", deterministic=False
                ).set(1)
            for chunk in remaining:
                self._count("scheduler_chunks_dispatched_total")
                with self.tracer.span("chunk.run", chunk=chunk.index):
                    result = _run_chunk(
                        self.engine, self.sampler, self.seed, chunk
                    )
                self._count("scheduler_chunks_completed_total")
                if not on_chunk(result):
                    return
            return
        self.n_workers_used = n_workers
        if self.metrics is not None:
            self.metrics.gauge("scheduler_workers", deterministic=False).set(
                n_workers
            )
        self._run_pool(remaining, on_chunk, n_workers)

    # ------------------------------------------------------------------
    # process pool
    # ------------------------------------------------------------------
    def _run_pool(self, remaining, on_chunk, n_workers) -> None:
        ctx = multiprocessing.get_context("fork")
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_chunk_worker,
                args=(self.engine, self.sampler, self.seed, task_queue, result_queue),
                daemon=True,
            )
            for _ in range(n_workers)
        ]
        for process in processes:
            process.start()

        feed = iter(remaining)
        outstanding = 0
        try:
            # Keep a bounded backlog so cancellation wastes little work.
            for _ in range(self.prefetch * n_workers):
                chunk = next(feed, None)
                if chunk is None:
                    break
                with self.tracer.span("chunk.dispatch", chunk=chunk.index):
                    task_queue.put((chunk.index, chunk.n_samples))
                self._count("scheduler_chunks_dispatched_total")
                outstanding += 1

            while outstanding:
                index, payload = self._next_result(result_queue, processes)
                outstanding -= 1
                if isinstance(payload, Exception):
                    raise EvaluationError(
                        f"worker failed on chunk {index}: {payload}"
                    ) from payload
                records, chunk_metrics = payload
                self._count("scheduler_chunks_completed_total")
                if not on_chunk(ChunkResult(index, records, chunk_metrics)):
                    return  # cancel: the finally block tears the pool down
                chunk = next(feed, None)
                if chunk is not None:
                    # Past the prefetch backlog: this dispatch backfills an
                    # idle worker that just finished — a steal.
                    with self.tracer.span("chunk.steal", chunk=chunk.index):
                        task_queue.put((chunk.index, chunk.n_samples))
                    self._count("scheduler_chunks_dispatched_total")
                    self._count("scheduler_chunks_stolen_total")
                    outstanding += 1
            for _ in processes:
                task_queue.put(None)
            for process in processes:
                process.join(timeout=5)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=5)
            # Don't block interpreter exit on unread queue buffers.
            task_queue.cancel_join_thread()
            result_queue.cancel_join_thread()
            task_queue.close()
            result_queue.close()

    def _next_result(self, result_queue, processes):
        """Poll for the next result while watching worker liveness.

        A worker that exits without posting (OOM-kill, segfault, ``kill
        -9``) would previously hang the parent in a bare ``queue.get()``.
        We give a dead worker one extra poll window for an already-piped
        result to surface, then fail the campaign.
        """
        saw_dead = False
        while True:
            try:
                return result_queue.get(timeout=self.poll_interval_s)
            except queue_mod.Empty:
                dead = [p for p in processes if not p.is_alive()]
                if not dead:
                    continue
                if saw_dead:
                    detail = ", ".join(
                        f"pid {p.pid} exitcode {p.exitcode}" for p in dead
                    )
                    raise EvaluationError(
                        f"campaign worker died without returning its chunk "
                        f"({detail})"
                    )
                saw_dead = True
