"""Declarative campaign specification.

A :class:`CampaignSpec` captures *everything* needed to (re)run an SSF
campaign — benchmark, countermeasure variant, sampling strategy, attack
window, seed policy, sharding granularity, and stopping rule — as plain
data, serializable to JSON.  The durable run store persists the spec next
to the sample log, so ``campaign resume`` can rebuild the exact runtime
(engine + sampler) of an interrupted run on a fresh process.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import EvaluationError

#: Stopping modes understood by :func:`repro.campaign.stopping.build_stopping_rule`.
STOPPING_MODES = ("fixed", "risk", "ci")

#: Evaluation backends (mirrors ``repro.core.engine.ENGINE_VARIANTS``).
ENGINES = ("exact", "surrogate")

#: Fidelity modes: single-engine, or surrogate screen + exact confirm.
FIDELITIES = ("single", "two_stage")


@dataclass(frozen=True)
class StoppingConfig:
    """Serializable description of a stopping rule.

    ``mode`` selects the rule: ``fixed`` (run exactly ``n_samples``),
    ``risk`` (Chebyshev (ε, δ) target), or ``ci`` (Wilson CI width target).
    ``max_samples`` is a hard cap for the adaptive modes.
    """

    mode: str = "fixed"
    n_samples: int = 1000            # fixed mode budget
    epsilon: float = 0.02            # risk mode: absolute error target
    delta: float = 0.05              # risk mode: failure probability
    ci_width: float = 0.05           # ci mode: Wilson interval width
    z: float = 1.96                  # ci mode: normal quantile
    min_samples: int = 200           # adaptive modes: variance warm-up
    max_samples: int = 100_000       # adaptive modes: hard cap

    def __post_init__(self) -> None:
        if self.mode not in STOPPING_MODES:
            raise EvaluationError(
                f"stopping mode must be one of {STOPPING_MODES}, "
                f"got {self.mode!r}"
            )
        if self.mode == "fixed" and self.n_samples <= 0:
            raise EvaluationError("n_samples must be positive")
        if self.max_samples <= 0:
            raise EvaluationError("max_samples must be positive")

    @property
    def sample_cap(self) -> int:
        """Upper bound on samples any campaign under this config consumes."""
        return self.n_samples if self.mode == "fixed" else self.max_samples

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StoppingConfig":
        return cls(**data)


@dataclass(frozen=True)
class CampaignSpec:
    """Full declarative description of one SSF campaign."""

    benchmark: str = "write"          # key into the benchmark registry
    variant: str = "none"             # MPU countermeasure variant string
    sampler: str = "importance"       # random | cone | importance
    window: int = 50                  # temporal attack window (cycles)
    subblock_fraction: float = 0.125  # spatial range (fraction of the MPU)
    impact_cycles: int = 1            # consecutive disturbed cycles
    seed: int = 2024                  # root seed of the per-chunk seed tree
    chunk_size: int = 50              # samples per work-stealing chunk
    engine: str = "exact"             # evaluation backend: exact | surrogate
    fidelity: str = "single"          # single | two_stage (screen + confirm)
    charac_cache: Optional[str] = None  # pre-characterization JSON to reuse
    calibration: Optional[str] = None   # surrogate calibration artifact to reuse
    trace: bool = False               # record spans → runs/<id>/trace.json
    batch: bool = True                # batched sampling kernel (--no-batch off)
    telemetry: bool = True            # fleet workers ship spans/metrics/logs
    baseline_store: Optional[str] = None  # ArtifactStore root for cycle baselines
    stopping: StoppingConfig = field(default_factory=StoppingConfig)

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise EvaluationError("chunk_size must be positive")
        if self.sampler not in ("random", "cone", "importance"):
            raise EvaluationError(f"unknown sampler {self.sampler!r}")
        if self.engine not in ENGINES:
            raise EvaluationError(
                f"unknown engine variant {self.engine!r}: valid variants "
                f"are {', '.join(ENGINES)}"
            )
        if self.fidelity not in FIDELITIES:
            raise EvaluationError(
                f"unknown fidelity {self.fidelity!r}: valid modes are "
                f"{', '.join(FIDELITIES)}"
            )
        if self.fidelity == "two_stage" and self.engine != "surrogate":
            raise EvaluationError(
                "fidelity 'two_stage' uses the surrogate as the screening "
                "stage; set engine='surrogate'"
            )
        if self.engine == "surrogate" and self.impact_cycles != 1:
            raise EvaluationError(
                "the surrogate engine models single-cycle injections; "
                "impact_cycles must be 1"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["stopping"] = self.stopping.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        data = dict(data)
        stopping = data.pop("stopping", {})
        return cls(stopping=StoppingConfig.from_dict(stopping), **data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # chunk plan (the unit of work stealing and of durable logging)
    # ------------------------------------------------------------------
    def chunk_sizes(self) -> Tuple[int, ...]:
        """Sample count per chunk index, covering the sample cap exactly.

        The plan is a pure function of the spec, so an interrupted run and
        its resume agree on every chunk's size and seed.
        """
        total = self.stopping.sample_cap
        full, rest = divmod(total, self.chunk_size)
        sizes = [self.chunk_size] * full
        if rest:
            sizes.append(rest)
        return tuple(sizes)

    # ------------------------------------------------------------------
    # runtime construction
    # ------------------------------------------------------------------
    def build_runtime(self):
        """Build the (engine, sampler) pair this spec describes.

        Imports are local: the spec itself stays importable (and cheap)
        for tooling that only inspects run metadata.
        """
        from repro import default_attack_spec
        from repro.core.context import build_context
        from repro.core.engine import CrossLevelEngine, EngineConfig
        from repro.sampling import (
            FaninConeSampler,
            ImportanceSampler,
            RandomSampler,
        )
        from repro.soc.mpu import MpuVariant
        from repro.soc.programs import (
            dma_exfiltration_benchmark,
            illegal_read_benchmark,
            illegal_write_benchmark,
        )

        benchmarks = {
            "write": illegal_write_benchmark,
            "read": illegal_read_benchmark,
            "dma": dma_exfiltration_benchmark,
        }
        if self.benchmark not in benchmarks:
            raise EvaluationError(f"unknown benchmark {self.benchmark!r}")
        variant = MpuVariant.parse(self.variant)

        context = None
        if self.charac_cache and pathlib.Path(self.charac_cache).exists():
            from repro.precharac.persistence import load_characterization

            context = build_context(
                benchmarks[self.benchmark](),
                characterize=False,
                mpu_variant=variant,
            )
            context.characterization = load_characterization(
                self.charac_cache, context.netlist
            )
        if context is None:
            context = build_context(
                benchmarks[self.benchmark](), mpu_variant=variant
            )

        attack = default_attack_spec(
            context,
            window=self.window,
            subblock_fraction=self.subblock_fraction,
        )
        if self.impact_cycles > 1:
            attack.technique.impact_cycles = self.impact_cycles
        engine = CrossLevelEngine(
            context,
            attack,
            config=EngineConfig(batch=self.batch, engine=self.engine),
            baseline_store=self._build_baseline_store(context),
        )
        engine.warm_baseline_cache()

        if self.sampler == "random":
            sampler = RandomSampler(attack)
        elif self.sampler == "cone":
            sampler = FaninConeSampler(attack, context.characterization)
        else:
            sampler = ImportanceSampler(
                attack, context.characterization, placement=context.placement
            )

        if self.engine == "surrogate":
            engine = self._wrap_surrogate(engine, sampler, context)
        return engine, sampler

    def _build_baseline_store(self, context):
        """The persistent cycle-baseline store, or None when unset.

        ``baseline_store`` names an :class:`~repro.service.artifacts.
        ArtifactStore` root (the service injects its own ``runs/
        artifacts`` directory; the CLI exposes ``--baseline-store``).
        The store key binds the netlist fingerprint and
        precharacterization version, so campaigns against a changed
        design recompute instead of loading stale golden state.
        """
        if not self.baseline_store:
            return None
        from repro.service.artifacts import ArtifactStore, baseline_store_for

        return baseline_store_for(
            ArtifactStore(self.baseline_store),
            benchmark=self.benchmark,
            variant=self.variant,
            netlist=context.netlist,
        )

    def _wrap_surrogate(self, engine, sampler, context):
        """Wrap the exact engine per ``engine``/``fidelity``.

        A calibration artifact named by ``calibration`` is loaded when it
        exists and written there otherwise; with no path the model is
        fitted in-process, seeded from the campaign seed (the calibration
        seed tree is namespaced away from the chunk streams, so the fit
        never perturbs campaign sampling).
        """
        from repro.surrogate import build_surrogate_engine

        return build_surrogate_engine(
            engine,
            sampler,
            fidelity=self.fidelity,
            calibration=self.calibration,
            seed=self.seed,
        )


def load_spec(path: Union[str, pathlib.Path]) -> CampaignSpec:
    """Read a :class:`CampaignSpec` from a JSON file.

    A missing or corrupt file raises :class:`EvaluationError` naming the
    path, so CLI and service callers surface an actionable message
    instead of a raw traceback.
    """
    path = pathlib.Path(path)
    try:
        return CampaignSpec.from_json(path.read_text())
    except (OSError, json.JSONDecodeError, TypeError) as exc:
        raise EvaluationError(
            f"cannot load campaign spec {path}: {exc}"
        ) from exc
