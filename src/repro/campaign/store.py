"""Durable run store: append-only sample log + periodic checkpoints.

Layout of one run directory (``<root>/<run_id>/``)::

    spec.json        the CampaignSpec (written once at creation)
    log.jsonl        one JSON line per *consumed* chunk, in chunk order
    checkpoint.json  latest estimator snapshot + run status
    metrics.jsonl    latest merged metrics snapshot (one metric per line)
    metrics.prom     the same metrics as a Prometheus textfile
    trace.json       Chrome trace_event export (only when tracing was on)

The log is the source of truth: ``campaign resume`` replays it into a
fresh Welford estimator and continues with the first chunk index not in
the log.  Because chunks are only logged once they have been merged into
the estimator (strictly in chunk-index order), the log is always a
contiguous prefix of the campaign's chunk plan — a crash can at worst
truncate the final line, which the replay detects and discards.  Each log
line also carries the chunk's serialized metrics snapshot, so a resumed
run re-merges the *same* per-chunk metrics an uninterrupted run saw.

Checkpoints and the metrics/trace exports are advisory (they feed
``campaign status`` and ``repro obs report``); correctness never depends
on them — both are atomically rewritten from merged state, never
appended.
"""

from __future__ import annotations

import json
import os
import pathlib
import uuid
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.attack.spec import AttackSample
from repro.campaign.spec import CampaignSpec
from repro.core.results import OutcomeCategory, SampleRecord
from repro.errors import EvaluationError

SPEC_FILE = "spec.json"
LOG_FILE = "log.jsonl"
CHECKPOINT_FILE = "checkpoint.json"
METRICS_FILE = "metrics.jsonl"
PROM_FILE = "metrics.prom"
TRACE_FILE = "trace.json"
EVENTS_FILE = "events.jsonl"
FLEET_TRACE_FILE = "trace_fleet.json"

STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_INTERRUPTED = "interrupted"


# ----------------------------------------------------------------------
# record (de)serialization
# ----------------------------------------------------------------------
def record_to_dict(record: SampleRecord) -> dict:
    return {
        "t": record.sample.t,
        "centre": record.sample.centre,
        "radius_um": record.sample.radius_um,
        "weight": record.sample.weight,
        "e": record.e,
        "category": record.category.value,
        "flipped_bits": sorted([reg, bit] for reg, bit in record.flipped_bits),
        "injection_cycle": record.injection_cycle,
        "n_pulses_injected": record.n_pulses_injected,
        "n_pulses_latched": record.n_pulses_latched,
        "analytical": record.analytical,
    }


def record_from_dict(data: dict) -> SampleRecord:
    return SampleRecord(
        sample=AttackSample(
            t=int(data["t"]),
            centre=int(data["centre"]),
            radius_um=float(data["radius_um"]),
            weight=float(data["weight"]),
        ),
        e=int(data["e"]),
        category=OutcomeCategory(data["category"]),
        flipped_bits=frozenset(
            (reg, int(bit)) for reg, bit in data["flipped_bits"]
        ),
        injection_cycle=int(data["injection_cycle"]),
        n_pulses_injected=int(data["n_pulses_injected"]),
        n_pulses_latched=int(data["n_pulses_latched"]),
        analytical=bool(data["analytical"]),
    )


@dataclass(frozen=True)
class ChunkLogEntry:
    """One replayed chunk: records plus the chunk's metrics snapshot.

    ``metrics`` is ``None`` for log lines written before observability
    existed (or by unobserved engines); consumers rebuild the
    deterministic subset from ``records`` in that case.
    """

    index: int
    records: List[SampleRecord]
    metrics: Optional[List[dict]] = None


class RunStore:
    """Filesystem persistence for one campaign run."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)

    @property
    def run_id(self) -> str:
        return self.path.name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: Union[str, pathlib.Path],
        spec: CampaignSpec,
        run_id: Optional[str] = None,
    ) -> "RunStore":
        """Create a fresh run directory and persist the spec."""
        run_id = run_id or uuid.uuid4().hex[:12]
        path = pathlib.Path(root) / run_id
        if path.exists():
            raise EvaluationError(f"run {run_id!r} already exists at {path}")
        path.mkdir(parents=True)
        store = cls(path)
        (path / SPEC_FILE).write_text(spec.to_json())
        store.write_checkpoint({"status": STATUS_RUNNING, "n_samples": 0})
        return store

    @classmethod
    def open(
        cls, root: Union[str, pathlib.Path], run_id: str
    ) -> "RunStore":
        path = pathlib.Path(root) / run_id
        if not (path / SPEC_FILE).exists():
            raise EvaluationError(f"no campaign run {run_id!r} under {root}")
        return cls(path)

    @classmethod
    def list_runs(cls, root: Union[str, pathlib.Path]) -> List[str]:
        root = pathlib.Path(root)
        if not root.exists():
            return []
        return sorted(
            p.name for p in root.iterdir() if (p / SPEC_FILE).exists()
        )

    def load_spec(self) -> CampaignSpec:
        from repro.campaign.spec import load_spec

        return load_spec(self.path / SPEC_FILE)

    # ------------------------------------------------------------------
    # append-only sample log
    # ------------------------------------------------------------------
    def append_chunk(
        self,
        chunk_index: int,
        records: List[SampleRecord],
        metrics: Optional[List[dict]] = None,
    ) -> None:
        """Durably append one consumed chunk (fsynced before returning)."""
        payload = {
            "chunk": chunk_index,
            "records": [record_to_dict(r) for r in records],
        }
        if metrics is not None:
            payload["metrics"] = metrics
        line = json.dumps(payload)
        with open(self.path / LOG_FILE, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> Iterator[Tuple[int, List[SampleRecord]]]:
        """Yield ``(chunk_index, records)`` in log order (compat shim
        over :meth:`replay_chunks`)."""
        for entry in self.replay_chunks():
            yield entry.index, entry.records

    def replay_chunks(self) -> Iterator[ChunkLogEntry]:
        """Yield :class:`ChunkLogEntry` in log order.

        A truncated trailing line (crash mid-append) is discarded; any
        other malformed content raises, because it means the log is not
        the contiguous prefix the resume logic depends on.
        """
        log = self.path / LOG_FILE
        if not log.exists():
            return
        with open(log) as fh:
            lines = fh.read().split("\n")
        # A complete log ends with "\n", so the final element is "".
        if lines and lines[-1] == "":
            lines.pop()
            trailing_complete = True
        else:
            trailing_complete = False
        expected = 0
        for i, line in enumerate(lines):
            last = i == len(lines) - 1
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if last and not trailing_complete:
                    return  # torn final append: drop it
                raise EvaluationError(
                    f"corrupt campaign log {log} at line {i + 1}"
                )
            if payload["chunk"] != expected:
                raise EvaluationError(
                    f"campaign log {log} is not a contiguous chunk prefix "
                    f"(expected chunk {expected}, found {payload['chunk']})"
                )
            expected += 1
            yield ChunkLogEntry(
                index=payload["chunk"],
                records=[record_from_dict(r) for r in payload["records"]],
                metrics=payload.get("metrics"),
            )

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def write_checkpoint(self, snapshot: dict) -> None:
        """Atomically replace the checkpoint file."""
        target = self.path / CHECKPOINT_FILE
        tmp = self.path / (CHECKPOINT_FILE + ".tmp")
        tmp.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        tmp.replace(target)

    def read_checkpoint(self) -> dict:
        target = self.path / CHECKPOINT_FILE
        if not target.exists():
            return {"status": STATUS_INTERRUPTED, "n_samples": 0}
        try:
            return json.loads(target.read_text())
        except json.JSONDecodeError:
            # A torn checkpoint is recoverable: the log has the truth.
            return {"status": STATUS_INTERRUPTED, "n_samples": 0}

    # ------------------------------------------------------------------
    # observability exports (advisory, atomically rewritten)
    # ------------------------------------------------------------------
    def _atomic_write(self, filename: str, text: str) -> None:
        tmp = self.path / (filename + ".tmp")
        tmp.write_text(text)
        tmp.replace(self.path / filename)

    def write_metrics(self, registry) -> None:
        """Export a merged :class:`~repro.obs.metrics.MetricsRegistry` as
        ``metrics.jsonl`` + a Prometheus textfile."""
        self._atomic_write(METRICS_FILE, registry.to_jsonl())
        self._atomic_write(PROM_FILE, registry.to_prometheus())

    def read_metrics(self) -> List[dict]:
        """The latest exported metrics snapshot ([] when never written)."""
        target = self.path / METRICS_FILE
        if not target.exists():
            return []
        from repro.obs.report import load_metrics_jsonl

        return load_metrics_jsonl(target)

    def write_trace(self, tracer) -> None:
        """Export a recording tracer's buffer as Chrome trace JSON."""
        self._atomic_write(
            TRACE_FILE, json.dumps(tracer.to_chrome(), sort_keys=True)
        )

    def write_fleet_trace(self, trace: dict) -> None:
        """Export the merged coordinator+workers Chrome trace.

        Kept separate from ``trace.json`` — the runner rewrites that one
        from its own (coordinator-side) tracer at every checkpoint, and
        the merged trace exists only for fleet runs.
        """
        self._atomic_write(
            FLEET_TRACE_FILE, json.dumps(trace, sort_keys=True)
        )

    def read_fleet_trace(self) -> dict:
        """The merged fleet trace (``{}`` when the run never wrote one)."""
        target = self.path / FLEET_TRACE_FILE
        if not target.exists():
            return {}
        return json.loads(target.read_text())

    # ------------------------------------------------------------------
    # operational event log (fleet telemetry; advisory, append-only)
    # ------------------------------------------------------------------
    def append_event(self, event: dict) -> None:
        """Append one operational event (lease lifecycle, shipped worker
        log record, straggler flag) to ``events.jsonl``.

        Advisory telemetry: plain buffered appends, no fsync — losing a
        tail of events in a crash costs debuggability, never
        correctness.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        with open(self.path / EVENTS_FILE, "a") as fh:
            fh.write(json.dumps(event, sort_keys=True) + "\n")

    def read_events(self) -> List[dict]:
        """All operational events ([] when the run shipped none); a torn
        final line is dropped."""
        target = self.path / EVENTS_FILE
        if not target.exists():
            return []
        out = []
        with open(target) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    break
        return out
