"""Progress / telemetry hooks for campaign runs.

The runner invokes these callbacks at the three interesting moments of a
campaign's life: a chunk of samples was merged into the estimator, a
checkpoint hit disk, and the stopping rule fired.  Hooks are observational
only — exceptions raised by a hook propagate (a broken telemetry sink
should fail loudly, not silently corrupt monitoring) but hooks cannot
influence the sample sequence or the stopping decision, which keeps the
estimate deterministic whatever is watching.

Before the first event the runner calls :meth:`CampaignHooks.bind` with
its merged :class:`~repro.obs.metrics.MetricsRegistry` and tracer, and
chains an :class:`ObsHooks` *ahead* of user hooks — so when a display
hook like :class:`ConsoleProgress` receives ``on_batch``, the registry
already reflects the merged chunk and the hook can render from metrics
instead of poking estimator internals.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.campaign.stopping import StopDecision
from repro.obs.metrics import MetricsRegistry
from repro.sampling.estimator import SsfEstimator


class CampaignHooks:
    """No-op base class; subclass and override what you care about."""

    def bind(self, metrics, tracer=None) -> None:
        """Called once before the first event with the runner's merged
        metrics registry and tracer.  Hooks that render from metrics
        keep the reference; the default implementation ignores it."""

    def on_batch(
        self,
        chunk_index: int,
        n_new: int,
        estimator: SsfEstimator,
        decision: Optional[StopDecision] = None,
    ) -> None:
        """A chunk was merged into the running estimator.

        ``decision`` is the stopping rule's verdict right after the merge
        (carries the rule's current sample target when it has one).
        """

    def on_checkpoint(self, snapshot: dict) -> None:
        """A checkpoint snapshot was durably written."""

    def on_stop(self, decision: StopDecision, estimator: SsfEstimator) -> None:
        """The stopping rule (or the chunk plan) ended the campaign."""


class HookChain(CampaignHooks):
    """Fan one event stream out to several hooks, in order.

    Ordering is part of the contract: for every event, hook ``i``
    completes before hook ``i + 1`` starts — producers of derived state
    (e.g. :class:`ObsHooks` updating the metrics registry) go before
    consumers of it (e.g. :class:`ConsoleProgress`).
    """

    def __init__(self, *hooks: CampaignHooks):
        self.hooks = [h for h in hooks if h is not None]

    def bind(self, metrics, tracer=None) -> None:
        for hook in self.hooks:
            hook.bind(metrics, tracer)

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        for hook in self.hooks:
            hook.on_batch(chunk_index, n_new, estimator, decision)

    def on_checkpoint(self, snapshot) -> None:
        for hook in self.hooks:
            hook.on_checkpoint(snapshot)

    def on_stop(self, decision, estimator) -> None:
        for hook in self.hooks:
            hook.on_stop(decision, estimator)


class ObsHooks(CampaignHooks):
    """Publishes campaign progress into a :class:`MetricsRegistry`.

    Progress metrics (chunks/samples merged, SSF/σ gauges) are
    deterministic: the runner also feeds replayed chunks through this
    hook on resume, so a SIGKILL-resumed campaign converges to the same
    merged values as an uninterrupted one.  Operational events
    (checkpoints, stops) are flagged non-deterministic — how often a run
    checkpointed depends on where it was interrupted.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def bind(self, metrics, tracer=None) -> None:
        if metrics is not None:
            self.metrics = metrics

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        m = self.metrics
        m.counter("campaign_chunks_merged_total").inc()
        m.counter("campaign_samples_merged_total").inc(n_new)
        m.gauge("campaign_n_samples").set(estimator.n_samples)
        m.gauge("campaign_ssf").set(estimator.ssf)
        if estimator.n_samples >= 2:
            m.gauge("campaign_std_error").set(estimator.std_error)
        if decision is not None and decision.target_samples:
            m.gauge("campaign_target_samples").set(decision.target_samples)

    def on_checkpoint(self, snapshot) -> None:
        self.metrics.counter(
            "campaign_checkpoints_total", deterministic=False
        ).inc()

    def on_stop(self, decision, estimator) -> None:
        self.metrics.counter(
            "campaign_stops_total",
            deterministic=False,
            reason=decision.reason,
        ).inc()


class ConsoleProgress(CampaignHooks):
    """Live convergence status for the CLI (one line per refresh).

    Renders the running SSF estimate, the standard error, the merge
    throughput (samples/sec between refreshes), and — when the stopping
    rule publishes one — progress toward its sample target.  Reads from
    the bound metrics registry (kept current by :class:`ObsHooks` ahead
    of it in the runner's chain); the estimator argument is only a
    fallback for standalone use without a registry.
    """

    def __init__(self, stream: Optional[IO[str]] = None, every: int = 1):
        self.stream = stream or sys.stderr
        self.every = max(1, every)
        self._chunks_seen = 0
        self._metrics: Optional[MetricsRegistry] = None
        self._last_render: Optional[tuple] = None  # (perf_counter, n)

    def bind(self, metrics, tracer=None) -> None:
        self._metrics = metrics

    def _progress_values(self, estimator):
        m = self._metrics
        if m is not None and m.value("campaign_samples_merged_total"):
            return (
                int(m.value("campaign_samples_merged_total")),
                m.value("campaign_ssf") or 0.0,
                m.value("campaign_std_error") or 0.0,
            )
        return estimator.n_samples, estimator.ssf, estimator.std_error

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        self._chunks_seen += 1
        if self._chunks_seen % self.every:
            return
        n, ssf, std_error = self._progress_values(estimator)
        msg = f"chunk {chunk_index}: n={n} ssf={ssf:.5f} se={std_error:.2e}"
        now = time.perf_counter()
        if self._last_render is not None:
            then, n_then = self._last_render
            if now > then and n > n_then:
                msg += f" rate={(n - n_then) / (now - then):.0f}/s"
        self._last_render = (now, n)
        target = decision.target_samples if decision else None
        if target:
            pct = 100.0 * min(1.0, n / target)
            msg += f" target~{target} ({pct:.0f}%)"
        print(msg, file=self.stream)

    def on_checkpoint(self, snapshot) -> None:
        print(
            f"checkpoint: n={snapshot.get('n_samples')} "
            f"status={snapshot.get('status')}",
            file=self.stream,
        )

    def on_stop(self, decision, estimator) -> None:
        print(f"stop: {decision.reason}", file=self.stream)
