"""Progress / telemetry hooks for campaign runs.

The runner invokes these callbacks at the three interesting moments of a
campaign's life: a chunk of samples was merged into the estimator, a
checkpoint hit disk, and the stopping rule fired.  Hooks are observational
only — exceptions raised by a hook propagate (a broken telemetry sink
should fail loudly, not silently corrupt monitoring) but hooks cannot
influence the sample sequence or the stopping decision, which keeps the
estimate deterministic whatever is watching.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.campaign.stopping import StopDecision
from repro.sampling.estimator import SsfEstimator


class CampaignHooks:
    """No-op base class; subclass and override what you care about."""

    def on_batch(
        self,
        chunk_index: int,
        n_new: int,
        estimator: SsfEstimator,
        decision: Optional[StopDecision] = None,
    ) -> None:
        """A chunk was merged into the running estimator.

        ``decision`` is the stopping rule's verdict right after the merge
        (carries the rule's current sample target when it has one).
        """

    def on_checkpoint(self, snapshot: dict) -> None:
        """A checkpoint snapshot was durably written."""

    def on_stop(self, decision: StopDecision, estimator: SsfEstimator) -> None:
        """The stopping rule (or the chunk plan) ended the campaign."""


class HookChain(CampaignHooks):
    """Fan one event stream out to several hooks, in order."""

    def __init__(self, *hooks: CampaignHooks):
        self.hooks = [h for h in hooks if h is not None]

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        for hook in self.hooks:
            hook.on_batch(chunk_index, n_new, estimator, decision)

    def on_checkpoint(self, snapshot) -> None:
        for hook in self.hooks:
            hook.on_checkpoint(snapshot)

    def on_stop(self, decision, estimator) -> None:
        for hook in self.hooks:
            hook.on_stop(decision, estimator)


class ConsoleProgress(CampaignHooks):
    """Live convergence status for the CLI (one line per refresh).

    Renders the running SSF estimate, the standard error, and — when the
    stopping rule publishes one — progress toward its sample target.
    """

    def __init__(self, stream: Optional[IO[str]] = None, every: int = 1):
        self.stream = stream or sys.stderr
        self.every = max(1, every)
        self._chunks_seen = 0

    def on_batch(self, chunk_index, n_new, estimator, decision=None) -> None:
        self._chunks_seen += 1
        if self._chunks_seen % self.every:
            return
        msg = (
            f"chunk {chunk_index}: n={estimator.n_samples} "
            f"ssf={estimator.ssf:.5f} "
            f"se={estimator.std_error:.2e}"
        )
        target = decision.target_samples if decision else None
        if target:
            pct = 100.0 * min(1.0, estimator.n_samples / target)
            msg += f" target~{target} ({pct:.0f}%)"
        print(msg, file=self.stream)

    def on_checkpoint(self, snapshot) -> None:
        print(
            f"checkpoint: n={snapshot.get('n_samples')} "
            f"status={snapshot.get('status')}",
            file=self.stream,
        )

    def on_stop(self, decision, estimator) -> None:
        print(f"stop: {decision.reason}", file=self.stream)
