"""Fanin/fanout cone extraction over the unrolled netlist.

Observation 1 of the paper: only the circuitry in the fanin and fanout cones
of the *responding signals* can affect whether a security violation is
flagged, so the sample space is restricted to those cones.  The cones are
computed on the (conceptually) unrolled netlist: a node belongs to the
``i``-th unrolled frame if a bit flip there needs ``i`` register crossings to
reach the responding signal (``i >= 0`` fanin side, ``i < 0`` fanout side).

A node may belong to several frames when reconvergent register paths of
different lengths exist; membership is therefore a set of depths per node.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.graph import Netlist


@dataclass
class UnrolledCones:
    """Cone membership for one responding signal.

    Attributes
    ----------
    responding:
        Node id of the responding signal.
    fanin:
        depth (``>= 0``) -> node ids in that unrolled frame, fanin side.
    fanout:
        depth (``< 0``) -> node ids, fanout side.
    """

    responding: int
    fanin: Dict[int, Set[int]] = field(default_factory=dict)
    fanout: Dict[int, Set[int]] = field(default_factory=dict)

    def frames(self) -> List[int]:
        """All frame indices, fanout (negative) first, ascending."""
        return sorted(self.fanout.keys()) + sorted(self.fanin.keys())

    def nodes_at(self, depth: int) -> Set[int]:
        if depth >= 0:
            return self.fanin.get(depth, set())
        return self.fanout.get(depth, set())

    def all_nodes(self) -> Set[int]:
        out: Set[int] = set()
        for nodes in self.fanin.values():
            out |= nodes
        for nodes in self.fanout.values():
            out |= nodes
        return out

    def depths_of(self, nid: int) -> Set[int]:
        return {
            d
            for mapping in (self.fanin, self.fanout)
            for d, nodes in mapping.items()
            if nid in nodes
        }

    def merge(self, other: "UnrolledCones") -> "UnrolledCones":
        """Union of two cones (multiple responding signals)."""
        merged = UnrolledCones(responding=self.responding)
        for src in (self, other):
            for d, nodes in src.fanin.items():
                merged.fanin.setdefault(d, set()).update(nodes)
            for d, nodes in src.fanout.items():
                merged.fanout.setdefault(d, set()).update(nodes)
        return merged


class ConeExtractor:
    """Breadth-first cone traversal with sequential-depth tracking.

    The traversal crosses a flip-flop by stepping from its Q side to its D
    side (fanin direction) or D side to Q side (fanout direction); each
    crossing moves one unrolled frame.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._latch_max_cache: Optional[Dict[int, float]] = None

    def extract(
        self,
        responding: int,
        max_fanin_depth: int = 8,
        max_fanout_depth: int = 4,
    ) -> UnrolledCones:
        """Extract fanin and fanout cones around one responding signal."""
        if not 0 <= responding < len(self.netlist):
            raise NetlistError(f"responding node {responding} does not exist")
        cones = UnrolledCones(responding=responding)
        self._walk_fanin(responding, max_fanin_depth, cones)
        self._walk_fanout(responding, max_fanout_depth, cones)
        return cones

    def extract_many(
        self,
        responding: Iterable[int],
        max_fanin_depth: int = 8,
        max_fanout_depth: int = 4,
    ) -> UnrolledCones:
        """Union cone over several responding signals."""
        result: Optional[UnrolledCones] = None
        for rs in responding:
            cone = self.extract(rs, max_fanin_depth, max_fanout_depth)
            result = cone if result is None else result.merge(cone)
        if result is None:
            raise NetlistError("extract_many needs at least one responding signal")
        return result

    def _walk_fanin(self, start: int, max_depth: int, cones: UnrolledCones) -> None:
        # Frame semantics: a node is in frame ``i`` iff a fault there needs
        # to be injected at timing distance ``t = i`` to reach the
        # responding signal.  A transient at a combinational gate latches
        # into its downstream register in the same cycle, so the +1 happens
        # when stepping *into* a register (comb -> DFF boundary), while a
        # register's D-cone shares the register's own frame.
        seen: Set[Tuple[int, int]] = set()
        queue: deque = deque([(start, 0)])
        seen.add((start, 0))
        while queue:
            nid, depth = queue.popleft()
            cones.fanin.setdefault(depth, set()).add(nid)
            node = self.netlist.node(nid)
            for f in node.fanins:
                next_depth = depth + 1 if self.netlist.node(f).is_dff else depth
                if next_depth > max_depth:
                    continue
                if (f, next_depth) not in seen:
                    seen.add((f, next_depth))
                    queue.append((f, next_depth))

    def _walk_fanout(self, start: int, max_depth: int, cones: UnrolledCones) -> None:
        fanouts = self.netlist.fanouts()
        seen: Set[Tuple[int, int]] = set()
        queue: deque = deque([(start, 0)])
        while queue:
            nid, depth = queue.popleft()
            if depth < 0:
                cones.fanout.setdefault(depth, set()).add(nid)
            for consumer in fanouts[nid]:
                cnode = self.netlist.node(consumer)
                # Mirror of the fanin rule: leaving a register towards its
                # consumers moves one frame later (more negative).
                next_depth = depth - 1 if cnode.is_dff else depth
                if next_depth < -max_depth:
                    continue
                if (consumer, next_depth) not in seen:
                    seen.add((consumer, next_depth))
                    queue.append((consumer, next_depth))

    # ------------------------------------------------------------------
    # combinational latching helpers (used for L(g) of comb gates)
    # ------------------------------------------------------------------
    def latching_registers(self, nid: int) -> Set[int]:
        """DFF node ids whose D pin is combinationally reachable from ``nid``.

        These are the registers that can latch a transient generated at the
        given gate within the same cycle.
        """
        fanouts = self.netlist.fanouts()
        seen: Set[int] = set()
        found: Set[int] = set()
        stack = [nid]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for consumer in fanouts[cur]:
                cnode = self.netlist.node(consumer)
                if cnode.is_dff:
                    found.add(consumer)
                elif cnode.kind.is_combinational:
                    stack.append(consumer)
        return found

    def max_over_latching(self, per_dff: Mapping[int, float]) -> Dict[int, float]:
        """For every node, max of ``per_dff`` over its latching registers.

        Computes the paper's ``L(g)`` for combinational gates in one reverse
        topological pass: ``L(g) = max`` error lifetime of the registers in
        the combinational fanout of ``g``.  Nodes that reach no register get
        ``0.0``.
        """
        result: Dict[int, float] = {n.nid: 0.0 for n in self.netlist.nodes}
        fanouts = self.netlist.fanouts()
        order = self.netlist.topo_order()
        # Seed: a node feeding a DFF D pin sees that DFF's value.
        seeds: Dict[int, float] = {}
        for node in self.netlist.nodes:
            if node.is_dff and node.fanins:
                value = per_dff.get(node.nid, 0.0)
                d_pin = node.fanins[0]
                seeds[d_pin] = max(seeds.get(d_pin, 0.0), value)
        sources = [n.nid for n in self.netlist.nodes if n.kind.is_source]
        for nid in list(reversed(order)) + sources:
            best = seeds.get(nid, 0.0)
            for consumer in fanouts[nid]:
                cnode = self.netlist.node(consumer)
                if cnode.kind.is_combinational:
                    best = max(best, result[consumer])
            result[nid] = best
        # DFF nodes themselves report their own lifetime.
        for node in self.netlist.nodes:
            if node.is_dff:
                result[node.nid] = per_dff.get(node.nid, 0.0)
        return result
