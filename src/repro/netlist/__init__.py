"""Gate-level netlist substrate.

This package provides the structural view of the hardware under attack:

* :mod:`repro.netlist.cells` — the standard-cell library (gate kinds, logic
  functions, per-cell delay and area).
* :mod:`repro.netlist.graph` — the :class:`Netlist` container: gates, DFFs,
  ports, topological levelization and structural validation.
* :mod:`repro.netlist.cones` — fanin/fanout cone extraction over the
  *unrolled* netlist (sequential-depth aware), per Observation 1 of the
  paper.
* :mod:`repro.netlist.placement` — a simple grid placer providing the (x, y)
  coordinates the radiation spatial model needs.
"""

from repro.netlist.cells import (
    CellInfo,
    GateKind,
    CELL_LIBRARY,
    eval_gate,
    eval_gate_words,
)
from repro.netlist.graph import Netlist, Node
from repro.netlist.cones import ConeExtractor, UnrolledCones
from repro.netlist.placement import GridPlacer, Placement
from repro.netlist.equiv import EquivalenceResult, check_against_reference, check_equivalence
from repro.netlist.verilog import VerilogEmitter, write_verilog
from repro.netlist.scoap import ScoapResult, compute_scoap

__all__ = [
    "CellInfo",
    "GateKind",
    "CELL_LIBRARY",
    "eval_gate",
    "eval_gate_words",
    "Netlist",
    "Node",
    "ConeExtractor",
    "UnrolledCones",
    "GridPlacer",
    "Placement",
    "EquivalenceResult",
    "check_against_reference",
    "check_equivalence",
    "VerilogEmitter",
    "write_verilog",
    "ScoapResult",
    "compute_scoap",
]
