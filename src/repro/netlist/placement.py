"""Grid placement of netlist cells.

The radiation attack model (Section 3.2, following [18]) needs physical
coordinates: a radiation event at centre ``g`` with radius ``r`` impacts all
gates within the radiated spot.  Real designs come with placement from the
physical-design flow; here we synthesize a placement that preserves the
property the model relies on — *logically related cells sit near each other*
— by placing cells column-by-column in topological-level order, keeping each
register bank contiguous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.utils.rng import SeedLike, as_generator


@dataclass
class Placement:
    """Cell coordinates for one netlist (micrometres)."""

    netlist: Netlist
    x: np.ndarray
    y: np.ndarray
    pitch_um: float

    def position(self, nid: int) -> Tuple[float, float]:
        return float(self.x[nid]), float(self.y[nid])

    def within_radius(self, centre: int, radius_um: float) -> List[int]:
        """Node ids whose cells lie within ``radius_um`` of ``centre``.

        Only physical cells are returned (inputs/constants have no silicon
        footprint and are excluded); the centre cell is always included.
        """
        cx, cy = self.position(centre)
        d2 = (self.x - cx) ** 2 + (self.y - cy) ** 2
        hits = np.nonzero(d2 <= radius_um * radius_um)[0]
        physical = [
            int(nid)
            for nid in hits
            if self.netlist.node(int(nid)).kind.value
            not in ("input", "const0", "const1")
        ]
        if centre not in physical:
            physical.append(centre)
        return physical

    def distance(self, a: int, b: int) -> float:
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(ax - bx, ay - by)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        return (
            float(self.x.min()),
            float(self.y.min()),
            float(self.x.max()),
            float(self.y.max()),
        )


class GridPlacer:
    """Places cells on a regular grid in levelized order.

    Cells are sorted by (topological level, node id) and written into a
    near-square grid column by column, so combinationally adjacent gates end
    up physically adjacent — the locality the multi-gate radiation model
    needs to produce correlated multi-bit upsets.  Flip-flops are placed at
    the level of their D-pin driver (as a real placer interleaves flops
    with the logic feeding them), not at level 0 where being topological
    sources would otherwise strand them.  Optional jitter breaks exact grid
    symmetry.
    """

    def __init__(self, pitch_um: float = 2.0, jitter: float = 0.0, seed: SeedLike = None):
        if pitch_um <= 0:
            raise NetlistError("placement pitch must be positive")
        if not 0 <= jitter < 0.5:
            raise NetlistError("jitter must lie in [0, 0.5) of a pitch")
        self.pitch_um = pitch_um
        self.jitter = jitter
        self._rng = as_generator(seed)

    def place(self, netlist: Netlist) -> Placement:
        n = len(netlist)
        levels = list(netlist.levels())
        for node in netlist.nodes:
            if node.kind is not None and node.is_dff and node.fanins:
                levels[node.nid] = levels[node.fanins[0]]
        order = sorted(range(n), key=lambda nid: (levels[nid], nid))
        side = max(1, math.ceil(math.sqrt(n)))
        x = np.zeros(n, dtype=float)
        y = np.zeros(n, dtype=float)
        for slot, nid in enumerate(order):
            col, row = divmod(slot, side)
            jx = self._rng.uniform(-self.jitter, self.jitter) if self.jitter else 0.0
            jy = self._rng.uniform(-self.jitter, self.jitter) if self.jitter else 0.0
            x[nid] = (col + jx) * self.pitch_um
            y[nid] = (row + jy) * self.pitch_um
        return Placement(netlist=netlist, x=x, y=y, pitch_um=self.pitch_um)
