"""Standard-cell library.

Each gate kind carries a logic function (scalar and word-parallel forms), a
nominal propagation delay, and an area.  Delays and areas are loosely modeled
on a generic 45 nm library; only their *relative* magnitudes matter for the
experiments (transient propagation, latch-window checks, area-overhead
accounting for the hardening study).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class GateKind(enum.Enum):
    """Every node kind a :class:`~repro.netlist.graph.Netlist` can hold."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # fanins (sel, a, b): sel ? b : a
    DFF = "dff"  # fanin (d,); node output is Q

    @property
    def is_combinational(self) -> bool:
        return self not in (
            GateKind.INPUT,
            GateKind.CONST0,
            GateKind.CONST1,
            GateKind.DFF,
        )

    @property
    def is_source(self) -> bool:
        """Nodes whose value is given, not computed, within a cycle."""
        return self in (
            GateKind.INPUT,
            GateKind.CONST0,
            GateKind.CONST1,
            GateKind.DFF,
        )


@dataclass(frozen=True)
class CellInfo:
    """Physical/timing metadata for one gate kind."""

    kind: GateKind
    n_inputs: int
    delay_ps: float
    area_um2: float


# Nominal delays (ps) and areas (um^2); generic-library flavoured.
CELL_LIBRARY: Dict[GateKind, CellInfo] = {
    GateKind.INPUT: CellInfo(GateKind.INPUT, 0, 0.0, 0.0),
    GateKind.CONST0: CellInfo(GateKind.CONST0, 0, 0.0, 0.0),
    GateKind.CONST1: CellInfo(GateKind.CONST1, 0, 0.0, 0.0),
    GateKind.BUF: CellInfo(GateKind.BUF, 1, 18.0, 0.8),
    GateKind.NOT: CellInfo(GateKind.NOT, 1, 12.0, 0.5),
    GateKind.AND: CellInfo(GateKind.AND, 2, 28.0, 1.1),
    GateKind.OR: CellInfo(GateKind.OR, 2, 28.0, 1.1),
    GateKind.NAND: CellInfo(GateKind.NAND, 2, 20.0, 0.8),
    GateKind.NOR: CellInfo(GateKind.NOR, 2, 22.0, 0.8),
    GateKind.XOR: CellInfo(GateKind.XOR, 2, 40.0, 1.6),
    GateKind.XNOR: CellInfo(GateKind.XNOR, 2, 42.0, 1.6),
    GateKind.MUX: CellInfo(GateKind.MUX, 3, 36.0, 1.9),
    GateKind.DFF: CellInfo(GateKind.DFF, 1, 0.0, 4.5),
}

_SCALAR_FUNCS: Dict[GateKind, Callable[..., int]] = {
    GateKind.BUF: lambda a: a,
    GateKind.NOT: lambda a: a ^ 1,
    GateKind.AND: lambda a, b: a & b,
    GateKind.OR: lambda a, b: a | b,
    GateKind.NAND: lambda a, b: (a & b) ^ 1,
    GateKind.NOR: lambda a, b: (a | b) ^ 1,
    GateKind.XOR: lambda a, b: a ^ b,
    GateKind.XNOR: lambda a, b: (a ^ b) ^ 1,
    GateKind.MUX: lambda s, a, b: b if s else a,
}


def eval_gate(kind: GateKind, inputs: Sequence[int]) -> int:
    """Evaluate one gate on scalar 0/1 inputs."""
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    func = _SCALAR_FUNCS.get(kind)
    if func is None:
        raise ValueError(f"gate kind {kind} is not combinationally evaluable")
    return func(*inputs) & 1


def eval_gate_words(kind: GateKind, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate one gate bit-parallel over uint64 word arrays.

    Each word array packs 64 independent evaluation contexts (cycles); this
    is the kernel behind the fast switching-signature computation.
    """
    if kind is GateKind.BUF:
        return inputs[0].copy()
    if kind is GateKind.NOT:
        return inputs[0] ^ _ALL_ONES
    if kind is GateKind.AND:
        return inputs[0] & inputs[1]
    if kind is GateKind.OR:
        return inputs[0] | inputs[1]
    if kind is GateKind.NAND:
        return (inputs[0] & inputs[1]) ^ _ALL_ONES
    if kind is GateKind.NOR:
        return (inputs[0] | inputs[1]) ^ _ALL_ONES
    if kind is GateKind.XOR:
        return inputs[0] ^ inputs[1]
    if kind is GateKind.XNOR:
        return (inputs[0] ^ inputs[1]) ^ _ALL_ONES
    if kind is GateKind.MUX:
        sel, a, b = inputs
        return (sel & b) | ((sel ^ _ALL_ONES) & a)
    raise ValueError(f"gate kind {kind} is not combinationally evaluable")


def gate_sensitized(kind: GateKind, inputs: Sequence[int], pin: int) -> bool:
    """Whether flipping input ``pin`` flips the gate output (logical masking).

    Used by the transient propagator: a voltage transient on one input only
    propagates if the side inputs leave the gate sensitized to that pin.
    """
    base = eval_gate(kind, inputs)
    flipped = list(inputs)
    flipped[pin] ^= 1
    return eval_gate(kind, flipped) != base
