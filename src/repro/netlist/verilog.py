"""Structural Verilog emission.

Writes an elaborated netlist as synthesizable gate-level Verilog-2001, so
the designs evaluated here can round-trip into standard EDA flows (lint,
equivalence checking, commercial fault simulators).  One module, one
``always @(posedge clk)`` block for the flops, continuous assigns for the
gates.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, TextIO, Union

from repro.errors import NetlistError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist, group_ports

_BINARY_OPS = {
    GateKind.AND: "&",
    GateKind.OR: "|",
    GateKind.XOR: "^",
}
_NEGATED_OPS = {
    GateKind.NAND: "&",
    GateKind.NOR: "|",
    GateKind.XNOR: "^",
}


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    ident = "".join(out)
    if not ident or ident[0].isdigit():
        ident = "n_" + ident
    return ident


class VerilogEmitter:
    """Emits one netlist as a structural Verilog module."""

    def __init__(self, netlist: Netlist, module_name: str = None):
        netlist.validate()
        self.netlist = netlist
        self.module_name = _sanitize(module_name or netlist.name)
        self._net: Dict[int, str] = {}
        self._assign_names()

    # ------------------------------------------------------------------
    def _assign_names(self) -> None:
        nl = self.netlist
        for name, nid in nl.inputs.items():
            base, _, idx = name.partition("[")
            if idx:
                self._net[nid] = f"{_sanitize(base)}[{idx.rstrip(']')}]"
            else:
                self._net[nid] = _sanitize(base)
        for reg, bits in nl.registers.items():
            for bit, nid in enumerate(bits):
                self._net[nid] = (
                    f"{_sanitize(reg)}[{bit}]" if len(bits) > 1 else _sanitize(reg)
                )
        for node in nl.nodes:
            if node.nid in self._net:
                continue
            if node.kind is GateKind.CONST0:
                self._net[node.nid] = "1'b0"
            elif node.kind is GateKind.CONST1:
                self._net[node.nid] = "1'b1"
            else:
                self._net[node.nid] = f"n{node.nid}"

    def net(self, nid: int) -> str:
        return self._net[nid]

    # ------------------------------------------------------------------
    def emit(self) -> str:
        nl = self.netlist
        lines: List[str] = []
        input_groups = group_ports(nl.inputs.keys())
        output_groups = group_ports(nl.outputs.keys())

        ports = ["clk", "rst_n"]
        ports += [_sanitize(base) for base in input_groups]
        ports += [f"{_sanitize(base)}_o" for base in output_groups]
        lines.append(f"module {self.module_name} (")
        lines.append("  " + ",\n  ".join(ports))
        lines.append(");")
        lines.append("  input clk;")
        lines.append("  input rst_n;")
        for base, bits in input_groups.items():
            width = len(bits)
            decl = f"  input {'[%d:0] ' % (width - 1) if width > 1 else ''}{_sanitize(base)};"
            lines.append(decl)
        for base, bits in output_groups.items():
            width = len(bits)
            decl = f"  output {'[%d:0] ' % (width - 1) if width > 1 else ''}{_sanitize(base)}_o;"
            lines.append(decl)
        lines.append("")

        for reg, bits in nl.registers.items():
            width = len(bits)
            decl = f"  reg {'[%d:0] ' % (width - 1) if width > 1 else ''}{_sanitize(reg)};"
            lines.append(decl)
        for node in nl.nodes:
            if node.kind.is_combinational:
                lines.append(f"  wire n{node.nid};")
        lines.append("")

        for node in nl.nodes:
            if not node.kind.is_combinational:
                continue
            expr = self._gate_expr(node)
            lines.append(f"  assign n{node.nid} = {expr};")
        lines.append("")

        for base, bits in output_groups.items():
            refs = [self.net(nl.outputs[full]) for _idx, full in bits]
            rhs = refs[0] if len(refs) == 1 else "{" + ", ".join(reversed(refs)) + "}"
            lines.append(f"  assign {_sanitize(base)}_o = {rhs};")
        lines.append("")

        lines.append("  always @(posedge clk or negedge rst_n) begin")
        lines.append("    if (!rst_n) begin")
        for reg, bits in nl.registers.items():
            init = 0
            for bit, nid in enumerate(bits):
                init |= nl.node(nid).init << bit
            width = len(bits)
            lines.append(f"      {_sanitize(reg)} <= {width}'d{init};")
        lines.append("    end else begin")
        for reg, bits in nl.registers.items():
            refs = [self.net(nl.node(nid).fanins[0]) for nid in bits]
            rhs = refs[0] if len(refs) == 1 else "{" + ", ".join(reversed(refs)) + "}"
            lines.append(f"      {_sanitize(reg)} <= {rhs};")
        lines.append("    end")
        lines.append("  end")
        lines.append("")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"

    def _gate_expr(self, node) -> str:
        ins = [self.net(f) for f in node.fanins]
        kind = node.kind
        if kind in _BINARY_OPS:
            return f"{ins[0]} {_BINARY_OPS[kind]} {ins[1]}"
        if kind in _NEGATED_OPS:
            return f"~({ins[0]} {_NEGATED_OPS[kind]} {ins[1]})"
        if kind is GateKind.NOT:
            return f"~{ins[0]}"
        if kind is GateKind.BUF:
            return ins[0]
        if kind is GateKind.MUX:
            sel, a, b = ins
            return f"{sel} ? {b} : {a}"
        raise NetlistError(f"cannot emit Verilog for {kind}")  # pragma: no cover


def write_verilog(
    netlist: Netlist,
    target: Union[str, pathlib.Path, TextIO],
    module_name: str = None,
) -> str:
    """Emit a netlist to a ``.v`` file (or stream); returns the text."""
    text = VerilogEmitter(netlist, module_name).emit()
    if hasattr(target, "write"):
        target.write(text)
    else:
        pathlib.Path(target).write_text(text)
    return text
