"""Simulation-based equivalence checking between netlists.

Used to validate countermeasure rewrites and any hand-modified netlist
against a golden reference: both designs are driven with the same random
stimulus (plus corner patterns) cycle by cycle and compared on their
shared outputs and registers.  This is the light-weight cousin of formal
equivalence checking — probabilistic, but with the corner patterns and a
few hundred random vectors it catches every single-gate functional
difference we have been able to inject (see the mutation tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.netlist.graph import Netlist
from repro.utils.rng import SeedLike, as_generator

# NOTE: repro.gatesim imports repro.netlist, so the LogicEvaluator import
# must be deferred into the functions to avoid a package-import cycle.


@dataclass
class Mismatch:
    """First divergence found between the two designs."""

    cycle: int
    kind: str          # "output" | "register"
    name: str
    golden: int
    candidate: int

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: {self.kind} {self.name!r} "
            f"golden={self.golden:#x} candidate={self.candidate:#x}"
        )


@dataclass
class EquivalenceResult:
    equivalent: bool
    vectors_run: int
    mismatch: Optional[Mismatch] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _corner_words(width: int) -> List[int]:
    mask = (1 << width) - 1
    patterns = {0, mask, 1, mask >> 1, 0xAAAAAAAA & mask, 0x55555555 & mask}
    return sorted(patterns)


def check_equivalence(
    golden: Netlist,
    candidate: Netlist,
    n_vectors: int = 300,
    n_sequences: int = 8,
    seed: SeedLike = 0,
) -> EquivalenceResult:
    """Compare two netlists over shared ports and registers.

    The designs must have identical input ports and register manifests;
    outputs are compared on the intersection of their output names.
    Stimulus is applied in ``n_sequences`` independent sequences (both
    designs reset to their init state at each sequence start) mixing
    corner patterns with random vectors.
    """
    from repro.gatesim.logic import LogicEvaluator

    ev_golden = LogicEvaluator(golden)
    ev_candidate = LogicEvaluator(candidate)

    if ev_golden.input_ports() != ev_candidate.input_ports():
        raise NetlistError(
            "designs have different input ports: "
            f"{ev_golden.input_ports()} vs {ev_candidate.input_ports()}"
        )
    if golden.register_widths() != candidate.register_widths():
        raise NetlistError("designs have different register manifests")
    shared_outputs = sorted(
        set(ev_golden.output_ports()) & set(ev_candidate.output_ports())
    )

    rng = as_generator(seed)
    inputs = ev_golden.input_ports()
    init_state = {
        reg: _init_word(golden, reg) for reg in golden.register_widths()
    }
    vectors_run = 0
    per_sequence = max(1, n_vectors // n_sequences)

    for _seq in range(n_sequences):
        state_g = dict(init_state)
        state_c = dict(init_state)
        for _ in range(per_sequence):
            stimulus = {}
            for name, width in inputs.items():
                if rng.random() < 0.25:
                    corners = _corner_words(width)
                    stimulus[name] = int(corners[rng.integers(0, len(corners))])
                else:
                    stimulus[name] = int(rng.integers(0, 1 << min(width, 62)))
            out_g, next_g = ev_golden.step(stimulus, state_g)
            out_c, next_c = ev_candidate.step(stimulus, state_c)
            vectors_run += 1
            for name in shared_outputs:
                if out_g[name] != out_c[name]:
                    return EquivalenceResult(
                        False,
                        vectors_run,
                        Mismatch(vectors_run, "output", name, out_g[name], out_c[name]),
                    )
            for reg in next_g:
                if next_g[reg] != next_c[reg]:
                    return EquivalenceResult(
                        False,
                        vectors_run,
                        Mismatch(vectors_run, "register", reg, next_g[reg], next_c[reg]),
                    )
            state_g, state_c = next_g, next_c
    return EquivalenceResult(True, vectors_run)


def _init_word(netlist: Netlist, register: str) -> int:
    word = 0
    for bit, nid in enumerate(netlist.registers[register]):
        word |= netlist.node(nid).init << bit
    return word


def check_against_reference(
    netlist: Netlist,
    reference_step,
    n_vectors: int = 300,
    seed: SeedLike = 0,
) -> EquivalenceResult:
    """Compare a netlist against a behavioural reference.

    ``reference_step(inputs, state) -> (outputs, next_state)`` with
    word-level dicts; outputs compared on the reference's returned keys.
    """
    from repro.gatesim.logic import LogicEvaluator

    evaluator = LogicEvaluator(netlist)
    inputs = evaluator.input_ports()
    rng = as_generator(seed)
    state = {reg: _init_word(netlist, reg) for reg in netlist.register_widths()}
    for vector in range(1, n_vectors + 1):
        stimulus = {
            name: int(rng.integers(0, 1 << min(width, 62)))
            for name, width in inputs.items()
        }
        out_hw, next_hw = evaluator.step(stimulus, state)
        out_ref, next_ref = reference_step(stimulus, state)
        for name, value in out_ref.items():
            if out_hw.get(name) != value:
                return EquivalenceResult(
                    False,
                    vector,
                    Mismatch(vector, "output", name, value, out_hw.get(name, -1)),
                )
        for reg, value in next_ref.items():
            if next_hw[reg] != value:
                return EquivalenceResult(
                    False,
                    vector,
                    Mismatch(vector, "register", reg, value, next_hw[reg]),
                )
        state = next_hw
    return EquivalenceResult(True, n_vectors)
