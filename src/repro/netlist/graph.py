"""The gate-level netlist container.

A :class:`Netlist` is a DAG of combinational gates between *sources*
(primary inputs, constants, DFF outputs) and *sinks* (primary outputs, DFF
data inputs).  DFF nodes close sequential loops: their fanin is the D pin,
their node value is the Q pin.

Registers carry a ``(register, bit)`` identity so multi-bit RTL registers map
onto per-bit DFFs — this is the cross-level contract the SSF engine uses to
move state between the behavioural RTL model and the gate-level model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.cells import CELL_LIBRARY, GateKind

_PORT_RE = re.compile(r"^(.*)\[(\d+)\]$")


def group_ports(port_names: Iterable[str]) -> Dict[str, List[Tuple[int, str]]]:
    """Group per-bit port names like ``addr[3]`` into word-level ports.

    Returns ``base -> [(bit_index, full_name), ...]`` sorted by bit index.
    """
    groups: Dict[str, List[Tuple[int, str]]] = {}
    for name in port_names:
        match = _PORT_RE.match(name)
        if match:
            base, idx = match.group(1), int(match.group(2))
        else:
            base, idx = name, 0
        groups.setdefault(base, []).append((idx, name))
    for base in groups:
        groups[base].sort()
    return groups


@dataclass
class Node:
    """One netlist node (gate, source, or flip-flop)."""

    nid: int
    kind: GateKind
    fanins: Tuple[int, ...]
    name: Optional[str] = None
    # For DFF nodes: which RTL register bit this flop implements.
    register: Optional[str] = None
    bit: Optional[int] = None
    init: int = 0

    @property
    def is_dff(self) -> bool:
        return self.kind is GateKind.DFF


class Netlist:
    """A mutable gate-level netlist with structural validation.

    Typical construction goes through :mod:`repro.hdl` elaboration rather
    than by hand, but the API is small enough for direct use in tests:

    >>> nl = Netlist("demo")
    >>> a = nl.add_input("a")
    >>> b = nl.add_input("b")
    >>> g = nl.add_gate(GateKind.AND, a, b, name="g")
    >>> q = nl.add_dff(name="q", register="q", bit=0)
    >>> nl.connect_dff(q, g)
    >>> nl.mark_output("y", q)
    >>> nl.validate()
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.nodes: List[Node] = []
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        # register name -> list of DFF node ids ordered by bit index
        self.registers: Dict[str, List[int]] = {}
        self._fanouts: Optional[List[List[int]]] = None
        self._topo: Optional[List[int]] = None
        self._levels: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._fanouts = None
        self._topo = None
        self._levels = None

    def _new_node(self, node: Node) -> int:
        self.nodes.append(node)
        self._invalidate()
        return node.nid

    def add_input(self, name: str) -> int:
        if name in self.inputs:
            raise NetlistError(f"duplicate input port {name!r}")
        nid = len(self.nodes)
        self.inputs[name] = nid
        return self._new_node(Node(nid, GateKind.INPUT, (), name=name))

    def add_const(self, value: int) -> int:
        kind = GateKind.CONST1 if value else GateKind.CONST0
        nid = len(self.nodes)
        return self._new_node(Node(nid, kind, ()))

    def add_gate(self, kind: GateKind, *fanins: int, name: Optional[str] = None) -> int:
        if not kind.is_combinational:
            raise NetlistError(f"add_gate cannot create {kind} nodes")
        expected = CELL_LIBRARY[kind].n_inputs
        if len(fanins) != expected:
            raise NetlistError(
                f"{kind.value} gate takes {expected} inputs, got {len(fanins)}"
            )
        for f in fanins:
            if not 0 <= f < len(self.nodes):
                raise NetlistError(f"fanin id {f} does not exist")
        nid = len(self.nodes)
        return self._new_node(Node(nid, kind, tuple(fanins), name=name))

    def add_dff(
        self,
        d: Optional[int] = None,
        *,
        name: Optional[str] = None,
        register: Optional[str] = None,
        bit: Optional[int] = None,
        init: int = 0,
    ) -> int:
        """Create a flip-flop; the D pin may be connected later (feedback)."""
        nid = len(self.nodes)
        fanins = (d,) if d is not None else ()
        node = Node(
            nid,
            GateKind.DFF,
            tuple(f for f in fanins if f is not None),
            name=name,
            register=register,
            bit=bit,
            init=init & 1,
        )
        if register is not None:
            bits = self.registers.setdefault(register, [])
            if bit is None:
                raise NetlistError("register DFF needs an explicit bit index")
            while len(bits) <= bit:
                bits.append(-1)
            if bits[bit] != -1:
                raise NetlistError(f"register bit {register}[{bit}] already exists")
            bits[bit] = nid
        return self._new_node(node)

    def connect_dff(self, dff_id: int, d_id: int) -> None:
        node = self.nodes[dff_id]
        if not node.is_dff:
            raise NetlistError(f"node {dff_id} is not a DFF")
        if node.fanins:
            raise NetlistError(f"DFF {dff_id} already has a D connection")
        if not 0 <= d_id < len(self.nodes):
            raise NetlistError(f"fanin id {d_id} does not exist")
        node.fanins = (d_id,)
        self._invalidate()

    def mark_output(self, name: str, nid: int) -> None:
        if name in self.outputs:
            raise NetlistError(f"duplicate output port {name!r}")
        if not 0 <= nid < len(self.nodes):
            raise NetlistError(f"node id {nid} does not exist")
        self.outputs[name] = nid

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, nid: int) -> Node:
        return self.nodes[nid]

    def dffs(self) -> List[Node]:
        return [n for n in self.nodes if n.is_dff]

    def combinational(self) -> List[Node]:
        return [n for n in self.nodes if n.kind.is_combinational]

    def register_widths(self) -> Dict[str, int]:
        """The register manifest: name -> bit width."""
        return {name: len(bits) for name, bits in self.registers.items()}

    def register_dff(self, register: str, bit: int) -> Node:
        try:
            nid = self.registers[register][bit]
        except (KeyError, IndexError):
            raise NetlistError(f"unknown register bit {register}[{bit}]") from None
        if nid < 0:
            raise NetlistError(f"register bit {register}[{bit}] was never created")
        return self.nodes[nid]

    def fanouts(self) -> List[List[int]]:
        """Fanout adjacency (including DFF D pins as consumers)."""
        if self._fanouts is None:
            fo: List[List[int]] = [[] for _ in self.nodes]
            for node in self.nodes:
                for f in node.fanins:
                    fo[f].append(node.nid)
            self._fanouts = fo
        return self._fanouts

    def topo_order(self) -> List[int]:
        """Combinational nodes in topological order (sources excluded).

        DFF Q pins, inputs and constants are treated as level-0 sources; DFF
        D pins are sinks, so sequential loops do not create cycles.
        """
        if self._topo is not None:
            return self._topo
        indeg = [0] * len(self.nodes)
        for node in self.nodes:
            if node.kind.is_combinational:
                indeg[node.nid] = len(node.fanins)
        fanouts = self.fanouts()
        # Sources seed the frontier: their consumers' in-degrees drop.
        ready = [n.nid for n in self.nodes if n.kind.is_source]
        order: List[int] = []
        frontier = list(ready)
        while frontier:
            nid = frontier.pop()
            for consumer in fanouts[nid]:
                cnode = self.nodes[consumer]
                if not cnode.kind.is_combinational:
                    continue
                indeg[consumer] -= 1
                if indeg[consumer] == 0:
                    order.append(consumer)
                    frontier.append(consumer)
        n_comb = sum(1 for n in self.nodes if n.kind.is_combinational)
        if len(order) != n_comb:
            raise NetlistError(
                "combinational cycle detected: "
                f"ordered {len(order)} of {n_comb} gates"
            )
        self._topo = order
        return order

    def levels(self) -> List[int]:
        """Logic depth per node: sources at 0, gates at 1 + max(fanin)."""
        if self._levels is not None:
            return self._levels
        lv = [0] * len(self.nodes)
        for nid in self.topo_order():
            node = self.nodes[nid]
            lv[nid] = 1 + max(lv[f] for f in node.fanins)
        self._levels = lv
        return lv

    # ------------------------------------------------------------------
    # metrics and validation
    # ------------------------------------------------------------------
    def area(self, hardened: Optional[Dict[Tuple[str, int], float]] = None) -> float:
        """Total cell area; ``hardened`` maps register bits to area factors."""
        total = 0.0
        for node in self.nodes:
            cell_area = CELL_LIBRARY[node.kind].area_um2
            if (
                hardened
                and node.is_dff
                and node.register is not None
                and (node.register, node.bit) in hardened
            ):
                cell_area *= hardened[(node.register, node.bit)]
            total += cell_area
        return total

    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind.value] = counts.get(node.kind.value, 0) + 1
        counts["total"] = len(self.nodes)
        counts["combinational"] = sum(
            1 for n in self.nodes if n.kind.is_combinational
        )
        counts["dff"] = sum(1 for n in self.nodes if n.is_dff)
        return counts

    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural problems."""
        for node in self.nodes:
            if node.kind.is_combinational:
                expected = CELL_LIBRARY[node.kind].n_inputs
                if len(node.fanins) != expected:
                    raise NetlistError(
                        f"node {node.nid} ({node.kind.value}) has "
                        f"{len(node.fanins)} fanins, expected {expected}"
                    )
            if node.is_dff and len(node.fanins) != 1:
                raise NetlistError(f"DFF {node.nid} ({node.name}) has no D connection")
            for f in node.fanins:
                if not 0 <= f < len(self.nodes):
                    raise NetlistError(f"node {node.nid} references missing fanin {f}")
        for name, bits in self.registers.items():
            for i, nid in enumerate(bits):
                if nid < 0:
                    raise NetlistError(f"register {name} is missing bit {i}")
        self.topo_order()  # raises on combinational cycles

    def to_dot(self, max_nodes: int = 500) -> str:
        """GraphViz dump of (a prefix of) the netlist, for debugging."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for node in self.nodes[:max_nodes]:
            label = node.name or f"{node.kind.value}{node.nid}"
            shape = "box" if node.is_dff else "ellipse"
            lines.append(f'  n{node.nid} [label="{label}", shape={shape}];')
            for f in node.fanins:
                if f < max_nodes:
                    lines.append(f"  n{f} -> n{node.nid};")
        lines.append("}")
        return "\n".join(lines)
