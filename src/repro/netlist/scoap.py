"""SCOAP testability metrics (controllability / observability).

The classic Sandia Controllability/Observability Analysis Program
measures, per net:

* ``CC0``/``CC1`` — how hard it is to drive the net to 0/1 from the
  inputs (1 for a primary input, growing through gate-specific rules);
* ``CO`` — how hard it is to propagate the net's value to an observation
  point (0 at the observed nets, growing backwards through the side-input
  controllabilities).

Related work on hardware-security vulnerability ([12] in the paper,
Salmani et al.) ranks circuit locations by observability; here the metric
serves two roles: a standalone analysis (``compute_scoap``) and the
observability-weighted *sampling baseline* the importance sampler is
compared against in the ablation bench.

Sequential elements are handled at the combinational abstraction: a DFF's
Q pin counts as a controllable source (cost like an input), and
observability is seeded at whatever observation set the caller passes —
typically the responding signals, so ``CO`` answers "how visible is this
net to the security decision".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.cells import GateKind
from repro.netlist.graph import Netlist

INF = float("inf")


@dataclass
class ScoapResult:
    """Per-node testability numbers."""

    cc0: List[float]
    cc1: List[float]
    co: List[float]

    def controllability(self, nid: int) -> Tuple[float, float]:
        return self.cc0[nid], self.cc1[nid]

    def observability(self, nid: int) -> float:
        return self.co[nid]

    def hardest_to_observe(self, n: int = 10) -> List[Tuple[int, float]]:
        ranked = sorted(
            ((nid, value) for nid, value in enumerate(self.co) if value < INF),
            key=lambda kv: kv[1],
            reverse=True,
        )
        return ranked[:n]


def compute_scoap(
    netlist: Netlist,
    observe: Optional[Iterable[int]] = None,
) -> ScoapResult:
    """Compute CC0/CC1/CO for every node.

    ``observe`` is the observation set for CO (defaults to the netlist's
    output ports plus every DFF D pin, the standard full-scan assumption).
    """
    n = len(netlist)
    cc0 = [INF] * n
    cc1 = [INF] * n

    for node in netlist.nodes:
        if node.kind is GateKind.INPUT or node.kind is GateKind.DFF:
            cc0[node.nid] = 1.0
            cc1[node.nid] = 1.0
        elif node.kind is GateKind.CONST0:
            cc0[node.nid] = 0.0   # already 0; cannot be made 1
        elif node.kind is GateKind.CONST1:
            cc1[node.nid] = 0.0

    for nid in netlist.topo_order():
        node = netlist.node(nid)
        f = node.fanins
        if node.kind is GateKind.BUF:
            cc0[nid] = cc0[f[0]] + 1
            cc1[nid] = cc1[f[0]] + 1
        elif node.kind is GateKind.NOT:
            cc0[nid] = cc1[f[0]] + 1
            cc1[nid] = cc0[f[0]] + 1
        elif node.kind is GateKind.AND:
            cc0[nid] = min(cc0[f[0]], cc0[f[1]]) + 1
            cc1[nid] = cc1[f[0]] + cc1[f[1]] + 1
        elif node.kind is GateKind.NAND:
            cc1[nid] = min(cc0[f[0]], cc0[f[1]]) + 1
            cc0[nid] = cc1[f[0]] + cc1[f[1]] + 1
        elif node.kind is GateKind.OR:
            cc1[nid] = min(cc1[f[0]], cc1[f[1]]) + 1
            cc0[nid] = cc0[f[0]] + cc0[f[1]] + 1
        elif node.kind is GateKind.NOR:
            cc0[nid] = min(cc1[f[0]], cc1[f[1]]) + 1
            cc1[nid] = cc0[f[0]] + cc0[f[1]] + 1
        elif node.kind in (GateKind.XOR, GateKind.XNOR):
            same = min(cc0[f[0]] + cc0[f[1]], cc1[f[0]] + cc1[f[1]]) + 1
            mixed = min(cc0[f[0]] + cc1[f[1]], cc1[f[0]] + cc0[f[1]]) + 1
            if node.kind is GateKind.XOR:
                cc0[nid], cc1[nid] = same, mixed
            else:
                cc0[nid], cc1[nid] = mixed, same
        elif node.kind is GateKind.MUX:
            sel, a, b = f
            cc0[nid] = min(cc0[sel] + cc0[a], cc1[sel] + cc0[b]) + 1
            cc1[nid] = min(cc0[sel] + cc1[a], cc1[sel] + cc1[b]) + 1

    # ------------------------------------------------------------- CO
    co = [INF] * n
    if observe is None:
        observed = set(netlist.outputs.values())
        for node in netlist.nodes:
            if node.is_dff and node.fanins:
                observed.add(node.fanins[0])
    else:
        observed = set(observe)
        bad = [o for o in observed if not 0 <= o < n]
        if bad:
            raise NetlistError(f"observation points outside netlist: {bad[:5]}")
        # Observing a flip-flop means observing what it latches: seed the
        # D pin too, so CO propagates through the combinational cone.
        for nid in list(observed):
            node = netlist.node(nid)
            if node.is_dff and node.fanins:
                observed.add(node.fanins[0])
    for nid in observed:
        co[nid] = 0.0

    for nid in reversed(netlist.topo_order()):
        node = netlist.node(nid)
        if co[nid] is INF:
            continue
        base = co[nid]
        f = node.fanins
        if node.kind in (GateKind.BUF, GateKind.NOT):
            co[f[0]] = min(co[f[0]], base + 1)
        elif node.kind in (GateKind.AND, GateKind.NAND):
            co[f[0]] = min(co[f[0]], base + cc1[f[1]] + 1)
            co[f[1]] = min(co[f[1]], base + cc1[f[0]] + 1)
        elif node.kind in (GateKind.OR, GateKind.NOR):
            co[f[0]] = min(co[f[0]], base + cc0[f[1]] + 1)
            co[f[1]] = min(co[f[1]], base + cc0[f[0]] + 1)
        elif node.kind in (GateKind.XOR, GateKind.XNOR):
            co[f[0]] = min(co[f[0]], base + min(cc0[f[1]], cc1[f[1]]) + 1)
            co[f[1]] = min(co[f[1]], base + min(cc0[f[0]], cc1[f[0]]) + 1)
        elif node.kind is GateKind.MUX:
            sel, a, b = f
            co[a] = min(co[a], base + cc0[sel] + 1)
            co[b] = min(co[b], base + cc1[sel] + 1)
            # observing the select needs the data inputs to differ; use the
            # cheaper of forcing (a=0,b=1) or (a=1,b=0)
            co[sel] = min(
                co[sel],
                base + min(cc0[a] + cc1[b], cc1[a] + cc0[b]) + 1,
            )
    return ScoapResult(cc0=cc0, cc1=cc1, co=co)
