"""repro — Cross-level Monte Carlo framework for system vulnerability
evaluation against fault attack.

A faithful reimplementation of Li, Lai, Chandra & Pan (DAC 2017): a
probabilistic fault-attack model, the System Security Factor (SSF) metric,
a cross-level (RTL + gate) Monte Carlo evaluation engine, and the
pre-characterization-driven importance sampling that makes it converge
orders of magnitude faster than random sampling.

Quick start::

    from repro import (
        build_context, CrossLevelEngine, default_attack_spec,
        ImportanceSampler, illegal_write_benchmark,
    )

    context = build_context(illegal_write_benchmark())
    spec = default_attack_spec(context)
    engine = CrossLevelEngine(context, spec)
    sampler = ImportanceSampler(spec, context.characterization)
    result = engine.evaluate(sampler, n_samples=500, seed=1)
    print(result.summary())

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
of every table and figure of the paper.
"""

from repro.attack import (
    AttackSpec,
    ClockGlitchTechnique,
    RadiationTechnique,
    RadiusDistribution,
    SpatialDistribution,
    TemporalDistribution,
    VoltageGlitchTechnique,
    select_subblock,
)
from repro.core import (
    AnalyticalEvaluator,
    CampaignResult,
    CrossLevelEngine,
    EngineConfig,
    EvaluationContext,
    HardeningStudy,
    OutcomeCategory,
    SampleRecord,
    attribute_ssf,
    build_context,
)
from repro.gatesim import TimingModel
from repro.precharac import (
    CharacterizationConfig,
    SystemCharacterization,
    precharacterize,
)
from repro.sampling import (
    FaninConeSampler,
    ImportanceSampler,
    RandomSampler,
    Sampler,
    SsfEstimator,
)
from repro.soc import (
    BASELINE_VARIANT,
    MpuVariant,
    Soc,
    dma_exfiltration_benchmark,
    illegal_read_benchmark,
    illegal_write_benchmark,
    synthetic_workload,
)

__version__ = "1.0.0"


def default_attack_spec(
    context: EvaluationContext,
    window: int = 50,
    subblock_fraction: float = 0.125,
    concentration: float = 0.0,
    radii_um=(3.0, 5.0, 7.0, 9.0),
    target_filter=None,
    temporal_centre=None,
):
    """The paper's experimental setup: radiation attack, uniform temporal
    window of ``window`` cycles, spatial range over a sub-block of roughly
    ``subblock_fraction`` of the MPU around the responding signals' cones.
    """
    technique = RadiationTechnique(timing=context.timing, target_filter=target_filter)
    seeds = list(context.responding)
    if context.characterization is not None:
        frame0 = context.characterization.omega_nodes(0)
        if frame0:
            seeds = sorted(frame0)
    universe = select_subblock(context.placement, seeds, subblock_fraction)
    targets = None
    if concentration > 0:
        # An informed attacker aims the spot at the cells whose switching
        # correlates most with the responding signals — the best publicly
        # derivable proxy for "the gates that matter".
        targets = _top_correlated_targets(context, set(universe))
    return AttackSpec(
        technique=technique,
        temporal=TemporalDistribution(window=window, centre=temporal_centre),
        spatial=SpatialDistribution(
            universe=universe,
            targets=targets,
            concentration=concentration if targets else 0.0,
        ),
        radius=RadiusDistribution(radii_um=tuple(radii_um)),
    )


def _top_correlated_targets(context, universe, n_targets: int = 32):
    """Highest max-correlation nodes inside the universe (delta-aim set)."""
    if context.characterization is None:
        hits = sorted(set(context.responding) & universe)
        return hits or None
    best = {}
    for (nid, _frame), value in (
        context.characterization.signatures.correlations.items()
    ):
        if nid in universe and value > best.get(nid, 0.0):
            best[nid] = value
    ranked = sorted(best, key=best.get, reverse=True)[:n_targets]
    return sorted(ranked) or None


__all__ = [
    "AttackSpec",
    "RadiationTechnique",
    "ClockGlitchTechnique",
    "VoltageGlitchTechnique",
    "TemporalDistribution",
    "SpatialDistribution",
    "RadiusDistribution",
    "select_subblock",
    "TimingModel",
    "AnalyticalEvaluator",
    "CampaignResult",
    "CrossLevelEngine",
    "EngineConfig",
    "EvaluationContext",
    "HardeningStudy",
    "OutcomeCategory",
    "SampleRecord",
    "attribute_ssf",
    "build_context",
    "CharacterizationConfig",
    "SystemCharacterization",
    "precharacterize",
    "FaninConeSampler",
    "ImportanceSampler",
    "RandomSampler",
    "Sampler",
    "SsfEstimator",
    "Soc",
    "MpuVariant",
    "BASELINE_VARIANT",
    "illegal_write_benchmark",
    "illegal_read_benchmark",
    "dma_exfiltration_benchmark",
    "synthetic_workload",
    "default_attack_spec",
    "__version__",
]
