"""Deterministic replay of logged campaign samples.

Every sample a campaign evaluates has a name in the seed tree:

    root seed ──spawn──> chunk c ──spawn──> sample i of chunk c

(:func:`~repro.campaign.scheduler.chunk_seed_sequence` composed with
:func:`~repro.utils.rng.sample_seed_sequence`).  Given a run directory,
replay locates sample ``n`` of the chunk log, rebuilds that exact RNG
stream, re-draws the attack sample, and re-executes the engine on it —
without running any other sample.  The replayed record must match the
logged one *bit-identically*; a divergence means either the code changed
behaviour since the run or the run's determinism contract is broken.
This gives every future bug report a one-command repro:
``repro replay <run_id> --sample <n>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.campaign.scheduler import chunk_seed_sequence
from repro.campaign.store import RunStore, record_to_dict
from repro.core.results import SampleRecord
from repro.errors import EvaluationError
from repro.utils.rng import as_generator, sample_seed_sequence


@dataclass(frozen=True)
class ReplayedSample:
    """Outcome of replaying one logged sample."""

    run_id: str
    sample_index: int            # global index across the chunk log
    chunk_index: int
    chunk_offset: int            # index within the chunk
    logged: dict                 # serialized record from the log
    replayed: dict               # serialized record from re-execution

    @property
    def bit_identical(self) -> bool:
        return self.logged == self.replayed

    def diff(self) -> List[str]:
        """Names of fields that diverge (empty when bit-identical)."""
        keys = sorted(set(self.logged) | set(self.replayed))
        return [
            k
            for k in keys
            if self.logged.get(k) != self.replayed.get(k)
        ]

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "sample_index": self.sample_index,
            "chunk_index": self.chunk_index,
            "chunk_offset": self.chunk_offset,
            "bit_identical": self.bit_identical,
            "diverging_fields": self.diff(),
            "logged": self.logged,
            "replayed": self.replayed,
        }


def locate_sample(
    store: RunStore, sample_index: int
) -> Tuple[int, int, SampleRecord]:
    """Map a global sample index to ``(chunk_index, offset, record)``.

    Walks the chunk log rather than the spec's chunk plan, so replay
    works on interrupted runs and on chunks an engine-level stop
    truncated — whatever is in the log is addressable.
    """
    if sample_index < 0:
        raise EvaluationError("sample index must be non-negative")
    seen = 0
    for entry in store.replay_chunks():
        if sample_index < seen + len(entry.records):
            offset = sample_index - seen
            return entry.index, offset, entry.records[offset]
        seen += len(entry.records)
    raise EvaluationError(
        f"run {store.run_id!r}: sample {sample_index} out of range "
        f"(log holds {seen} samples)"
    )


def replay_sample(
    store: RunStore,
    sample_index: int,
    engine=None,
    sampler=None,
) -> ReplayedSample:
    """Re-execute one logged sample from its seed lineage.

    ``engine`` / ``sampler`` default to rebuilding the run's spec runtime
    (the CLI path); tests inject already-built ones to skip the context
    build.  The injected runtime must match the spec or the comparison is
    meaningless.
    """
    spec = store.load_spec()
    chunk_index, offset, logged = locate_sample(store, sample_index)
    if engine is None or sampler is None:
        engine, sampler = spec.build_runtime()
    rng = as_generator(
        sample_seed_sequence(chunk_seed_sequence(spec.seed, chunk_index), offset)
    )
    sample = sampler.sample(rng)
    record = engine.run_sample(sample, rng)
    return ReplayedSample(
        run_id=store.run_id,
        sample_index=sample_index,
        chunk_index=chunk_index,
        chunk_offset=offset,
        logged=record_to_dict(logged),
        replayed=record_to_dict(record),
    )


def count_samples(store: RunStore) -> int:
    """Total replayable samples in the chunk log."""
    return sum(len(entry.records) for entry in store.replay_chunks())
