"""Differential harness: exact enumeration vs the Monte Carlo engine.

For each registry design the harness computes the exact SSF by exhaustive
single-bit enumeration, then runs the MC engine under both uniform and
importance sampling with the campaign stopping rule (Chebyshev (ε, δ)
risk target, hard-capped) and the campaign seed tree, and checks:

1. **CI coverage** — the exact SSF lies inside the stopping-rule CI
   (± ε when the risk target fired, the guarantee Section 3.3 provides
   with probability ≥ 1 − δ; ± z·SE when the cap fired first);
2. **per-sample agreement** — the pinpoint technique is deterministic
   given ``(t, centre)``, so every MC record's indicator must equal the
   oracle's truth-table entry for that fault: any mismatch means the two
   evaluation paths (full cross-level vs RTL probe/analytical) disagree;
3. **per-bit success counts** — MC successes grouped by struck bit equal
   the oracle-predicted counts for the drawn fault sequence;
4. **goodness of fit** — a chi-square test that the realized draw counts
   over ``(t, centre)`` match the declared sampling distribution
   (``f`` for uniform, ``g_T · g_{P|T}`` for importance sampling).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign.scheduler import chunk_seed_sequence
from repro.campaign.stopping import BoundedRule, RiskTargetRule
from repro.conformance.registry import BuiltDesign, ConformanceDesign
from repro.core.exhaustive import ExhaustiveResult, enumerate_single_bit_faults
from repro.sampling.estimator import SsfEstimator
from repro.utils.stats import Chi2Result, chi_square_gof


@dataclass(frozen=True)
class DifferentialConfig:
    """Knobs of one differential run (defaults suit the registry designs)."""

    epsilon: float = 0.05        # risk-target absolute error
    delta: float = 0.05          # risk-target failure probability
    min_samples: int = 200       # variance warm-up before the rule may fire
    max_samples: int = 20_000    # hard cap (cap-stop falls back to z·SE CI)
    chunk_size: int = 250        # evaluation granularity (campaign-style)
    seed: int = 7                # root of the chunk/sample seed tree
    z: float = 1.96              # CI quantile when the cap fired first
    gof_alpha: float = 1e-3      # chi-square rejection threshold


@dataclass
class SamplerVerdict:
    """One sampler's differential outcome on one design."""

    sampler: str
    ssf: float
    n_samples: int
    n_success: int
    ci_low: float
    ci_high: float
    ci_kind: str                 # "risk" (±ε guarantee) or "normal" (z·SE)
    stop_reason: str
    covers_exact: bool
    n_outcome_mismatches: int
    per_bit_ok: bool
    per_bit_mc: Dict[str, int] = field(default_factory=dict)
    per_bit_expected: Dict[str, int] = field(default_factory=dict)
    gof: Optional[Chi2Result] = None
    gof_ok: bool = True

    @property
    def passed(self) -> bool:
        return (
            self.covers_exact
            and self.n_outcome_mismatches == 0
            and self.per_bit_ok
            and self.gof_ok
        )

    def to_dict(self) -> dict:
        data = {
            "sampler": self.sampler,
            "ssf": self.ssf,
            "n_samples": self.n_samples,
            "n_success": self.n_success,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "ci_kind": self.ci_kind,
            "stop_reason": self.stop_reason,
            "covers_exact": self.covers_exact,
            "n_outcome_mismatches": self.n_outcome_mismatches,
            "per_bit_ok": self.per_bit_ok,
            "gof_ok": self.gof_ok,
            "passed": self.passed,
        }
        if self.gof is not None:
            data["gof"] = {
                "statistic": self.gof.statistic,
                "dof": self.gof.dof,
                "p_value": self.gof.p_value,
                "n_cells": self.gof.n_cells,
                "n_pooled": self.gof.n_pooled,
            }
        return data


@dataclass
class DifferentialReport:
    """Full differential outcome for one registry design."""

    design: str
    exact_ssf: float
    n_enumerated: int
    enumeration_wall_s: float
    verdicts: List[SamplerVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "exact_ssf": self.exact_ssf,
            "n_enumerated": self.n_enumerated,
            "enumeration_wall_s": self.enumeration_wall_s,
            "passed": self.passed,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def _expected_cell_probs(built: BuiltDesign, sampler) -> Dict[Tuple[int, int], float]:
    """Declared pmf over ``(t, centre)`` cells for the given sampler."""
    spec = built.spec
    probs: Dict[Tuple[int, int], float] = {}
    if hasattr(sampler, "g_P_given_T"):  # importance sampling: g = g_T·g_{P|T}
        for t in spec.temporal.support():
            g_t = sampler.g_T(t)
            if g_t <= 0.0:
                continue
            for centre in spec.spatial.universe:
                p = g_t * sampler.g_P_given_T(centre, t)
                if p > 0.0:
                    probs[(t, centre)] = p
    else:  # uniform sampling draws straight from f
        for t in spec.temporal.support():
            p_t = spec.temporal.pmf(t)
            for centre in spec.spatial.universe:
                probs[(t, centre)] = p_t * spec.spatial.pmf(centre)
    return probs


def _check_sampler(
    built: BuiltDesign,
    exact: ExhaustiveResult,
    name: str,
    sampler,
    config: DifferentialConfig,
) -> SamplerVerdict:
    rule = BoundedRule(
        RiskTargetRule(
            epsilon=config.epsilon,
            delta=config.delta,
            min_samples=config.min_samples,
        ),
        config.max_samples,
    )
    estimator = SsfEstimator(record_history=False)
    records = []
    chunk_index = 0
    while True:
        n = min(config.chunk_size, config.max_samples - len(records))
        result = built.engine.evaluate(
            sampler, n, seed=chunk_seed_sequence(config.seed, chunk_index)
        )
        chunk_index += 1
        for record in result.records:
            estimator.push(record.sample, record.e)
            records.append(record)
        decision = rule.check(estimator)
        if decision.stop:
            break

    # 1. stopping-rule CI coverage of the exact SSF.
    risk_met = "risk target met" in decision.reason
    half = config.epsilon if risk_met else config.z * estimator.std_error
    ci_low, ci_high = estimator.ssf - half, estimator.ssf + half

    # 2 + 3. per-sample and per-bit agreement against the oracle.
    mismatches = 0
    per_bit_mc: Dict[str, int] = {}
    per_bit_expected: Dict[str, int] = {}
    for record in records:
        bit = built.bit_of_cell[record.sample.centre]
        predicted = exact.outcomes[(bit, record.sample.t)]
        label = f"{bit[0]}[{bit[1]}]"
        if record.e:
            per_bit_mc[label] = per_bit_mc.get(label, 0) + 1
        if predicted:
            per_bit_expected[label] = per_bit_expected.get(label, 0) + 1
        if record.e != predicted:
            mismatches += 1

    # 4. realized draw distribution vs its spec.
    observed = Counter((r.sample.t, r.sample.centre) for r in records)
    gof = chi_square_gof(dict(observed), _expected_cell_probs(built, sampler))

    return SamplerVerdict(
        sampler=name,
        ssf=estimator.ssf,
        n_samples=estimator.n_samples,
        n_success=estimator.n_success,
        ci_low=ci_low,
        ci_high=ci_high,
        ci_kind="risk" if risk_met else "normal",
        stop_reason=decision.reason,
        covers_exact=ci_low <= exact.ssf_exact <= ci_high,
        n_outcome_mismatches=mismatches,
        per_bit_ok=per_bit_mc == per_bit_expected,
        per_bit_mc=per_bit_mc,
        per_bit_expected=per_bit_expected,
        gof=gof,
        gof_ok=gof.p_value >= config.gof_alpha,
    )


def build_samplers(built: BuiltDesign):
    """The (name, sampler) pairs the harness compares: uniform draws from
    ``f`` and the paper's two-step importance sampler."""
    from repro.sampling import ImportanceSampler, RandomSampler

    context = built.context
    return (
        ("uniform", RandomSampler(built.spec)),
        (
            "importance",
            ImportanceSampler(
                built.spec,
                context.characterization,
                placement=context.placement,
            ),
        ),
    )


def run_design(
    design: ConformanceDesign,
    config: Optional[DifferentialConfig] = None,
    context=None,
    engine_config=None,
) -> DifferentialReport:
    """Run the full differential check on one registry design.

    ``engine_config`` (an optional :class:`~repro.core.engine.EngineConfig`)
    selects the kernel under test — the batched default or the scalar
    reference path — without changing anything else about the harness.
    """
    config = config or DifferentialConfig()
    built = design.build(context, config=engine_config)
    exact = enumerate_single_bit_faults(
        built.engine,
        bits=list(built.bits),
        timing_distances=list(range(built.window)),
    )
    report = DifferentialReport(
        design=design.name,
        exact_ssf=exact.ssf_exact,
        n_enumerated=exact.n_evaluations,
        enumeration_wall_s=exact.wall_time_s,
    )
    for name, sampler in build_samplers(built):
        report.verdicts.append(
            _check_sampler(built, exact, name, sampler, config)
        )
    return report
