"""Registry of small designs with an affordable exact oracle.

A conformance design restricts the attack model to *pinpoint* single-bit
upsets (:class:`~repro.attack.techniques.PinpointUpsetTechnique`) over an
explicit set of register bits and a short timing window, so the fault
space ``bits × window`` is small enough for exhaustive enumeration to
yield the exact SSF in seconds.  Because the pinpoint technique is
deterministic given ``(t, centre)``, every Monte Carlo record can also be
checked sample-by-sample against the oracle's truth table — a genuine
differential test of the full MC path (RTL restart → gate-level injection
→ writeback → resume) against the independent RTL-probe / analytical
path, not just a statistical comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import EvaluationError

RegisterBit = Tuple[str, int]


@dataclass
class BuiltDesign:
    """A registry design instantiated against a live evaluation context."""

    name: str
    engine: object                      # CrossLevelEngine
    spec: object                        # AttackSpec (pinpoint)
    bits: Tuple[RegisterBit, ...]
    bit_of_cell: Dict[int, RegisterBit]  # spatial centre nid -> register bit
    window: int
    context: object = None


@dataclass(frozen=True)
class ConformanceDesign:
    """One differential-testing target: benchmark + bit set + window."""

    name: str
    description: str
    benchmark: str                      # write | read | dma
    bits: Tuple[RegisterBit, ...]
    window: int
    variant: str = "none"
    max_frame: int = 12                 # reduced pre-characterization depth

    def build_context(self):
        """Build a reduced-characterization context for this design.

        ``max_frame`` must cover the window so the importance sampler has
        correlation evidence at every frame the spec can draw.
        """
        from repro.core.context import build_context
        from repro.precharac.characterization import CharacterizationConfig
        from repro.soc.mpu import MpuVariant
        from repro.soc.programs import (
            dma_exfiltration_benchmark,
            illegal_read_benchmark,
            illegal_write_benchmark,
        )

        benchmarks = {
            "write": illegal_write_benchmark,
            "read": illegal_read_benchmark,
            "dma": dma_exfiltration_benchmark,
        }
        if self.benchmark not in benchmarks:
            raise EvaluationError(f"unknown benchmark {self.benchmark!r}")
        return build_context(
            benchmarks[self.benchmark](),
            mpu_variant=MpuVariant.parse(self.variant),
            charac_config=CharacterizationConfig(
                max_frame=max(self.max_frame, self.window),
                lifetime_horizon=60,
                lifetime_trials=1,
                seed=5,
            ),
        )

    def build(self, context=None, config=None) -> BuiltDesign:
        """Instantiate the engine + pinpoint attack spec.

        ``context`` lets callers inject an already-built (compatible)
        context — the fast test tier reuses the session-scoped small
        context instead of paying a fresh characterization.  ``config``
        is an optional :class:`~repro.core.engine.EngineConfig`, letting
        the differential harness gate on the batched vs scalar kernel.
        """
        from repro.attack.distributions import (
            RadiusDistribution,
            SpatialDistribution,
            TemporalDistribution,
        )
        from repro.attack.spec import AttackSpec
        from repro.attack.techniques import PinpointUpsetTechnique
        from repro.core.engine import CrossLevelEngine

        if context is None:
            context = self.build_context()
        bit_of_cell: Dict[int, RegisterBit] = {}
        for reg, bit in self.bits:
            # register_dff raises NetlistError for a bit the design lacks.
            bit_of_cell[context.netlist.register_dff(reg, bit).nid] = (reg, bit)
        spec = AttackSpec(
            technique=PinpointUpsetTechnique(timing=context.timing),
            temporal=TemporalDistribution(self.window),
            spatial=SpatialDistribution(sorted(bit_of_cell)),
            radius=RadiusDistribution((1.0,)),
        )
        engine = CrossLevelEngine(context, spec, config=config, observe=False)
        return BuiltDesign(
            name=self.name,
            engine=engine,
            spec=spec,
            bits=tuple(self.bits),
            bit_of_cell=bit_of_cell,
            window=self.window,
            context=context,
        )


#: The conformance registry.  ``write-cfg`` is the fast tier (reused by
#: tier-1 tests with the shared small context); the remaining designs
#: vary the benchmark program and the bit census and run in the dedicated
#: CI conformance job / ``repro conformance``.
DESIGNS: Tuple[ConformanceDesign, ...] = (
    ConformanceDesign(
        name="write-cfg",
        description="illegal write, 6 MPU config/violation bits, window 6",
        benchmark="write",
        bits=(
            ("cfg_top0", 12), ("cfg_top0", 13), ("cfg_base5", 3),
            ("cfg_base2", 4), ("cfg_top3", 2), ("viol_addr", 1),
        ),
        window=6,
    ),
    ConformanceDesign(
        name="write-wide",
        description="illegal write, 8 bits incl. permission regs, window 10",
        benchmark="write",
        bits=(
            ("cfg_top0", 12), ("cfg_top0", 13), ("cfg_top3", 2),
            ("cfg_base5", 3), ("cfg_base2", 4), ("cfg_perm1", 2),
            ("viol_addr", 1), ("viol_addr", 2),
        ),
        window=10,
    ),
    ConformanceDesign(
        name="read-cfg",
        description="illegal read, 6 MPU config/violation bits, window 6",
        benchmark="read",
        bits=(
            ("cfg_top0", 12), ("cfg_top0", 13), ("cfg_base5", 3),
            ("cfg_base2", 4), ("cfg_top3", 2), ("viol_addr", 1),
        ),
        window=6,
    ),
)


def design_names() -> Tuple[str, ...]:
    return tuple(d.name for d in DESIGNS)


def get_design(name: str) -> ConformanceDesign:
    for design in DESIGNS:
        if design.name == name:
            return design
    raise EvaluationError(
        f"unknown conformance design {name!r} "
        f"(available: {', '.join(design_names())})"
    )
