"""Surrogate conformance: bound the surrogate-vs-exact SSF error.

The differential harness (:mod:`repro.conformance.differential`) proves
the *exact* MC engine against exhaustive enumeration.  This module runs
the same pinpoint-design oracle against the **surrogate** family: for
each registry design it calibrates a model, evaluates the pure
surrogate and the two-stage screen+confirm engine, and reports the
absolute SSF error of each against the enumerated ground truth.

The pass criterion allows the error a sampling-noise margin on top of
the configured tolerance — the surrogate estimate is itself a Monte
Carlo quantity, so ``|ssf − exact| ≤ tolerance + z·SE`` is the bound a
finite run can actually certify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.campaign.scheduler import chunk_seed_sequence
from repro.conformance.differential import build_samplers
from repro.conformance.registry import DESIGNS, ConformanceDesign
from repro.core.exhaustive import enumerate_single_bit_faults
from repro.surrogate import (
    CalibrationConfig,
    SurrogateEngine,
    TwoStageEngine,
    calibrate,
)


@dataclass(frozen=True)
class SurrogateConformanceConfig:
    """Knobs of one surrogate conformance run."""

    n_samples: int = 4000        # MC budget per engine variant
    tolerance: float = 0.05      # certified |SSF error| bound (abs.)
    z: float = 2.576             # noise-margin quantile (99%)
    seed: int = 7                # seed tree root for the MC runs
    calibration: CalibrationConfig = field(
        default_factory=lambda: CalibrationConfig(n_samples=600)
    )


@dataclass
class SurrogateVerdict:
    """Surrogate-vs-exact outcome for one registry design."""

    design: str
    exact_ssf: float             # exhaustive-oracle ground truth
    n_enumerated: int
    surrogate_ssf: float
    surrogate_error: float       # |surrogate_ssf - exact_ssf|
    surrogate_bound: float       # tolerance + z·SE of the surrogate run
    two_stage_ssf: float
    two_stage_error: float
    two_stage_bound: float
    n_samples: int
    exact_invocations: int       # exact samples the two-stage run spent
    fnr: float                   # calibrated screen false-negative rate
    holdout_coverage: float
    n_cells: int

    @property
    def passed(self) -> bool:
        return (
            self.surrogate_error <= self.surrogate_bound
            and self.two_stage_error <= self.two_stage_bound
        )

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "exact_ssf": self.exact_ssf,
            "n_enumerated": self.n_enumerated,
            "surrogate_ssf": self.surrogate_ssf,
            "surrogate_error": self.surrogate_error,
            "surrogate_bound": self.surrogate_bound,
            "two_stage_ssf": self.two_stage_ssf,
            "two_stage_error": self.two_stage_error,
            "two_stage_bound": self.two_stage_bound,
            "n_samples": self.n_samples,
            "exact_invocations": self.exact_invocations,
            "fnr": self.fnr,
            "holdout_coverage": self.holdout_coverage,
            "n_cells": self.n_cells,
            "passed": self.passed,
        }


@dataclass
class SurrogateConformanceReport:
    """Surrogate error report over the registry designs."""

    verdicts: List[SurrogateVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def max_error(self) -> float:
        errors = [
            max(v.surrogate_error, v.two_stage_error) for v in self.verdicts
        ]
        return max(errors) if errors else 0.0

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "max_error": self.max_error,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def run_surrogate_design(
    design: ConformanceDesign,
    config: Optional[SurrogateConformanceConfig] = None,
    context=None,
) -> SurrogateVerdict:
    """Calibrate + evaluate the surrogate family on one registry design.

    ``context`` lets the fast test tier inject a pre-built compatible
    context, mirroring :func:`~repro.conformance.differential.run_design`.
    """
    config = config or SurrogateConformanceConfig()
    built = design.build(context)
    oracle = enumerate_single_bit_faults(
        built.engine,
        bits=list(built.bits),
        timing_distances=list(range(built.window)),
    )
    sampler = build_samplers(built)[0][1]  # uniform: draws straight from f
    model, report = calibrate(built.engine, sampler, config.calibration)

    surrogate = SurrogateEngine(built.engine, model, observe=False)
    sur_result = surrogate.evaluate(
        sampler, config.n_samples, seed=chunk_seed_sequence(config.seed, 0)
    )
    two_stage = TwoStageEngine(SurrogateEngine(built.engine, model, observe=False))
    two_result = two_stage.evaluate(
        sampler, config.n_samples, seed=chunk_seed_sequence(config.seed, 1)
    )

    sur_err = abs(sur_result.estimator.ssf - oracle.ssf_exact)
    two_err = abs(two_result.estimator.ssf - oracle.ssf_exact)
    return SurrogateVerdict(
        design=design.name,
        exact_ssf=oracle.ssf_exact,
        n_enumerated=oracle.n_evaluations,
        surrogate_ssf=sur_result.estimator.ssf,
        surrogate_error=sur_err,
        surrogate_bound=config.tolerance
        + config.z * sur_result.estimator.std_error,
        two_stage_ssf=two_result.estimator.ssf,
        two_stage_error=two_err,
        two_stage_bound=config.tolerance
        + config.z * two_result.estimator.std_error,
        n_samples=config.n_samples,
        exact_invocations=two_stage.exact_invocations,
        fnr=model.fnr,
        holdout_coverage=report.holdout_coverage,
        n_cells=model.n_cells,
    )


def run_surrogate_suite(
    config: Optional[SurrogateConformanceConfig] = None,
    designs: Optional[Tuple[ConformanceDesign, ...]] = None,
) -> SurrogateConformanceReport:
    """Run the surrogate error check on every registry design."""
    report = SurrogateConformanceReport()
    for design in designs if designs is not None else DESIGNS:
        report.verdicts.append(run_surrogate_design(design, config))
    return report
