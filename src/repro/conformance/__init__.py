"""Correctness tooling: differential testing, invariants, replay.

The paper's central claim is statistical — the cross-level Monte Carlo
SSF estimate converges to the ground truth exhaustive enumeration would
compute (Section 3.3), and importance sampling stays unbiased after
reweighting.  This subsystem turns that claim into an executable gate:

* :mod:`repro.conformance.registry` — small designs where exhaustive
  single-bit enumeration is cheap enough to serve as an exact oracle;
* :mod:`repro.conformance.differential` — runs the oracle and the MC
  engine (uniform + importance sampling) on each registry design and
  checks CI coverage of the exact SSF, per-sample/per-bit outcome
  agreement, and a chi-square goodness-of-fit of the realized sampling
  distribution against its spec;
* :mod:`repro.conformance.replay` — reconstructs any logged campaign
  sample from the chunk log's seed lineage and re-executes it to a
  bit-identical outcome record (``repro replay``);
* :mod:`repro.conformance.surrogate` — calibrates the surrogate engine
  against each pinpoint design and bounds its SSF error (and the
  two-stage engine's) against the exhaustive oracle
  (``repro conformance --surrogate``).
"""

from repro.conformance.differential import (
    DifferentialConfig,
    DifferentialReport,
    SamplerVerdict,
    run_design,
)
from repro.conformance.registry import (
    DESIGNS,
    ConformanceDesign,
    design_names,
    get_design,
)
from repro.conformance.replay import ReplayedSample, locate_sample, replay_sample
from repro.conformance.surrogate import (
    SurrogateConformanceConfig,
    SurrogateConformanceReport,
    SurrogateVerdict,
    run_surrogate_design,
    run_surrogate_suite,
)

__all__ = [
    "DESIGNS",
    "ConformanceDesign",
    "DifferentialConfig",
    "DifferentialReport",
    "ReplayedSample",
    "SamplerVerdict",
    "SurrogateConformanceConfig",
    "SurrogateConformanceReport",
    "SurrogateVerdict",
    "design_names",
    "get_design",
    "locate_sample",
    "replay_sample",
    "run_design",
    "run_surrogate_design",
    "run_surrogate_suite",
]
