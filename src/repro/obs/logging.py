"""Observability logger with one-time warnings and structured records.

A thin veneer over :mod:`logging` so every subsystem warns through the
same ``repro.obs`` channel, plus :func:`warn_once` for configuration
hazards that would otherwise spam once per chunk (e.g. the
``EngineConfig.stop_on_convergence`` / campaign stopping-rule overlap).

:class:`LogBuffer` is the fleet-side companion: a bounded, JSON-able
buffer of structured log records bound to a correlation context (run id,
chunk index, lease id), so a worker's log lines can be shipped back with
its chunk result and land in the coordinator's per-run ``events.jsonl``
with enough context to join them against leases and spans.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set

_LOGGER_NAME = "repro.obs"
_warned_keys: Set[str] = set()
# warn_once is called from scheduler worker threads, HTTP handler
# threads, and the fleet sweeper; the check-then-add on the module
# global must be atomic or two racing callers both fire.
_warned_lock = threading.Lock()


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The shared observability logger (or a child of it)."""
    if name:
        return logging.getLogger(f"{_LOGGER_NAME}.{name}")
    return logging.getLogger(_LOGGER_NAME)


def warn_once(key: str, message: str, logger: Optional[logging.Logger] = None) -> bool:
    """Emit ``message`` as a warning the first time ``key`` is seen.

    Returns True when the warning actually fired (tests use this).
    Thread-safe: concurrent callers with the same key fire exactly once.
    """
    with _warned_lock:
        if key in _warned_keys:
            return False
        _warned_keys.add(key)
    (logger or get_logger()).warning(message)
    return True


def reset_warn_once() -> None:
    """Forget all one-time warning keys (test isolation)."""
    with _warned_lock:
        _warned_keys.clear()


class LogBuffer:
    """Bounded buffer of structured, correlation-ID'd log records.

    Each record is a plain JSON-able dict ``{"t": wall_s, "level": ...,
    "message": ..., **bound_context}``.  Workers bind the lease context
    once per chunk (:meth:`bind`), log through the buffer while
    evaluating, then :meth:`drain` the records into the telemetry
    payload shipped with the chunk result.  Also mirrors every record to
    the ordinary :mod:`logging` channel so local debugging is unchanged.
    """

    def __init__(self, capacity: int = 1000, logger_name: str = "fleet.worker"):
        self.capacity = max(1, capacity)
        self.n_dropped = 0
        self._records: Deque[dict] = deque()
        self._context: Dict[str, object] = {}
        self._logger = get_logger(logger_name)

    def bind(self, **context: object) -> None:
        """Attach correlation fields to every subsequent record."""
        self._context.update(context)

    def unbind(self, *keys: str) -> None:
        for key in keys:
            self._context.pop(key, None)

    def log(self, level: str, message: str, **fields: object) -> dict:
        record = {
            "t": time.time(),
            "level": level,
            "message": message,
            **self._context,
            **fields,
        }
        if len(self._records) >= self.capacity:
            self._records.popleft()
            self.n_dropped += 1
        self._records.append(record)
        self._logger.log(
            getattr(logging, level.upper(), logging.INFO), "%s %s", message, fields
        )
        return record

    def info(self, message: str, **fields: object) -> dict:
        return self.log("info", message, **fields)

    def warning(self, message: str, **fields: object) -> dict:
        return self.log("warning", message, **fields)

    def error(self, message: str, **fields: object) -> dict:
        return self.log("error", message, **fields)

    def records(self) -> List[dict]:
        """Snapshot of the buffered records (oldest first)."""
        return list(self._records)

    def drain(self) -> List[dict]:
        """Return and clear the buffered records."""
        out = list(self._records)
        self._records.clear()
        return out

    def __len__(self) -> int:
        return len(self._records)
