"""Observability logger with one-time warnings.

A thin veneer over :mod:`logging` so every subsystem warns through the
same ``repro.obs`` channel, plus :func:`warn_once` for configuration
hazards that would otherwise spam once per chunk (e.g. the
``EngineConfig.stop_on_convergence`` / campaign stopping-rule overlap).
"""

from __future__ import annotations

import logging
from typing import Optional, Set

_LOGGER_NAME = "repro.obs"
_warned_keys: Set[str] = set()


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The shared observability logger (or a child of it)."""
    if name:
        return logging.getLogger(f"{_LOGGER_NAME}.{name}")
    return logging.getLogger(_LOGGER_NAME)


def warn_once(key: str, message: str, logger: Optional[logging.Logger] = None) -> bool:
    """Emit ``message`` as a warning the first time ``key`` is seen.

    Returns True when the warning actually fired (tests use this).
    """
    if key in _warned_keys:
        return False
    _warned_keys.add(key)
    (logger or get_logger()).warning(message)
    return True


def reset_warn_once() -> None:
    """Forget all one-time warning keys (test isolation)."""
    _warned_keys.clear()
