"""Service-level metrics: queue depth, jobs by state, cache hit ratio.

The evaluation service (:mod:`repro.service`) publishes its operational
state into the same :class:`~repro.obs.metrics.MetricsRegistry` the
campaign layer uses, so ``GET /v1/metrics`` exposes one coherent
Prometheus surface.  Everything here is flagged non-deterministic —
queue depth and hit ratios depend on request arrival order, not on the
Monte Carlo sample stream.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import MetricsRegistry

QUEUE_DEPTH = "service_queue_depth"
JOBS_BY_STATE = "service_jobs"
CACHE_REQUESTS = "service_cache_requests_total"
CACHE_HIT_RATIO = "service_cache_hit_ratio"
JOBS_SUBMITTED = "service_jobs_submitted_total"


def record_cache_request(registry: MetricsRegistry, hit: bool) -> None:
    """Count one submit-time cache lookup and refresh the hit ratio."""
    outcome = "hit" if hit else "miss"
    registry.counter(
        CACHE_REQUESTS, deterministic=False, outcome=outcome
    ).inc()
    hits = registry.value(CACHE_REQUESTS, outcome="hit") or 0
    misses = registry.value(CACHE_REQUESTS, outcome="miss") or 0
    total = hits + misses
    registry.gauge(CACHE_HIT_RATIO, deterministic=False).set(
        hits / total if total else 0.0
    )


def cache_hit_ratio(registry: MetricsRegistry) -> float:
    return registry.value(CACHE_HIT_RATIO) or 0.0


def update_job_gauges(
    registry: MetricsRegistry,
    state_counts: Dict[str, int],
    queue_depth: int,
) -> None:
    """Refresh the jobs-by-state gauges and the queue-depth gauge.

    ``state_counts`` must carry *every* state the service knows (zeros
    included), so a state that just emptied reads 0 instead of a stale
    count.
    """
    registry.gauge(QUEUE_DEPTH, deterministic=False).set(queue_depth)
    for state, count in state_counts.items():
        registry.gauge(
            JOBS_BY_STATE, deterministic=False, state=state
        ).set(count)


def record_submission(registry: MetricsRegistry) -> None:
    registry.counter(JOBS_SUBMITTED, deterministic=False).inc()
