"""Metric recording for the surrogate / multi-fidelity engines.

Metric names (rendered by ``repro obs report`` next to the engine
vocabulary of :mod:`repro.obs.engine_metrics`):

=========================================  =======  ==========================
``surrogate_stage_samples_total{stage}``   counter  samples by pipeline stage
``surrogate_hit_rate``                     gauge    fraction of samples with e=1
``surrogate_screened_total``               counter  alias sum of screen samples
=========================================  =======  ==========================

``stage`` is one of ``screen`` (the surrogate draw answered), ``confirm``
(the exact engine confirmed a surrogate-positive), and ``fallback`` (an
uncovered cell was answered exactly).

Every metric here is flagged **non-deterministic**: stage composition
depends on the calibrated model in use (an operational input, like the
charac cache), not on the persisted record stream, so these counters
must stay out of the deterministic view that
:func:`~repro.obs.engine_metrics.metrics_from_records` rebuild-parity
and cross-worker equality tests compare.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def observe_stage(registry: MetricsRegistry, stage: str) -> None:
    """Count one evaluated sample against its pipeline stage."""
    registry.counter(
        "surrogate_stage_samples_total", deterministic=False, stage=stage
    ).inc()
    if stage == "screen":
        registry.counter(
            "surrogate_screened_total", deterministic=False
        ).inc()


def set_surrogate_gauges(
    registry: MetricsRegistry, n_hits: int, n_samples: int
) -> None:
    """Publish the surrogate hit-rate gauge for one evaluate call."""
    if n_samples > 0:
        registry.gauge("surrogate_hit_rate", deterministic=False).set(
            n_hits / n_samples
        )
