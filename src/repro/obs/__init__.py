"""Observability for the cross-level pipeline (``repro.obs``).

Three concerns, one vocabulary:

* **metrics** — a process-local registry (counters, gauges, fixed-edge
  histograms, top-k summaries) whose serialized snapshots merge exactly
  across worker shards and across interrupt/resume boundaries
  (:mod:`repro.obs.metrics`, :mod:`repro.obs.engine_metrics`);
* **tracing** — span records per engine stage and per campaign event,
  no-op by default, exportable as Chrome ``trace_event`` JSON
  (:mod:`repro.obs.tracing`);
* **reporting** — stage-time breakdowns, masking funnels, and slowest
  samples rendered from a run's ``metrics.jsonl`` alone
  (:mod:`repro.obs.report`), plus the shared obs logger with one-time
  warnings (:mod:`repro.obs.logging`).
"""

from repro.obs.engine_metrics import (
    FUNNEL_STAGES,
    STAGES,
    metrics_from_records,
    observe_record,
    observe_timing,
)
from repro.obs.logging import (
    LogBuffer,
    get_logger,
    reset_warn_once,
    warn_once,
)
from repro.obs.metrics import (
    BIT_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
    TopK,
    deterministic_view,
)
from repro.obs.report import (
    campaign_summary,
    load_metrics_jsonl,
    masking_funnel,
    outcome_rates,
    render_report,
    slowest_samples,
    stage_breakdown,
)
from repro.obs.service_metrics import (
    cache_hit_ratio,
    record_cache_request,
    record_submission,
    update_job_gauges,
)
from repro.obs.sweep_metrics import (
    sweep_cache_hit_ratio,
    update_sweep_gauges,
)
from repro.obs.tracing import (
    NULL_CLOCK,
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    StageClock,
    Tracer,
)

__all__ = [
    "BIT_COUNT_BUCKETS",
    "Counter",
    "FUNNEL_STAGES",
    "Gauge",
    "Histogram",
    "LogBuffer",
    "MetricsRegistry",
    "NULL_CLOCK",
    "NULL_TRACER",
    "NullTracer",
    "SECONDS_BUCKETS",
    "STAGES",
    "SpanEvent",
    "StageClock",
    "TopK",
    "Tracer",
    "cache_hit_ratio",
    "campaign_summary",
    "deterministic_view",
    "get_logger",
    "record_cache_request",
    "record_submission",
    "update_job_gauges",
    "load_metrics_jsonl",
    "masking_funnel",
    "metrics_from_records",
    "observe_record",
    "observe_timing",
    "outcome_rates",
    "render_report",
    "reset_warn_once",
    "slowest_samples",
    "stage_breakdown",
    "sweep_cache_hit_ratio",
    "update_sweep_gauges",
    "warn_once",
]
