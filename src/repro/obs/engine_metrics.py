"""Engine-level metric recording: one vocabulary, two sources.

The *deterministic* metrics (outcome counters, masking funnel, flipped-bit
histogram) are pure functions of the :class:`~repro.core.results.SampleRecord`
stream, so they can be recorded live by the engine **or** recomputed from a
persisted chunk log (:func:`metrics_from_records`) — which is how a resumed
campaign reconstructs bit-identical merged metrics for chunks that ran
before the crash, and how chunk results from uninstrumented engines (test
stubs, old logs) still contribute.

The *wall-clock* metrics (stage/sample seconds, slowest-sample top-k) only
exist when the engine observes live; they are flagged non-deterministic
and excluded from cross-run equality comparisons.

Metric names (the contract rendered by ``repro obs report`` and documented
in ``docs/architecture.md``):

========================================  =========  ==============================
``engine_samples_total``                  counter    samples evaluated
``engine_outcomes_total{category}``       counter    Fig. 5 outcome category
``engine_success_total``                  counter    successful attacks (e = 1)
``engine_pulses_injected_total``          counter    SET pulses injected
``engine_pulses_latched_total``           counter    pulses that reached a latch
``engine_analytical_evals_total``         counter    analytical fast-path hits
``engine_rtl_resumes_total``              counter    full RTL resumes
``engine_funnel_total{stage}``            counter    masking funnel (see FUNNEL_STAGES)
``engine_flipped_bits``                   histogram  latched-wrong bits per sample
``engine_stage_seconds{stage}``           histogram  per-stage wall time
``engine_sample_seconds``                 histogram  whole-sample wall time
``engine_slowest_samples``                topk       slowest samples with attrs
``engine_batch_size``                     histogram  samples per dispatched batch
``engine_batch_fill``                     histogram  uint64 lane occupancy per batch
``engine_baseline_cache_total{outcome}``  counter    cycle-baseline cache hit/miss
``engine_baseline_cache_hit_ratio``       gauge      lifetime cache hit ratio
``engine_batch_seconds``                  histogram  whole-batch wall time
``engine_batch_fallback_total{reason}``   counter    campaigns refused by the batched kernel
``engine_baseline_store_total{outcome}``  counter    persistent baseline store hit/miss/write/rejected
``engine_baseline_store_hit_ratio``       gauge      lifetime persistent-store hit ratio
========================================  =========  ==============================

The batch/cache metrics describe *how* the batched kernel executed, not
*what* it computed: batch composition depends on chunk boundaries and the
cache on engine lifetime (worker count), so all of them are flagged
non-deterministic and excluded from the deterministic view — which is
exactly why a batched and a scalar run of the same spec still compare
equal on :func:`~repro.obs.metrics.deterministic_view`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.results import OutcomeCategory, SampleRecord
from repro.obs.metrics import (
    BIT_COUNT_BUCKETS,
    MetricsRegistry,
    SECONDS_BUCKETS,
)

#: Stages a sample passes through, in funnel order: each row counts the
#: samples that made it *at least* this far into the Fig. 5 flow.
FUNNEL_STAGES: Tuple[str, ...] = (
    "sampled",       # drawn from the strategy
    "in_window",     # injection cycle inside the simulated run
    "injected",      # at least one transient pulse generated
    "latched",       # at least one register bit latched wrong
    "memory_only",   # all faulty bits memory-type (analytical candidates)
    "needs_rtl",     # computation-type bits hit: RTL resume required
    "success",       # malicious operation committed and undetected
)

#: Per-sample engine stages, in pipeline order (span + histogram labels).
STAGES: Tuple[str, ...] = (
    "draw",          # sampling strategy draw
    "restart",       # checkpoint restart + RTL run-to-injection
    "rtl_step",      # stepping the injection cycle(s) at RTL
    "transient",     # transient generation + gate-level propagation + latch
    "writeback",     # latched errors written back into the RTL state
    "classify",      # memory-type vs computation-type classification
    "analytical",    # analytical (no-resume) evaluation
    "rtl_resume",    # resumed RTL simulation to the end of the benchmark
    "compare",       # final-state comparison against the golden outcome
)

SLOWEST_SAMPLES_K = 10

#: Edges for per-dispatch batch sizes (integer-valued observations).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5, 128.5, 256.5,
)

#: Edges for uint64 lane occupancy (size / (64 * words), in (0, 1]).
BATCH_FILL_BUCKETS: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def observe_record(registry: MetricsRegistry, record: SampleRecord) -> None:
    """Record the deterministic metrics of one sample outcome."""
    registry.counter("engine_samples_total").inc()
    registry.counter(
        "engine_outcomes_total", category=record.category.value
    ).inc()
    if record.e:
        registry.counter("engine_success_total").inc()
    if record.n_pulses_injected:
        registry.counter("engine_pulses_injected_total").inc(
            record.n_pulses_injected
        )
    if record.n_pulses_latched:
        registry.counter("engine_pulses_latched_total").inc(
            record.n_pulses_latched
        )
    if record.analytical:
        registry.counter("engine_analytical_evals_total").inc()
    elif record.category is OutcomeCategory.NEEDS_RTL or (
        record.category is OutcomeCategory.MEMORY_ONLY and not record.analytical
    ):
        registry.counter("engine_rtl_resumes_total").inc()

    funnel = registry.counter
    funnel("engine_funnel_total", stage="sampled").inc()
    if record.category is OutcomeCategory.OUT_OF_RANGE:
        return
    funnel("engine_funnel_total", stage="in_window").inc()
    if record.n_pulses_injected:
        funnel("engine_funnel_total", stage="injected").inc()
    if record.flipped_bits:
        funnel("engine_funnel_total", stage="latched").inc()
        registry.histogram(
            "engine_flipped_bits", BIT_COUNT_BUCKETS
        ).observe(len(record.flipped_bits))
    if record.category is OutcomeCategory.MEMORY_ONLY:
        funnel("engine_funnel_total", stage="memory_only").inc()
    elif record.category is OutcomeCategory.NEEDS_RTL:
        funnel("engine_funnel_total", stage="needs_rtl").inc()
    if record.e:
        funnel("engine_funnel_total", stage="success").inc()


def observe_timing(
    registry: MetricsRegistry,
    record: SampleRecord,
    stage_totals: Dict[str, float],
    sample_seconds: float,
) -> None:
    """Record the wall-clock metrics of one observed sample."""
    for stage, seconds in stage_totals.items():
        registry.histogram(
            "engine_stage_seconds", SECONDS_BUCKETS, stage=stage
        ).observe(seconds)
    registry.histogram("engine_sample_seconds", SECONDS_BUCKETS).observe(
        sample_seconds
    )
    registry.topk(
        "engine_slowest_samples", k=SLOWEST_SAMPLES_K, deterministic=False
    ).offer(
        sample_seconds,
        t=record.sample.t,
        centre=record.sample.centre,
        radius_um=record.sample.radius_um,
        category=record.category.value,
    )


def observe_batch(
    registry: MetricsRegistry,
    group_sizes: Iterable[int],
    cache_hits: int,
    cache_misses: int,
) -> None:
    """Record how one run_batch call decomposed into cycle groups.

    ``cache_hits`` / ``cache_misses`` are the deltas this call produced
    (counters sum cleanly across chunks; the ratio gauge reflects the
    registry's running totals).  Everything here depends on chunk
    boundaries and engine lifetime, so it is non-deterministic by
    contract (see the module docstring).
    """
    for size in group_sizes:
        words = (size + 63) // 64
        registry.histogram(
            "engine_batch_size", BATCH_SIZE_BUCKETS, deterministic=False
        ).observe(size)
        registry.histogram(
            "engine_batch_fill", BATCH_FILL_BUCKETS, deterministic=False
        ).observe(size / (64.0 * words))
    hits = registry.counter(
        "engine_baseline_cache_total", deterministic=False, outcome="hit"
    )
    misses = registry.counter(
        "engine_baseline_cache_total", deterministic=False, outcome="miss"
    )
    hits.inc(cache_hits)
    misses.inc(cache_misses)
    total = hits.value + misses.value
    if total:
        registry.gauge(
            "engine_baseline_cache_hit_ratio", deterministic=False
        ).set(hits.value / total)


def observe_batch_fallback(registry: MetricsRegistry, reason: str) -> None:
    """Count one ``evaluate`` call that fell back to the scalar loop.

    ``reason`` names the gate that refused batching (``disabled``,
    ``stop_on_convergence``).  Fallbacks depend on engine configuration,
    not on sample outcomes, so the counter is non-deterministic — a
    batched and a scalar run of the same spec must still compare equal
    on the deterministic view.
    """
    registry.counter(
        "engine_batch_fallback_total", deterministic=False, reason=reason
    ).inc()


def observe_baseline_store(
    registry: MetricsRegistry,
    hits: int,
    misses: int,
    rejected: int = 0,
    writes: int = 0,
) -> None:
    """Record persistent baseline-store traffic deltas for one batch.

    Mirrors :func:`observe_batch`'s cache counters one level down the
    hierarchy: the in-memory LRU fronts the on-disk store, so a store
    hit means "golden simulation skipped across processes".  ``rejected``
    counts artifacts discarded on load because their fingerprint or
    precharacterization version no longer matches (each rejection is
    also a miss).  Store traffic depends on what earlier campaigns left
    on disk, so everything here is non-deterministic.
    """
    if not (hits or misses or rejected or writes):
        return
    hit_counter = registry.counter(
        "engine_baseline_store_total", deterministic=False, outcome="hit"
    )
    miss_counter = registry.counter(
        "engine_baseline_store_total", deterministic=False, outcome="miss"
    )
    hit_counter.inc(hits)
    miss_counter.inc(misses)
    if rejected:
        registry.counter(
            "engine_baseline_store_total", deterministic=False, outcome="rejected"
        ).inc(rejected)
    if writes:
        registry.counter(
            "engine_baseline_store_total", deterministic=False, outcome="write"
        ).inc(writes)
    total = hit_counter.value + miss_counter.value
    if total:
        registry.gauge(
            "engine_baseline_store_hit_ratio", deterministic=False
        ).set(hit_counter.value / total)


def observe_batched_sample(
    registry: MetricsRegistry, record: SampleRecord, seconds: float
) -> None:
    """Offer one batched sample's per-sample wall time to the top-k.

    In the batched regime the draw/restart/transient stages are amortized
    (see :func:`observe_batch_timing`); the classify/resume tail is the
    only genuinely per-sample cost — and it is what makes a sample slow —
    so it is what the slowest-samples table ranks on.
    """
    registry.topk(
        "engine_slowest_samples", k=SLOWEST_SAMPLES_K, deterministic=False
    ).offer(
        seconds,
        t=record.sample.t,
        centre=record.sample.centre,
        radius_um=record.sample.radius_um,
        category=record.category.value,
    )


def observe_batch_timing(
    registry: MetricsRegistry,
    stage_totals: Dict[str, float],
    batch_seconds: float,
    batch_size: int,
) -> None:
    """Record the wall-clock metrics of one batched evaluate call.

    Stage histograms get one coarse observation per batch (the batched
    kernel amortizes stages across samples, so per-sample laps do not
    exist); ``engine_sample_seconds`` records the amortized per-sample
    cost so throughput reporting keeps working on batched runs.
    """
    for stage, seconds in stage_totals.items():
        registry.histogram(
            "engine_stage_seconds", SECONDS_BUCKETS, stage=stage
        ).observe(seconds)
    registry.histogram("engine_batch_seconds", SECONDS_BUCKETS).observe(
        batch_seconds
    )
    if batch_size > 0:
        registry.histogram("engine_sample_seconds", SECONDS_BUCKETS).observe(
            batch_seconds / batch_size
        )


def metrics_from_records(
    records: Iterable[SampleRecord],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Rebuild the deterministic engine metrics from a record stream.

    The replay/fallback path: identical to what a live instrumented engine
    would have recorded, minus wall-clock metrics.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for record in records:
        observe_record(registry, record)
    return registry
