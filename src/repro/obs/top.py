"""Live terminal dashboard for a fleet campaign (``repro top <job>``).

Drives the service's existing read surfaces — the long-poll progress
event stream (``GET /v1/campaigns/<id>/events?poll=1``), the fleet
snapshot (``GET /v1/fleet``), and the job status document — and renders
one screenful per tick:

* per-worker throughput, chunk counts, and last-seen age,
* per-run lease state (done / leased / pending) as a progress bar,
* the SSF estimate with a Wilson interval, updated as chunks merge,
* straggler flags raised by the coordinator's round-trip detector.

The module is split so everything interesting is testable without a
terminal or a service:

* :class:`TopState` folds event/status payloads into plain data,
* :func:`render` is a pure ``state -> str`` function,
* :class:`TopApp` owns the loop, with the client, output stream, and
  clock all injected.

On a real TTY the app repaints in place with ANSI cursor-home + clear;
when stdout is not a TTY (or ``TERM=dumb``), it degrades to appending a
plain one-line summary per tick, so piping ``repro top`` into a file or
running it from CI still yields readable output.  The long-poll wait
itself provides the pacing: a quiet run costs one parked request per
tick, not a busy poll.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional

from repro.utils.stats import wilson_interval

#: Terminal escape: cursor home + clear-to-end (repaint without flicker).
ANSI_REPAINT = "\x1b[H\x1b[J"

#: Fallback frame period when the long-poll returns instantly.
DEFAULT_INTERVAL_S = 1.0


def supports_ansi(stream) -> bool:
    """True when ``stream`` is a TTY that understands escape codes."""
    if os.environ.get("TERM", "") == "dumb":
        return False
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


class TopState:
    """Dashboard model: everything :func:`render` needs, as plain data."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        self.run_id: Optional[str] = None
        self.state: str = "unknown"
        self.n_samples = 0
        self.ssf: Optional[float] = None
        self.chunks: Dict[str, int] = {}
        self.workers: List[dict] = []
        self.stragglers: Dict[str, float] = {}
        self.last_event_seq = 0
        self.ended = False
        self.error: Optional[str] = None
        self.ticks = 0

    # -- fold one payload of each kind --------------------------------
    def apply_status(self, status: dict) -> None:
        self.state = status.get("state", self.state)
        self.run_id = status.get("run_id", self.run_id)
        self.error = status.get("error") or self.error
        live = status.get("n_samples_live") or status.get("n_samples")
        if live:
            self.n_samples = max(self.n_samples, int(live))

    def apply_fleet(self, fleet: dict) -> None:
        self.workers = list(fleet.get("workers", ()))
        for run in fleet.get("runs", ()):
            if run.get("job_id") == self.job_id:
                self.chunks = dict(run.get("chunks", {}))

    def apply_events(self, poll: dict) -> None:
        """Fold one long-poll response (``events`` + ``next_after``)."""
        for item in poll.get("events", ()):
            self._apply_event(item.get("event") or {})
        self.last_event_seq = int(
            poll.get("next_after", self.last_event_seq)
        )
        if poll.get("end"):
            self.ended = True

    def _apply_event(self, event: dict) -> None:
        kind = event.get("type")
        if kind == "progress":
            self.n_samples = max(
                self.n_samples, int(event.get("n_samples", 0))
            )
            if event.get("ssf") is not None:
                self.ssf = float(event["ssf"])
        elif kind == "state":
            self.state = event.get("state", self.state)
        elif kind == "straggler":
            worker = str(event.get("worker"))
            self.stragglers[worker] = float(event.get("roundtrip_s", 0.0))
        elif kind == "end":
            self.ended = True

    # -- derived ------------------------------------------------------
    def ci(self, z: float = 1.96):
        """Wilson interval around the live SSF (display only)."""
        if self.ssf is None or not self.n_samples:
            return None
        successes = round(self.ssf * self.n_samples)
        return wilson_interval(successes, self.n_samples, z=z)


def _progress_bar(done: int, total: int, width: int = 28) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(done, total) / total)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render(state: TopState, width: int = 78) -> str:
    """One full dashboard frame as plain text (no escape codes)."""
    lines = [
        f"repro top — job {state.job_id}"
        + (f"  run {state.run_id}" if state.run_id else ""),
        f"state: {state.state}   samples: {state.n_samples}",
    ]
    if state.ssf is not None:
        ci = state.ci()
        lines.append(
            f"SSF: {state.ssf:.5f}"
            + (f"   95% CI [{ci[0]:.5f}, {ci[1]:.5f}]" if ci else "")
        )
    if state.chunks:
        done = int(state.chunks.get("done", 0))
        total = int(state.chunks.get("total", 0))
        lines.append(
            f"chunks: {_progress_bar(done, total)} "
            f"{done}/{total} done, "
            f"{state.chunks.get('leased', 0)} leased, "
            f"{state.chunks.get('pending', 0)} pending"
        )
    lines.append("")
    if state.workers:
        lines.append(
            f"{'worker':<12} {'chunks':>7} {'samples':>9} "
            f"{'rate/s':>8} {'seen':>6}  flags"
        )
        for info in state.workers:
            name = str(info.get("worker", "?"))
            flag = ""
            if name in state.stragglers:
                flag = f"STRAGGLER ({state.stragglers[name]:.2f}s)"
            lines.append(
                f"{name:<12} {info.get('chunks_completed', 0):>7} "
                f"{info.get('samples_total', 0):>9} "
                f"{info.get('samples_per_s', 0.0):>8.1f} "
                f"{info.get('last_seen_s', 0.0):>5.1f}s  {flag}"
            )
    else:
        lines.append("no workers attached")
    if state.error:
        lines.append(f"error: {state.error}")
    return "\n".join(line[:width] for line in lines)


def render_plain_line(state: TopState) -> str:
    """One appended status line for non-TTY (dumb-terminal) mode."""
    parts = [
        f"[{state.state}]",
        f"samples={state.n_samples}",
    ]
    if state.ssf is not None:
        parts.append(f"ssf={state.ssf:.5f}")
    if state.chunks:
        parts.append(
            f"chunks={state.chunks.get('done', 0)}"
            f"/{state.chunks.get('total', 0)}"
        )
    parts.append(f"workers={len(state.workers)}")
    if state.stragglers:
        parts.append("stragglers=" + ",".join(sorted(state.stragglers)))
    return " ".join(parts)


class TopApp:
    """The ``repro top`` loop: poll, fold, render, repeat until done.

    Every collaborator is injected so tests run the full loop against a
    stub client with zero wall-clock cost: ``client`` needs ``status``,
    ``fleet_status``, and ``events``; ``sleep`` paces non-TTY mode; the
    loop exits when the event stream delivers its ``end`` sentinel or
    the job status turns terminal (belt and braces — a service restart
    can drop the event buffer, and ``repro top`` must still exit).
    """

    def __init__(
        self,
        client,
        job_id: str,
        out=None,
        interval_s: float = DEFAULT_INTERVAL_S,
        ansi: Optional[bool] = None,
        sleep=time.sleep,
        max_ticks: Optional[int] = None,
    ):
        self.client = client
        self.job_id = job_id
        self.out = out if out is not None else sys.stdout
        self.interval_s = interval_s
        self.ansi = supports_ansi(self.out) if ansi is None else ansi
        self.sleep = sleep
        self.max_ticks = max_ticks
        self.state = TopState(job_id)

    # -- one tick -----------------------------------------------------
    def tick(self) -> None:
        self.state.apply_status(self.client.status(self.job_id))
        try:
            self.state.apply_fleet(self.client.fleet_status())
        except Exception:
            # A non-fleet service has no workers to show; the SSF and
            # chunk progress panels still work off the event stream.
            pass
        self.state.apply_events(
            self.client.events(
                self.job_id,
                after=self.state.last_event_seq,
                timeout_s=self.interval_s,
            )
        )
        if self.state.ended:
            # The end sentinel arrived after the status fetch above;
            # refresh once so the final frame shows the terminal state.
            self.state.apply_status(self.client.status(self.job_id))
        self.state.ticks += 1

    def _paint(self) -> None:
        if self.ansi:
            self.out.write(ANSI_REPAINT + render(self.state) + "\n")
        else:
            self.out.write(render_plain_line(self.state) + "\n")
        flush = getattr(self.out, "flush", None)
        if flush:
            flush()

    @property
    def done(self) -> bool:
        from repro.service.jobs import TERMINAL_STATES

        return self.state.ended or self.state.state in TERMINAL_STATES

    def run(self) -> TopState:
        """Loop until the job ends; returns the final state."""
        while True:
            self.tick()
            self._paint()
            if self.done:
                return self.state
            if self.max_ticks and self.state.ticks >= self.max_ticks:
                return self.state
            if not self.ansi:
                # Long-poll already paces a live run; non-TTY mode adds
                # a floor so a chatty stream can't spam the log.
                self.sleep(self.interval_s)
