"""Fleet-level metrics: lease lifecycle, reassignments, worker SLOs.

The fleet coordinator (:mod:`repro.fleet.coordinator`) publishes its
operational state into the service's
:class:`~repro.obs.metrics.MetricsRegistry`, so ``GET /v1/metrics``
exposes one coherent Prometheus surface covering queue, cache, and
fleet.  Everything here is flagged non-deterministic — lease traffic
depends on worker arrival order and wall-clock TTLs, not on the Monte
Carlo sample stream.

The SLO layer tracks three latency distributions: *lease wait* (how
long a worker idled between finishing one chunk and being granted the
next — measured worker-side and shipped with telemetry), *queue wait*
(how long a chunk sat pending before being leased — measured
coordinator-side from the ledger) and *chunk round-trip* (lease grant
to accepted result, per worker).  Prometheus's text format has no
quantiles, so p50/p99 are published as explicit gauges refreshed on
every observation via :meth:`~repro.obs.metrics.Histogram.quantile`.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, SECONDS_BUCKETS

FLEET_WORKERS = "fleet_workers"
FLEET_LEASES_GRANTED = "fleet_leases_granted_total"
FLEET_LEASE_RENEWALS = "fleet_lease_renewals_total"
FLEET_LEASES_EXPIRED = "fleet_leases_expired_total"
FLEET_CHUNKS_REASSIGNED = "fleet_chunks_reassigned_total"
FLEET_CHUNKS_ACCEPTED = "fleet_chunks_accepted_total"
FLEET_RESULTS_DISCARDED = "fleet_late_results_discarded_total"
FLEET_WORKER_RATE = "fleet_worker_samples_per_second"

# SLO histograms (+ derived quantile gauges, suffixed _p50/_p99).
FLEET_LEASE_WAIT = "fleet_lease_wait_seconds"
FLEET_QUEUE_WAIT = "fleet_queue_wait_seconds"
FLEET_ROUNDTRIP = "fleet_chunk_roundtrip_seconds"
FLEET_STRAGGLERS = "fleet_stragglers_detected_total"

# Telemetry-shipping accounting.
FLEET_SPANS_SHIPPED = "fleet_telemetry_spans_total"
FLEET_LOGS_SHIPPED = "fleet_telemetry_log_records_total"

#: Wider than SECONDS_BUCKETS at the top — fleet round-trips include
#: whole chunks of work, which can take minutes on slow benchmarks.
ROUNDTRIP_BUCKETS = SECONDS_BUCKETS + (30.0, 60.0, 300.0)


def record_lease_granted(
    registry: MetricsRegistry, reassigned: bool = False
) -> None:
    registry.counter(FLEET_LEASES_GRANTED, deterministic=False).inc()
    if reassigned:
        registry.counter(FLEET_CHUNKS_REASSIGNED, deterministic=False).inc()


def record_lease_renewed(registry: MetricsRegistry) -> None:
    registry.counter(FLEET_LEASE_RENEWALS, deterministic=False).inc()


def record_leases_expired(registry: MetricsRegistry, n: int) -> None:
    if n:
        registry.counter(FLEET_LEASES_EXPIRED, deterministic=False).inc(n)


def record_chunk_accepted(registry: MetricsRegistry) -> None:
    registry.counter(FLEET_CHUNKS_ACCEPTED, deterministic=False).inc()


def record_result_discarded(registry: MetricsRegistry) -> None:
    registry.counter(FLEET_RESULTS_DISCARDED, deterministic=False).inc()


def update_fleet_depth(registry: MetricsRegistry, n_workers: int) -> None:
    """Gauge of workers seen alive within the liveness window."""
    registry.gauge(FLEET_WORKERS, deterministic=False).set(n_workers)


def update_worker_rate(
    registry: MetricsRegistry, worker: str, samples_per_s: float
) -> None:
    """Per-worker sustained evaluation throughput (samples/sec)."""
    registry.gauge(
        FLEET_WORKER_RATE, deterministic=False, worker=worker
    ).set(samples_per_s)


def remove_worker_rate(registry: MetricsRegistry, worker: str) -> None:
    """Drop an evicted worker's rate series — worker ids embed pid+uuid,
    so retaining series for departed workers grows the exposition
    without bound."""
    registry.remove(FLEET_WORKER_RATE, worker=worker)


# ----------------------------------------------------------------------
# SLO layer
# ----------------------------------------------------------------------
def _observe_with_quantiles(
    registry: MetricsRegistry, name: str, value: float, **labels
) -> None:
    edges = ROUNDTRIP_BUCKETS if name == FLEET_ROUNDTRIP else SECONDS_BUCKETS
    hist = registry.histogram(name, edges, deterministic=False, **labels)
    hist.observe(value)
    for q, suffix in ((0.5, "_p50"), (0.99, "_p99")):
        registry.gauge(name + suffix, deterministic=False, **labels).set(
            hist.quantile(q)
        )


def observe_lease_wait(
    registry: MetricsRegistry, worker: str, seconds: float
) -> None:
    """Worker-side idle time between chunks (shipped via telemetry)."""
    _observe_with_quantiles(registry, FLEET_LEASE_WAIT, seconds, worker=worker)


def observe_queue_wait(registry: MetricsRegistry, seconds: float) -> None:
    """Coordinator-side time a chunk sat pending before being leased."""
    _observe_with_quantiles(registry, FLEET_QUEUE_WAIT, seconds)


def observe_roundtrip(
    registry: MetricsRegistry, worker: str, seconds: float
) -> None:
    """Lease grant to accepted result, per worker."""
    _observe_with_quantiles(registry, FLEET_ROUNDTRIP, seconds, worker=worker)


def record_straggler(registry: MetricsRegistry, worker: str) -> None:
    registry.counter(
        FLEET_STRAGGLERS, deterministic=False, worker=worker
    ).inc()


def record_telemetry_shipped(
    registry: MetricsRegistry, n_spans: int, n_logs: int
) -> None:
    if n_spans:
        registry.counter(FLEET_SPANS_SHIPPED, deterministic=False).inc(n_spans)
    if n_logs:
        registry.counter(FLEET_LOGS_SHIPPED, deterministic=False).inc(n_logs)


def remove_worker_series(registry: MetricsRegistry, worker: str) -> None:
    """Drop every per-worker series on eviction (rate, SLO histograms,
    quantile gauges, straggler counter) so the exposition stays bounded
    as workers churn."""
    remove_worker_rate(registry, worker)
    for name in (
        FLEET_LEASE_WAIT,
        FLEET_ROUNDTRIP,
        FLEET_LEASE_WAIT + "_p50",
        FLEET_LEASE_WAIT + "_p99",
        FLEET_ROUNDTRIP + "_p50",
        FLEET_ROUNDTRIP + "_p99",
        FLEET_STRAGGLERS,
    ):
        registry.remove(name, worker=worker)
