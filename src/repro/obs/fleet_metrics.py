"""Fleet-level metrics: lease lifecycle, reassignments, worker rates.

The fleet coordinator (:mod:`repro.fleet.coordinator`) publishes its
operational state into the service's
:class:`~repro.obs.metrics.MetricsRegistry`, so ``GET /v1/metrics``
exposes one coherent Prometheus surface covering queue, cache, and
fleet.  Everything here is flagged non-deterministic — lease traffic
depends on worker arrival order and wall-clock TTLs, not on the Monte
Carlo sample stream.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

FLEET_WORKERS = "fleet_workers"
FLEET_LEASES_GRANTED = "fleet_leases_granted_total"
FLEET_LEASE_RENEWALS = "fleet_lease_renewals_total"
FLEET_LEASES_EXPIRED = "fleet_leases_expired_total"
FLEET_CHUNKS_REASSIGNED = "fleet_chunks_reassigned_total"
FLEET_CHUNKS_ACCEPTED = "fleet_chunks_accepted_total"
FLEET_RESULTS_DISCARDED = "fleet_late_results_discarded_total"
FLEET_WORKER_RATE = "fleet_worker_samples_per_second"


def record_lease_granted(
    registry: MetricsRegistry, reassigned: bool = False
) -> None:
    registry.counter(FLEET_LEASES_GRANTED, deterministic=False).inc()
    if reassigned:
        registry.counter(FLEET_CHUNKS_REASSIGNED, deterministic=False).inc()


def record_lease_renewed(registry: MetricsRegistry) -> None:
    registry.counter(FLEET_LEASE_RENEWALS, deterministic=False).inc()


def record_leases_expired(registry: MetricsRegistry, n: int) -> None:
    if n:
        registry.counter(FLEET_LEASES_EXPIRED, deterministic=False).inc(n)


def record_chunk_accepted(registry: MetricsRegistry) -> None:
    registry.counter(FLEET_CHUNKS_ACCEPTED, deterministic=False).inc()


def record_result_discarded(registry: MetricsRegistry) -> None:
    registry.counter(FLEET_RESULTS_DISCARDED, deterministic=False).inc()


def update_fleet_depth(registry: MetricsRegistry, n_workers: int) -> None:
    """Gauge of workers seen alive within the liveness window."""
    registry.gauge(FLEET_WORKERS, deterministic=False).set(n_workers)


def update_worker_rate(
    registry: MetricsRegistry, worker: str, samples_per_s: float
) -> None:
    """Per-worker sustained evaluation throughput (samples/sec)."""
    registry.gauge(
        FLEET_WORKER_RATE, deterministic=False, worker=worker
    ).set(samples_per_s)


def remove_worker_rate(registry: MetricsRegistry, worker: str) -> None:
    """Drop an evicted worker's rate series — worker ids embed pid+uuid,
    so retaining series for departed workers grows the exposition
    without bound."""
    registry.remove(FLEET_WORKER_RATE, worker=worker)
