"""Render observability reports from a run's ``metrics.jsonl`` alone.

Everything here consumes the serialized snapshot format of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` — no live registry, no
run store, no engine.  ``repro obs report <run-id>`` and ``campaign
status --metrics`` are thin CLI shims over these functions.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.engine_metrics import FUNNEL_STAGES


def load_metrics_jsonl(path: Union[str, pathlib.Path]) -> List[dict]:
    """Read a ``metrics.jsonl`` file back into a snapshot list."""
    snapshot = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            snapshot.append(json.loads(line))
    return snapshot


def _entries(snapshot: Iterable[dict], name: str) -> List[dict]:
    return [data for data in snapshot if data["name"] == name]


def _scalar(
    snapshot: Iterable[dict], name: str, **labels
) -> Optional[float]:
    for data in _entries(snapshot, name):
        if data["labels"] == {k: str(v) for k, v in labels.items()}:
            return data.get("value")
    return None


def stage_breakdown(snapshot: Iterable[dict]) -> List[dict]:
    """Per-stage wall-time totals from ``engine_stage_seconds``.

    Rows sorted by total time descending, each with the stage's share of
    the summed stage time — the "which stage dominates" view.
    """
    snapshot = list(snapshot)
    rows = []
    for data in _entries(snapshot, "engine_stage_seconds"):
        count = data["count"]
        if not count:
            continue
        rows.append(
            {
                "stage": data["labels"].get("stage", "?"),
                "count": count,
                "total_s": data["sum"],
                "mean_s": data["sum"] / count,
            }
        )
    grand_total = sum(row["total_s"] for row in rows) or 1.0
    for row in rows:
        row["share"] = row["total_s"] / grand_total
    rows.sort(key=lambda row: -row["total_s"])
    return rows


def masking_funnel(snapshot: Iterable[dict]) -> List[Tuple[str, int]]:
    """``(stage, count)`` rows in canonical funnel order."""
    snapshot = list(snapshot)
    counts: Dict[str, int] = {}
    for data in _entries(snapshot, "engine_funnel_total"):
        counts[data["labels"].get("stage", "?")] = int(data["value"])
    return [(stage, counts.get(stage, 0)) for stage in FUNNEL_STAGES]


def outcome_rates(snapshot: Iterable[dict]) -> List[Tuple[str, int, float]]:
    """``(category, count, rate)`` rows from the outcome counters."""
    snapshot = list(snapshot)
    total = _scalar(snapshot, "engine_samples_total") or 0
    rows = []
    for data in _entries(snapshot, "engine_outcomes_total"):
        count = int(data["value"])
        rows.append(
            (
                data["labels"].get("category", "?"),
                count,
                count / total if total else 0.0,
            )
        )
    rows.sort(key=lambda row: -row[1])
    return rows


def slowest_samples(
    snapshot: Iterable[dict], top_n: int = 10
) -> List[dict]:
    """The recorded slowest samples (empty for timing-less snapshots)."""
    for data in _entries(snapshot, "engine_slowest_samples"):
        return data["items"][:top_n]
    return []


def campaign_summary(snapshot: Iterable[dict]) -> List[Tuple[str, str]]:
    snapshot = list(snapshot)
    rows: List[Tuple[str, str]] = []
    n = _scalar(snapshot, "campaign_samples_merged_total")
    if n is not None:
        rows.append(("samples merged", str(int(n))))
    chunks = _scalar(snapshot, "campaign_chunks_merged_total")
    if chunks is not None:
        rows.append(("chunks merged", str(int(chunks))))
    ssf = _scalar(snapshot, "campaign_ssf")
    if ssf is not None:
        rows.append(("SSF", f"{ssf:.5f}"))
    se = _scalar(snapshot, "campaign_std_error")
    if se is not None:
        rows.append(("std error", f"{se:.2e}"))
    return rows


def render_report(
    snapshot: Iterable[dict], top_n: int = 10, title: str = "Run report"
) -> str:
    """The full text report ``repro obs report`` prints."""
    from repro.analysis.reporting import format_table

    snapshot = list(snapshot)
    sections: List[str] = []

    summary = campaign_summary(snapshot)
    if summary:
        sections.append(
            format_table(["quantity", "value"], summary, title=title)
        )
    else:
        sections.append(title)

    stages = stage_breakdown(snapshot)
    if stages:
        sections.append(
            format_table(
                ["stage", "samples", "total (s)", "mean (s)", "share"],
                [
                    [
                        row["stage"],
                        row["count"],
                        f"{row['total_s']:.3f}",
                        f"{row['mean_s']:.2e}",
                        f"{100 * row['share']:.1f} %",
                    ]
                    for row in stages
                ],
                title="Stage-time breakdown",
            )
        )
    else:
        sections.append("(no stage timing recorded)")

    funnel = masking_funnel(snapshot)
    sampled = funnel[0][1] if funnel else 0
    sections.append(
        format_table(
            ["stage", "samples", "of sampled"],
            [
                [
                    stage,
                    count,
                    f"{100 * count / sampled:.1f} %" if sampled else "-",
                ]
                for stage, count in funnel
            ],
            title="Masking funnel",
        )
    )

    outcomes = outcome_rates(snapshot)
    if outcomes:
        sections.append(
            format_table(
                ["outcome", "samples", "rate"],
                [
                    [category, count, f"{100 * rate:.1f} %"]
                    for category, count, rate in outcomes
                ],
                title="Outcome categories",
            )
        )

    slowest = slowest_samples(snapshot, top_n)
    if slowest:
        sections.append(
            format_table(
                ["seconds", "t", "centre", "radius (um)", "outcome"],
                [
                    [
                        f"{item['value']:.4f}",
                        item["labels"].get("t", "?"),
                        item["labels"].get("centre", "?"),
                        item["labels"].get("radius_um", "?"),
                        item["labels"].get("category", "?"),
                    ]
                    for item in slowest
                ],
                title=f"Top {len(slowest)} slowest samples",
            )
        )

    return "\n\n".join(sections)
