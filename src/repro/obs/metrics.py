"""Process-local metrics registry with deterministic shard merging.

Four collector types, all serializable to plain JSON:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — last-written value (chunk-order merges make "last"
  deterministic);
* :class:`Histogram` — *fixed* bucket edges declared at creation time, so
  merging two shards is exact bucket-wise addition (no re-binning, no
  approximation — the property the cross-worker determinism tests pin);
* :class:`TopK` — bounded keep-the-largest summary (slowest samples).

Every collector carries a ``deterministic`` flag: a deterministic metric
is a pure function of the campaign's sample records and therefore must be
bit-identical across worker counts and across interrupt/resume
boundaries.  Wall-clock metrics (any name ending in ``_seconds``) and
operational event counters are flagged non-deterministic and excluded by
:func:`deterministic_view`, which the equality tests compare.

The registry is deliberately process-local and lock-free: worker
processes each own a fresh registry per chunk, serialize it into the
chunk result (:meth:`MetricsRegistry.snapshot`), and the campaign runner
merges the snapshots strictly in chunk-index order
(:meth:`MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: Shared edges for wall-clock stage/sample timings (seconds, log-spaced).
SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

#: Edges for per-sample flipped-bit counts (integer-valued observations).
BIT_COUNT_BUCKETS: Tuple[float, ...] = (0.5, 1.5, 2.5, 4.5, 8.5, 16.5, 32.5)


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _default_deterministic(name: str) -> bool:
    return not name.endswith("_seconds")


class _Metric:
    """Shared identity bits of every collector."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelItems, deterministic: bool):
        self.name = name
        self.labels = labels
        self.deterministic = deterministic

    def _head(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "deterministic": self.deterministic,
        }


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name, labels, deterministic):
        super().__init__(name, labels, deterministic)
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {**self._head(), "value": self.value}

    def merge(self, data: dict) -> None:
        self.value += data["value"]


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name, labels, deterministic):
        super().__init__(name, labels, deterministic)
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {**self._head(), "value": self.value}

    def merge(self, data: dict) -> None:
        # Merges happen in chunk-index order, so last-write-wins is a
        # deterministic reduction.
        if data["value"] is not None:
            self.value = data["value"]


class Histogram(_Metric):
    """Fixed-edge histogram: ``counts[i]`` covers ``value <= edges[i]``,
    with one overflow bin above the last edge."""

    kind = "histogram"

    def __init__(self, name, labels, deterministic, edges: Sequence[float]):
        super().__init__(name, labels, deterministic)
        if not edges or list(edges) != sorted(edges):
            raise ValueError(
                f"histogram {name} needs sorted, non-empty bucket edges"
            )
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by linear interpolation
        within the containing bucket.

        Observations in the overflow bin (above the last edge) clamp to
        the last edge — with fixed edges that is the honest answer, and
        it keeps p99 finite for SLO gauges.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts[:-1]):
            prev = cumulative
            cumulative += n
            if cumulative >= rank and n:
                lo = self.edges[i - 1] if i else 0.0
                hi = self.edges[i]
                return lo + (hi - lo) * ((rank - prev) / n)
        return self.edges[-1]

    def to_dict(self) -> dict:
        return {
            **self._head(),
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, data: dict) -> None:
        if tuple(data["edges"]) != self.edges:
            raise ValueError(
                f"histogram {self.name}: cannot merge mismatched bucket "
                f"edges {tuple(data['edges'])} vs {self.edges}"
            )
        for i, n in enumerate(data["counts"]):
            self.counts[i] += n
        self.sum += data["sum"]
        self.count += data["count"]


class TopK(_Metric):
    """Keeps the ``k`` largest ``(value, labels)`` observations."""

    kind = "topk"

    def __init__(self, name, labels, deterministic, k: int):
        super().__init__(name, labels, deterministic)
        self.k = max(1, int(k))
        self.items: List[dict] = []

    def offer(self, value: float, **item_labels: object) -> None:
        self.items.append(
            {"value": float(value), "labels": {k: v for k, v in item_labels.items()}}
        )
        self._trim()

    def _trim(self) -> None:
        self.items.sort(key=lambda it: (-it["value"], sorted(it["labels"].items())))
        del self.items[self.k:]

    def to_dict(self) -> dict:
        return {**self._head(), "k": self.k, "items": list(self.items)}

    def merge(self, data: dict) -> None:
        self.k = max(self.k, data["k"])
        self.items.extend(data["items"])
        self._trim()


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram, TopK)}


class MetricsRegistry:
    """Create-or-get collectors keyed by ``(name, labels)``."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelItems], _Metric] = {}

    # ------------------------------------------------------------------
    # collector accessors
    # ------------------------------------------------------------------
    def _get(self, cls, name, labels, deterministic, **kwargs):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if deterministic is None:
                deterministic = _default_deterministic(name)
            metric = cls(name, key[1], deterministic, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, deterministic: Optional[bool] = None, **labels
    ) -> Counter:
        return self._get(Counter, name, labels, deterministic)

    def gauge(
        self, name: str, deterministic: Optional[bool] = None, **labels
    ) -> Gauge:
        return self._get(Gauge, name, labels, deterministic)

    def histogram(
        self,
        name: str,
        edges: Sequence[float],
        deterministic: Optional[bool] = None,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels, deterministic, edges=edges)

    def topk(
        self,
        name: str,
        k: int = 10,
        deterministic: Optional[bool] = None,
        **labels,
    ) -> TopK:
        return self._get(TopK, name, labels, deterministic, k=k)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> Optional[float]:
        """Scalar value of a counter/gauge, or ``None`` if absent."""
        metric = self._metrics.get((name, _label_items(labels)))
        if metric is None or not isinstance(metric, (Counter, Gauge)):
            return None
        return metric.value

    def remove(self, name: str, **labels) -> bool:
        """Drop one collector series (e.g. a departed worker's gauge);
        returns whether it existed."""
        return self._metrics.pop((name, _label_items(labels)), None) is not None

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._metrics)

    # ------------------------------------------------------------------
    # snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self, deterministic_only: bool = False) -> List[dict]:
        """JSON-able list of metric dicts, sorted by (name, labels)."""
        out = [
            metric.to_dict()
            for key, metric in sorted(self._metrics.items())
            if not deterministic_only or metric.deterministic
        ]
        return out

    def merge_snapshot(self, snapshot: Iterable[dict]) -> None:
        """Fold a serialized shard into this registry.

        Called strictly in chunk-index order by the campaign runner, which
        makes every reduction (including gauges' last-write-wins and float
        sums) deterministic for a given chunk plan.
        """
        for data in snapshot:
            cls = _KINDS[data["type"]]
            kwargs = {}
            if cls is Histogram:
                kwargs["edges"] = data["edges"]
            elif cls is TopK:
                kwargs["k"] = data["k"]
            metric = self._get(
                cls, data["name"], data["labels"], data["deterministic"],
                **kwargs,
            )
            metric.merge(data)

    @classmethod
    def from_snapshot(cls, snapshot: Iterable[dict]) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        import json

        return "".join(
            json.dumps(data, sort_keys=True) + "\n" for data in self.snapshot()
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition (top-k summaries are skipped)."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for data in self.snapshot():
            name, kind = data["name"], data["type"]
            if kind == "topk":
                continue
            if name not in seen_types:
                prom_kind = "histogram" if kind == "histogram" else kind
                lines.append(f"# TYPE {name} {prom_kind}")
                seen_types[name] = kind
            labels = data["labels"]
            if kind in ("counter", "gauge"):
                value = data["value"]
                lines.append(
                    f"{name}{_prom_labels(labels)} "
                    f"{_prom_number(0 if value is None else value)}"
                )
            else:
                cumulative = 0
                for edge, count in zip(data["edges"], data["counts"]):
                    cumulative += count
                    le = {**labels, "le": _prom_number(edge)}
                    lines.append(
                        f"{name}_bucket{_prom_labels(le)} {cumulative}"
                    )
                cumulative += data["counts"][-1]
                inf = {**labels, "le": "+Inf"}
                lines.append(f"{name}_bucket{_prom_labels(inf)} {cumulative}")
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} "
                    f"{_prom_number(data['sum'])}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {data['count']}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _prom_number(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value)


def deterministic_view(snapshot: Iterable[dict]) -> List[dict]:
    """The subset of a snapshot that must be identical across worker
    counts and interrupt/resume boundaries."""
    return [data for data in snapshot if data["deterministic"]]
