"""Sweep-level metrics: points by state, cache hits, sweep hit ratio.

The sweep coordinator (:mod:`repro.sweep.runner`) publishes its fan-out
progress into the same :class:`~repro.obs.metrics.MetricsRegistry` the
service exposes on ``GET /v1/metrics``, labelled by sweep id so several
concurrent sweeps stay distinguishable.  Everything here is flagged
non-deterministic — point states and hit ratios depend on submission
timing and cache warmth, never on the Monte Carlo estimates.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import MetricsRegistry

SWEEP_POINTS = "sweep_points"
SWEEP_POINTS_TOTAL = "sweep_points_total"
SWEEP_POINTS_CACHED = "sweep_points_cached"
SWEEP_CACHE_HIT_RATIO = "sweep_cache_hit_ratio"

#: Point states the by-state gauge always carries (zeros included, so a
#: state that just emptied reads 0 instead of a stale count).
POINT_STATES = ("queued", "running", "cached", "done", "failed")


def update_sweep_gauges(
    registry: MetricsRegistry,
    sweep_id: str,
    total: int,
    state_counts: Dict[str, int],
    cached: int,
) -> None:
    """Refresh one sweep's point gauges and cache-hit ratio.

    ``cached`` counts points answered from the content-addressed result
    cache at submission; the ratio is cached/total, so a fully warm
    resubmission of the sweep reads 1.0.
    """
    registry.gauge(
        SWEEP_POINTS_TOTAL, deterministic=False, sweep=sweep_id
    ).set(total)
    for state in POINT_STATES:
        registry.gauge(
            SWEEP_POINTS, deterministic=False, sweep=sweep_id, state=state
        ).set(state_counts.get(state, 0))
    registry.gauge(
        SWEEP_POINTS_CACHED, deterministic=False, sweep=sweep_id
    ).set(cached)
    registry.gauge(
        SWEEP_CACHE_HIT_RATIO, deterministic=False, sweep=sweep_id
    ).set(cached / total if total else 0.0)


def sweep_cache_hit_ratio(
    registry: MetricsRegistry, sweep_id: str
) -> float:
    return (
        registry.value(SWEEP_CACHE_HIT_RATIO, sweep=sweep_id) or 0.0
    )
