"""Span-based tracing with a near-zero-overhead no-op default.

The engine and the campaign runner are instrumented against the
:class:`NullTracer` singleton by default: every instrumentation point is
either a no-op method call or guarded by ``tracer.enabled``, so the
uninstrumented hot path stays within the benchmark guard's overhead
budget (``benchmarks/test_obs_overhead.py``).

Opting in (``Tracer()``, or ``--trace`` on ``campaign run``) records
:class:`SpanEvent` entries — name, start, duration, attributes — bounded
by ``max_events`` (oldest kept, surplus counted in ``n_dropped``).
:meth:`Tracer.to_chrome` converts the buffer into the Chrome
``trace_event`` JSON format, loadable in ``chrome://tracing`` / Perfetto.

:class:`StageClock` is the cheap companion used inside
``CrossLevelEngine.run_sample``: one ``perf_counter`` call per stage
boundary, laps collected as ``(stage, start_s, duration_s)`` tuples that
feed both the stage-seconds histograms and (when tracing) per-stage
spans.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SpanEvent:
    """One completed span, in seconds on the ``perf_counter`` clock."""

    name: str
    start_s: float
    duration_s: float
    attrs: Dict[str, object] = field(default_factory=dict)


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a constant-time no-op."""

    enabled = False

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def add_event(self, name, start_s, duration_s, **attrs) -> None:
        pass

    def add_laps(self, laps, **attrs) -> None:
        pass


NULL_TRACER = NullTracer()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._tracer.add_event(
            self.name,
            self._start,
            time.perf_counter() - self._start,
            **self.attrs,
        )
        return False


class Tracer:
    """Recording tracer with a bounded in-memory buffer."""

    enabled = True

    def __init__(self, max_events: int = 200_000):
        self.max_events = max(1, max_events)
        self.events: List[SpanEvent] = []
        self.n_dropped = 0

    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing a code block into one span."""
        return _Span(self, name, attrs)

    def add_event(self, name, start_s, duration_s, **attrs) -> None:
        """Record an already-measured span (explicit timestamps)."""
        if len(self.events) >= self.max_events:
            self.n_dropped += 1
            return
        self.events.append(SpanEvent(name, start_s, duration_s, attrs))

    def add_laps(
        self, laps: List[Tuple[str, float, float]], **attrs
    ) -> None:
        """Record a :class:`StageClock` lap list as one span per lap."""
        for stage, start_s, duration_s in laps:
            self.add_event(stage, start_s, duration_s, **attrs)

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def to_chrome(
        self, pid: Optional[int] = None, tid: int = 0
    ) -> dict:
        """The buffer as a Chrome ``trace_event`` JSON object.

        Complete ("ph": "X") events with microsecond timestamps, suitable
        for ``chrome://tracing`` and Perfetto.
        """
        if pid is None:
            pid = os.getpid()
        trace_events = [
            {
                "name": event.name,
                "ph": "X",
                "ts": round(event.start_s * 1e6, 3),
                "dur": round(event.duration_s * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": event.attrs,
            }
            for event in self.events
        ]
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"n_dropped": self.n_dropped},
        }


class StageClock:
    """Accumulates ``(stage, start_s, duration_s)`` laps per sample."""

    __slots__ = ("laps", "_mark")
    active = True

    def __init__(self):
        self.laps: List[Tuple[str, float, float]] = []
        self._mark = time.perf_counter()

    def lap(self, stage: str) -> None:
        now = time.perf_counter()
        self.laps.append((stage, self._mark, now - self._mark))
        self._mark = now

    def total_seconds(self) -> float:
        return sum(duration for _, _, duration in self.laps)

    def stage_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for stage, _, duration in self.laps:
            totals[stage] = totals.get(stage, 0.0) + duration
        return totals


class _NullClock:
    __slots__ = ()
    active = False

    def lap(self, stage: str) -> None:
        pass


NULL_CLOCK = _NullClock()
