"""Span-based tracing with a near-zero-overhead no-op default.

The engine and the campaign runner are instrumented against the
:class:`NullTracer` singleton by default: every instrumentation point is
either a no-op method call or guarded by ``tracer.enabled``, so the
uninstrumented hot path stays within the benchmark guard's overhead
budget (``benchmarks/test_obs_overhead.py``).

Opting in (``Tracer()``, or ``--trace`` on ``campaign run``) records
:class:`SpanEvent` entries — name, start, duration, attributes — bounded
by ``max_events`` (oldest kept, surplus counted in ``n_dropped``, with a
one-time warning and a ``tracer_events_dropped`` counter when a metrics
registry is attached).  :meth:`Tracer.to_chrome` converts the buffer
into the Chrome ``trace_event`` JSON format, loadable in
``chrome://tracing`` / Perfetto.

Fleet runs span several processes whose ``perf_counter`` clocks are not
comparable; :func:`wall_offset` plus :meth:`Tracer.export_spans` move
spans onto the wall clock at ship time, and :func:`merge_chrome_trace`
stitches per-worker span lanes (synthetic pid per worker, ``M``
metadata naming each lane) and instant annotations (leases, heartbeats,
re-issues) into one merged trace.

:class:`StageClock` is the cheap companion used inside
``CrossLevelEngine.run_sample``: one ``perf_counter`` call per stage
boundary, laps collected as ``(stage, start_s, duration_s)`` tuples that
feed both the stage-seconds histograms and (when tracing) per-stage
spans.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.logging import warn_once


def wall_offset() -> float:
    """Offset converting this process's ``perf_counter`` timestamps to
    wall-clock seconds (``wall = perf + offset``).

    Captured once per shipment; good to well under a millisecond, which
    is plenty for stitching cross-process trace lanes.
    """
    return time.time() - time.perf_counter()


@dataclass
class SpanEvent:
    """One completed span, in seconds on the ``perf_counter`` clock."""

    name: str
    start_s: float
    duration_s: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self, offset_s: float = 0.0) -> dict:
        """JSON-able form, optionally shifted onto another clock."""
        return {
            "name": self.name,
            "start_s": self.start_s + offset_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanEvent":
        return cls(
            name=data["name"],
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            attrs=dict(data.get("attrs") or {}),
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a constant-time no-op."""

    enabled = False

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def add_event(self, name, start_s, duration_s, **attrs) -> None:
        pass

    def add_laps(self, laps, **attrs) -> None:
        pass


NULL_TRACER = NullTracer()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._tracer.add_event(
            self.name,
            self._start,
            time.perf_counter() - self._start,
            **self.attrs,
        )
        return False


class Tracer:
    """Recording tracer with a bounded in-memory buffer.

    Pass ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) to
    surface buffer overflow as a ``tracer_events_dropped`` counter; the
    first drop also warns once so data loss is never invisible.
    """

    enabled = True

    def __init__(self, max_events: int = 200_000, metrics=None):
        self.max_events = max(1, max_events)
        self.events: List[SpanEvent] = []
        self.n_dropped = 0
        self.metrics = metrics
        self._drop_warned = False

    def span(self, name: str, **attrs) -> _Span:
        """Context manager timing a code block into one span."""
        return _Span(self, name, attrs)

    def add_event(self, name, start_s, duration_s, **attrs) -> None:
        """Record an already-measured span (explicit timestamps)."""
        if len(self.events) >= self.max_events:
            self.n_dropped += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "tracer_events_dropped", deterministic=False
                ).inc()
            if not self._drop_warned:
                self._drop_warned = True
                warn_once(
                    f"tracer-events-dropped:{id(self)}",
                    f"tracer buffer full ({self.max_events} events): "
                    "further spans are dropped and counted in "
                    "tracer_events_dropped",
                )
            return
        self.events.append(SpanEvent(name, start_s, duration_s, attrs))

    def add_laps(
        self, laps: List[Tuple[str, float, float]], **attrs
    ) -> None:
        """Record a :class:`StageClock` lap list as one span per lap."""
        for stage, start_s, duration_s in laps:
            self.add_event(stage, start_s, duration_s, **attrs)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_spans(self, offset_s: Optional[float] = None) -> List[dict]:
        """JSON-able span dicts, shifted onto the wall clock by default.

        This is the shipping format fleet workers post back with a chunk
        result; the coordinator's clock differs, so spans must leave the
        process already normalized.
        """
        if offset_s is None:
            offset_s = wall_offset()
        return [event.to_dict(offset_s) for event in self.events]

    def to_chrome(
        self, pid: Optional[int] = None, tid: int = 0
    ) -> dict:
        """The buffer as a Chrome ``trace_event`` JSON object.

        Complete ("ph": "X") events with microsecond timestamps, suitable
        for ``chrome://tracing`` and Perfetto.
        """
        if pid is None:
            pid = os.getpid()
        trace_events = [
            _chrome_complete(event.to_dict(), pid, tid)
            for event in self.events
        ]
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"n_dropped": self.n_dropped},
        }


# ----------------------------------------------------------------------
# merged (multi-lane) Chrome traces
# ----------------------------------------------------------------------
def _chrome_complete(span: dict, pid: int, tid: int) -> dict:
    return {
        "name": span["name"],
        "ph": "X",
        "ts": round(span["start_s"] * 1e6, 3),
        "dur": round(span["duration_s"] * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": dict(span.get("attrs") or {}),
    }


def chrome_instant(
    name: str, t_s: float, pid: int, tid: int = 0, **attrs: object
) -> dict:
    """An ``i`` (instant) trace event — lease grants, heartbeats,
    expiries — pinned to one lane at wall time ``t_s``."""
    return {
        "name": name,
        "ph": "i",
        "s": "t",  # thread-scoped tick mark
        "ts": round(t_s * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": dict(attrs),
    }


def merge_chrome_trace(
    lanes: Sequence[dict],
    instants: Iterable[dict] = (),
    n_dropped: int = 0,
) -> dict:
    """Stitch per-process span lanes into one Chrome trace.

    ``lanes`` is a sequence of ``{"pid": int, "tid": int, "name": str,
    "spans": [span dicts on the wall clock]}``; each lane gets
    ``process_name``/``thread_name`` metadata so Perfetto shows one
    labelled track per worker.  ``instants`` are pre-built events from
    :func:`chrome_instant` (coordinator-side annotations).
    """
    events: List[dict] = []
    for lane in lanes:
        pid = int(lane["pid"])
        tid = int(lane.get("tid", 0))
        name = str(lane.get("name", f"pid-{pid}"))
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
        for span in lane.get("spans", ()):
            events.append(_chrome_complete(span, pid, tid))
    events.extend(instants)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"n_dropped": n_dropped},
    }


class StageClock:
    """Accumulates ``(stage, start_s, duration_s)`` laps per sample."""

    __slots__ = ("laps", "_mark")
    active = True

    def __init__(self):
        self.laps: List[Tuple[str, float, float]] = []
        self._mark = time.perf_counter()

    def lap(self, stage: str) -> None:
        now = time.perf_counter()
        self.laps.append((stage, self._mark, now - self._mark))
        self._mark = now

    def total_seconds(self) -> float:
        return sum(duration for _, _, duration in self.laps)

    def stage_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for stage, _, duration in self.laps:
            totals[stage] = totals.get(stage, 0.0) + duration
        return totals


class _NullClock:
    __slots__ = ()
    active = False

    def lap(self, stage: str) -> None:
        pass


NULL_CLOCK = _NullClock()
