"""Sampler protocol."""

from __future__ import annotations

import abc

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec


class Sampler(abc.ABC):
    """Draws attack parameters ``(t, p)`` and reports importance weights.

    Implementations must guarantee unbiasedness: for any event ``A`` inside
    the *effective* support (where the attack can possibly succeed),
    ``E_g[w · 1_A] = Pr_f[A]``.  Regions where ``g = 0`` but ``f > 0`` are
    only allowed if the success indicator is provably zero there — the
    cone argument of Observation 1.
    """

    def __init__(self, spec: AttackSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> AttackSample:
        """One draw, with ``weight = f(t,p) / g(t,p)``."""
