"""The paper's two-step importance sampling (Section 4).

The sampling distribution decomposes as ``g_{T,P} = g_T · g_{P|T}`` with

    ``ω_i   = Σ_{g ∈ Ω_i} (1 + α · Corr_i(g, rs) · δ(L(g) >= β·i))``
    ``g_T(i) = ω_i / Σ_j ω_j``
    ``g_{P|T}(g | i) ∝ 1 + α · Corr_i(g, rs) · δ(L(g) >= β·i)``

with the spot radius kept uniform.  ``α`` rewards nodes whose switching
correlates with the responding signals; the lifetime gate ``δ(L(g) >= β·i)``
suppresses nodes whose errors cannot survive the ``i`` cycles to the target
cycle.  Both knobs are exposed for the ablation study.

With ``hard_lifetime_gate`` (the default, following the paper's "for the
rest, we know the attack will fail"), nodes failing the lifetime test are
removed from the support altogether instead of merely losing the ``α``
bonus: an error that dies before the target cycle cannot flip the outcome,
so assigning it zero sampling mass keeps the estimator unbiased while
concentrating samples dramatically.

When a :class:`~repro.netlist.placement.Placement` is provided, the
correlation field is additionally *spatially smeared*: a node's effective
``Corr_i`` is the maximum over its physical neighbourhood within the
technique's typical spot radius.  A radiation spot centred on a neutral
cell still flips the critical cell next door, so the sampling mass must
follow neighbourhoods rather than individual cells; the importance weights
stay exact either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec
from repro.errors import SamplingError
from repro.precharac.characterization import SystemCharacterization
from repro.sampling.base import Sampler


def _extend_persistent(
    correlations: Dict[Tuple[int, int], float],
    characterization,
    frames: List[int],
) -> Dict[Tuple[int, int], float]:
    """Persistence extension of the correlation field.

    A node whose error lifetime spans the whole horizon holds its fault
    indefinitely (a memory-type element), so injecting at *any* timing
    distance ``t >= 1`` is equivalent: correlation evidence observed at one
    frame applies at every frame the node belongs to.  This is Observation
    3 applied to the correlation field rather than to the estimator.
    """
    threshold = (
        characterization.config.memory_lifetime_frac
        * characterization.config.lifetime_horizon
    )
    best: Dict[int, float] = {}
    for (nid, _frame), value in correlations.items():
        if characterization.L(nid) >= threshold and value > best.get(nid, 0.0):
            best[nid] = value
    extended = dict(correlations)
    for nid, value in best.items():
        frames_of = characterization.cones.depths_of(nid)
        for frame in frames:
            if frame >= 1 and frame in frames_of:
                key = (nid, frame)
                if extended.get(key, 0.0) < value:
                    extended[key] = value
    return extended


def _smear_correlations(
    correlations: Dict[Tuple[int, int], float],
    placement,
    radius_um: float,
) -> Dict[Tuple[int, int], float]:
    """Spread each (node, frame) correlation to the node's neighbourhood.

    Result: ``corr'[(g, i)] = max over h within radius of corr[(h, i)]``.
    Only nodes that carry correlation are expanded, so this is cheap even
    on large netlists.
    """
    smeared: Dict[Tuple[int, int], float] = dict(correlations)
    neighbour_cache: Dict[int, list] = {}
    for (nid, frame), value in correlations.items():
        if value <= 0.0:
            continue
        if nid not in neighbour_cache:
            neighbour_cache[nid] = placement.within_radius(nid, radius_um)
        for other in neighbour_cache[nid]:
            key = (other, frame)
            if smeared.get(key, 0.0) < value:
                smeared[key] = value
    return smeared


@dataclass(frozen=True)
class _FrameTable:
    nodes: np.ndarray       # candidate centre gates in this frame
    terms: np.ndarray       # unnormalized per-node mass
    probs: np.ndarray       # terms / omega
    omega: float


class ImportanceSampler(Sampler):
    """Pre-characterization-driven importance sampling."""

    def __init__(
        self,
        spec: AttackSpec,
        characterization: SystemCharacterization,
        alpha: float = 50.0,
        beta: float = 1.0,
        hard_lifetime_gate: bool = True,
        placement=None,
        smear_radius_um: Optional[float] = None,
        persistence_extension: bool = True,
        defensive_epsilon: float = 0.15,
    ):
        super().__init__(spec)
        if alpha < 0 or beta < 0:
            raise SamplingError("alpha and beta must be non-negative")
        if not 0.0 <= defensive_epsilon < 1.0:
            raise SamplingError("defensive_epsilon must lie in [0, 1)")
        self.defensive_epsilon = defensive_epsilon
        self.characterization = characterization
        self.alpha = alpha
        self.beta = beta
        self.hard_lifetime_gate = hard_lifetime_gate
        self._corr = characterization.signatures.correlations
        if persistence_extension:
            self._corr = _extend_persistent(
                self._corr,
                characterization,
                frames=list(spec.temporal.support()),
            )
        if placement is not None:
            if smear_radius_um is None:
                # The direct-upset reach of a typical spot, not the full
                # radius: mass should follow cells the strike can flip.
                smear_radius_um = 0.5 * float(np.mean(spec.radius.radii_um))
            self._corr = _smear_correlations(
                self._corr, placement, smear_radius_um
            )
        universe = set(spec.spatial.universe)

        self._frames: List[int] = []
        self._tables: Dict[int, _FrameTable] = {}
        omegas: List[float] = []
        for t in spec.temporal.support():
            nodes = sorted(characterization.omega_nodes(t) & universe)
            if hard_lifetime_gate and t > 0:
                nodes = [
                    nid
                    for nid in nodes
                    if characterization.L(nid) >= self.beta * t
                ]
            if not nodes:
                continue
            terms = np.array(
                [self._term(nid, t) for nid in nodes], dtype=float
            )
            omega = float(terms.sum())
            if omega <= 0.0:
                continue
            # Defensive mixture: blend the correlation-driven mass with the
            # uniform-over-cone mass so any success the pre-characterization
            # failed to spotlight still carries a bounded weight (classic
            # defensive importance sampling; keeps the estimator's tails in
            # check without biasing it).
            eps = self.defensive_epsilon
            probs = (1.0 - eps) * (terms / omega) + eps / len(nodes)
            self._frames.append(t)
            self._tables[t] = _FrameTable(
                nodes=np.asarray(nodes, dtype=np.int64),
                terms=terms,
                probs=probs,
                omega=omega,
            )
            omegas.append(omega)
        if not self._frames:
            raise SamplingError("importance sampler has empty support")
        self._omega_total = float(sum(omegas))
        eps = self.defensive_epsilon
        raw = np.array(
            [self._tables[t].omega / self._omega_total for t in self._frames]
        )
        self._frame_probs = (1.0 - eps) * raw + eps / len(self._frames)

    # ------------------------------------------------------------------
    def _term(self, nid: int, frame: int) -> float:
        """``1 + α · Corr_i(g) · δ(L(g) >= β·i)``."""
        lifetime_ok = self.characterization.L(nid) >= self.beta * frame
        corr = self._corr.get((nid, frame), 0.0)
        return 1.0 + (self.alpha * corr if lifetime_ok else 0.0)

    def g_T(self, t: int) -> float:  # noqa: N802 - paper notation
        """The marginal sampling pmf over timing distances (Fig. 8(a))."""
        if t not in self._tables:
            return 0.0
        return float(self._frame_probs[self._frames.index(t)])

    def g_P_given_T(self, centre: int, t: int) -> float:  # noqa: N802
        table = self._tables.get(t)
        if table is None:
            return 0.0
        hits = np.nonzero(table.nodes == centre)[0]
        return float(table.probs[hits[0]]) if hits.size else 0.0

    def support_size(self, t: int) -> int:
        table = self._tables.get(t)
        return len(table.nodes) if table else 0

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> AttackSample:
        idx = int(rng.choice(len(self._frames), p=self._frame_probs))
        t = self._frames[idx]
        table = self._tables[t]
        node_idx = int(rng.choice(len(table.nodes), p=table.probs))
        centre = int(table.nodes[node_idx])
        radius = self.spec.radius.sample(rng)

        g_density = float(self._frame_probs[idx]) * float(table.probs[node_idx])
        f_density = self.spec.temporal.pmf(t) * self.spec.spatial.pmf(centre)
        return AttackSample(
            t=t, centre=centre, radius_um=radius, weight=f_density / g_density
        )
