"""Sampling strategies for SSF estimation (Sections 3.3 and 4).

Three strategies, matching the paper's Fig. 9 comparison:

* :class:`RandomSampler` — draw directly from the nominal attack
  distribution ``f_{T,P}`` (the baseline).
* :class:`FaninConeSampler` — restrict to the responding signals' cones
  (Observation 1 only).
* :class:`ImportanceSampler` — the paper's two-step ``g_{T,P} = g_T ·
  g_{P|T}`` built from the full pre-characterization (cones, bit-flip
  correlation, lifetime gating).

Every sample carries the exact importance weight ``f/g``, so all three
estimators are unbiased for SSF; they differ only in variance.
"""

from repro.sampling.base import Sampler
from repro.sampling.random_sampler import RandomSampler
from repro.sampling.cone_sampler import FaninConeSampler
from repro.sampling.importance import ImportanceSampler
from repro.sampling.scoap_sampler import ScoapConeSampler
from repro.sampling.estimator import SsfEstimator

__all__ = [
    "Sampler",
    "RandomSampler",
    "FaninConeSampler",
    "ImportanceSampler",
    "ScoapConeSampler",
    "SsfEstimator",
]
