"""Observability-weighted sampling — a static-heuristic baseline.

Related work ([12] in the paper) ranks circuit locations for
vulnerability analysis by *observability*; this sampler embodies that
idea as a baseline against the paper's dynamic (simulation-derived)
importance sampling: within the responding signals' cones, a node's mass
is ``1 / (1 + CO(g))`` where ``CO`` is its SCOAP observability towards
the responding signals.

It needs no workload simulation at all — its strength and its weakness:
purely structural ranking cannot know that e.g. a highly-observable
comparator net is only sensitized during one cycle of the benchmark.
The ablation bench quantifies the gap.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec
from repro.errors import SamplingError
from repro.netlist.scoap import compute_scoap
from repro.precharac.characterization import SystemCharacterization
from repro.sampling.base import Sampler


class ScoapConeSampler(Sampler):
    """Cone-restricted sampling weighted by static observability."""

    def __init__(
        self,
        spec: AttackSpec,
        characterization: SystemCharacterization,
        sharpness: float = 1.0,
    ):
        super().__init__(spec)
        if sharpness <= 0:
            raise SamplingError("sharpness must be positive")
        self.characterization = characterization
        netlist = characterization.netlist
        scoap = compute_scoap(netlist, observe=characterization.responding)

        universe = set(spec.spatial.universe)
        self._frames: List[int] = []
        self._nodes: Dict[int, np.ndarray] = {}
        self._probs: Dict[int, np.ndarray] = {}
        frame_mass: List[float] = []
        for t in spec.temporal.support():
            nodes = sorted(characterization.omega_nodes(t) & universe)
            if not nodes:
                continue
            weights = np.array(
                [
                    (1.0 / (1.0 + min(scoap.co[nid], 1e6))) ** sharpness
                    for nid in nodes
                ]
            )
            total = float(weights.sum())
            if total <= 0:
                continue
            self._frames.append(t)
            self._nodes[t] = np.asarray(nodes, dtype=np.int64)
            self._probs[t] = weights / total
            frame_mass.append(total)
        if not self._frames:
            raise SamplingError("SCOAP sampler has empty support")
        mass = np.asarray(frame_mass)
        self._frame_probs = mass / mass.sum()

    def g_T(self, t: int) -> float:  # noqa: N802 - paper notation
        if t not in self._nodes:
            return 0.0
        return float(self._frame_probs[self._frames.index(t)])

    def sample(self, rng: np.random.Generator) -> AttackSample:
        idx = int(rng.choice(len(self._frames), p=self._frame_probs))
        t = self._frames[idx]
        node_idx = int(rng.choice(len(self._nodes[t]), p=self._probs[t]))
        centre = int(self._nodes[t][node_idx])
        radius = self.spec.radius.sample(rng)
        g_density = float(self._frame_probs[idx]) * float(
            self._probs[t][node_idx]
        )
        f_density = self.spec.temporal.pmf(t) * self.spec.spatial.pmf(centre)
        return AttackSample(
            t=t, centre=centre, radius_um=radius, weight=f_density / g_density
        )
