"""The random-sampling baseline: draw straight from ``f_{T,P}``."""

from __future__ import annotations

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec
from repro.sampling.base import Sampler


class RandomSampler(Sampler):
    """Nominal Monte Carlo: every weight is exactly 1."""

    def sample(self, rng: np.random.Generator) -> AttackSample:
        return self.spec.sample_nominal(rng)
