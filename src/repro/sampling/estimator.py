"""The SSF estimator: weighted running mean with convergence reporting.

Implements the paper's finite-sample estimate

    ``SSF_hat = (1/N) Σ (f/g)(t_i, p_i) · e(t_i, p_i)``

and tracks the sample variance ``σ²`` that controls the Chebyshev/LLN
convergence bound of Section 3.3 — the quantity the paper's Fig. 9(b)
table compares across strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attack.spec import AttackSample
from repro.utils.stats import RunningStats, samples_for_risk, wilson_interval


class SsfEstimator:
    """Accumulates weighted attack outcomes into an SSF estimate."""

    def __init__(self, record_history: bool = True):
        self.stats = RunningStats(record_history=record_history)
        self.n_success = 0
        self.n_samples = 0
        self.weighted_successes: List[Tuple[int, float]] = []

    def push(self, sample: AttackSample, e: int) -> None:
        """Record one attack outcome (``e`` is the 0/1 indicator)."""
        value = sample.weight * e
        self.stats.push(value)
        self.n_samples += 1
        if e:
            self.n_success += 1
            self.weighted_successes.append((self.n_samples, value))

    @property
    def ssf(self) -> float:
        return self.stats.mean

    @property
    def variance(self) -> float:
        """Sample variance of the per-sample contribution ``w·e``."""
        return self.stats.variance

    @property
    def std_error(self) -> float:
        return self.stats.std_error

    @property
    def history(self) -> List[float]:
        """Running SSF estimate per sample (the Fig. 9(a) curve)."""
        return self.stats.history

    def success_rate(self) -> float:
        """Raw (unweighted) fraction of successful attacks under ``g``."""
        return self.n_success / self.n_samples if self.n_samples else 0.0

    def raw_confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        if self.n_samples == 0:
            return (0.0, 1.0)
        return wilson_interval(self.n_success, self.n_samples, z)

    def samples_needed(self, epsilon: float, delta: float = 0.05) -> int:
        """Chebyshev sample-count bound at the current variance estimate."""
        return samples_for_risk(self.variance, epsilon, delta)

    def converged(self, rel_tol: float = 0.1, min_samples: int = 100) -> bool:
        """Heuristic stop rule: standard error below ``rel_tol`` of SSF."""
        if self.n_samples < min_samples:
            return False
        if self.ssf <= 0.0:
            return False
        return self.std_error <= rel_tol * self.ssf

    def summary(self) -> dict:
        return {
            "n_samples": self.n_samples,
            "n_success": self.n_success,
            "ssf": self.ssf,
            "variance": self.variance,
            "std_error": self.std_error if self.n_samples >= 2 else None,
        }
