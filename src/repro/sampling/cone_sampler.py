"""Fanin-cone sampling: Observation 1 alone.

Timing distances are drawn uniformly over the frames whose cone slice
intersects the attackable universe; the centre gate is drawn uniformly from
that intersection.  Gates outside the cones cannot influence the responding
signals, so excluding them keeps the estimator unbiased while shrinking the
sample space.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.attack.spec import AttackSample, AttackSpec
from repro.errors import SamplingError
from repro.precharac.characterization import SystemCharacterization
from repro.sampling.base import Sampler


class FaninConeSampler(Sampler):
    """Uniform over (non-empty frame) x (cone gates in the universe)."""

    def __init__(self, spec: AttackSpec, characterization: SystemCharacterization):
        super().__init__(spec)
        self.characterization = characterization
        universe = set(spec.spatial.universe)
        self._frames: List[int] = []
        self._frame_nodes: Dict[int, np.ndarray] = {}
        for t in spec.temporal.support():
            nodes = sorted(characterization.omega_nodes(t) & universe)
            if nodes:
                self._frames.append(t)
                self._frame_nodes[t] = np.asarray(nodes, dtype=np.int64)
        if not self._frames:
            raise SamplingError(
                "no cone gate lies inside the attack universe; "
                "check the sub-block selection"
            )

    def sample(self, rng: np.random.Generator) -> AttackSample:
        t = int(self._frames[rng.integers(0, len(self._frames))])
        nodes = self._frame_nodes[t]
        centre = int(nodes[rng.integers(0, len(nodes))])
        radius = self.spec.radius.sample(rng)
        # g(t) = 1/len(frames); g(centre | t) = 1/len(nodes); radius cancels.
        g_density = (1.0 / len(self._frames)) * (1.0 / len(nodes))
        f_density = self.spec.temporal.pmf(t) * self.spec.spatial.pmf(centre)
        return AttackSample(
            t=t, centre=centre, radius_um=radius, weight=f_density / g_density
        )
