"""Word-level signals over a gate-level netlist.

A :class:`Wire` is an ordered tuple of netlist node ids, least-significant
bit first.  All operators elaborate immediately into gates on the owning
module's netlist; there is no separate IR.  Widths are strict: binary
operators require equal widths (use :meth:`zext` to widen), comparisons and
reductions return 1-bit wires.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, TYPE_CHECKING, Union

from repro.errors import ElaborationError
from repro.netlist.cells import GateKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdl.module import Module


class Wire:
    """An immutable bundle of single-bit nets with word-level operators."""

    __slots__ = ("module", "bits")

    def __init__(self, module: "Module", bits: Sequence[int]):
        self.module = module
        self.bits: Tuple[int, ...] = tuple(bits)
        if not self.bits:
            raise ElaborationError("zero-width wires are not supported")

    @property
    def width(self) -> int:
        return len(self.bits)

    def _check_same(self, other: "Wire") -> None:
        if self.module is not other.module:
            raise ElaborationError("wires belong to different modules")
        if self.width != other.width:
            raise ElaborationError(
                f"width mismatch: {self.width} vs {other.width}"
            )

    def _coerce(self, other: Union["Wire", int]) -> "Wire":
        if isinstance(other, Wire):
            return other
        return self.module.const(other, self.width)

    # ------------------------------------------------------------------
    # bitwise operators
    # ------------------------------------------------------------------
    def _bitwise(self, other: Union["Wire", int], kind: GateKind) -> "Wire":
        other = self._coerce(other)
        self._check_same(other)
        nl = self.module.netlist
        bits = [nl.add_gate(kind, a, b) for a, b in zip(self.bits, other.bits)]
        return Wire(self.module, bits)

    def __and__(self, other: Union["Wire", int]) -> "Wire":
        return self._bitwise(other, GateKind.AND)

    def __or__(self, other: Union["Wire", int]) -> "Wire":
        return self._bitwise(other, GateKind.OR)

    def __xor__(self, other: Union["Wire", int]) -> "Wire":
        return self._bitwise(other, GateKind.XOR)

    def __invert__(self) -> "Wire":
        nl = self.module.netlist
        return Wire(self.module, [nl.add_gate(GateKind.NOT, b) for b in self.bits])

    # ------------------------------------------------------------------
    # arithmetic (ripple carry)
    # ------------------------------------------------------------------
    def _add_with_carry(self, other: "Wire", carry_in: int) -> Tuple[List[int], int]:
        nl = self.module.netlist
        carry = carry_in
        sums: List[int] = []
        for a, b in zip(self.bits, other.bits):
            axb = nl.add_gate(GateKind.XOR, a, b)
            s = nl.add_gate(GateKind.XOR, axb, carry)
            c1 = nl.add_gate(GateKind.AND, a, b)
            c2 = nl.add_gate(GateKind.AND, axb, carry)
            carry = nl.add_gate(GateKind.OR, c1, c2)
            sums.append(s)
        return sums, carry

    def __add__(self, other: Union["Wire", int]) -> "Wire":
        other = self._coerce(other)
        self._check_same(other)
        zero = self.module.netlist.add_const(0)
        sums, _carry = self._add_with_carry(other, zero)
        return Wire(self.module, sums)

    def __sub__(self, other: Union["Wire", int]) -> "Wire":
        other = self._coerce(other)
        self._check_same(other)
        one = self.module.netlist.add_const(1)
        sums, _borrow = self._add_with_carry(~other, one)
        return Wire(self.module, sums)

    # ------------------------------------------------------------------
    # comparisons (unsigned); all return 1-bit wires
    # ------------------------------------------------------------------
    def eq(self, other: Union["Wire", int]) -> "Wire":
        other = self._coerce(other)
        self._check_same(other)
        nl = self.module.netlist
        eq_bits = [
            nl.add_gate(GateKind.XNOR, a, b) for a, b in zip(self.bits, other.bits)
        ]
        return Wire(self.module, [_reduce_tree(nl, eq_bits, GateKind.AND)])

    def ne(self, other: Union["Wire", int]) -> "Wire":
        return ~self.eq(other)

    def ge(self, other: Union["Wire", int]) -> "Wire":
        """Unsigned ``self >= other`` via the subtractor carry-out."""
        other = self._coerce(other)
        self._check_same(other)
        one = self.module.netlist.add_const(1)
        _sums, carry = self._add_with_carry(~other, one)
        return Wire(self.module, [carry])

    def le(self, other: Union["Wire", int]) -> "Wire":
        return self._coerce(other).ge(self)

    def lt(self, other: Union["Wire", int]) -> "Wire":
        return ~self.ge(other)

    def gt(self, other: Union["Wire", int]) -> "Wire":
        return ~self.le(other)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def __getitem__(self, index: Union[int, slice]) -> "Wire":
        if isinstance(index, int):
            return Wire(self.module, [self.bits[index]])
        picked = self.bits[index]
        if not picked:
            raise ElaborationError(f"slice {index} selects no bits")
        return Wire(self.module, picked)

    def cat(self, *others: "Wire") -> "Wire":
        """Concatenate; ``self`` stays least significant."""
        bits = list(self.bits)
        for other in others:
            if other.module is not self.module:
                raise ElaborationError("wires belong to different modules")
            bits.extend(other.bits)
        return Wire(self.module, bits)

    def zext(self, width: int) -> "Wire":
        """Zero-extend to ``width`` bits."""
        if width < self.width:
            raise ElaborationError(
                f"cannot zero-extend {self.width} bits down to {width}"
            )
        nl = self.module.netlist
        pad = [nl.add_const(0) for _ in range(width - self.width)]
        return Wire(self.module, list(self.bits) + pad)

    def trunc(self, width: int) -> "Wire":
        if width > self.width:
            raise ElaborationError(f"cannot truncate {self.width} bits up to {width}")
        return Wire(self.module, self.bits[:width])

    def shl_const(self, amount: int) -> "Wire":
        """Logical left shift by a constant, same width."""
        if amount < 0:
            raise ElaborationError("shift amount must be non-negative")
        nl = self.module.netlist
        zeros = [nl.add_const(0) for _ in range(min(amount, self.width))]
        return Wire(self.module, (zeros + list(self.bits))[: self.width])

    def shr_const(self, amount: int) -> "Wire":
        """Logical right shift by a constant, same width."""
        if amount < 0:
            raise ElaborationError("shift amount must be non-negative")
        nl = self.module.netlist
        zeros = [nl.add_const(0) for _ in range(min(amount, self.width))]
        return Wire(self.module, (list(self.bits[amount:]) + zeros)[: self.width])

    # ------------------------------------------------------------------
    # reductions & selection
    # ------------------------------------------------------------------
    def reduce_or(self) -> "Wire":
        nl = self.module.netlist
        return Wire(self.module, [_reduce_tree(nl, list(self.bits), GateKind.OR)])

    def reduce_and(self) -> "Wire":
        nl = self.module.netlist
        return Wire(self.module, [_reduce_tree(nl, list(self.bits), GateKind.AND)])

    def mux(self, when_true: "Wire", when_false: "Wire") -> "Wire":
        """Bitwise select: ``self ? when_true : when_false`` (self is 1 bit)."""
        if self.width != 1:
            raise ElaborationError("mux selector must be 1 bit wide")
        when_true._check_same(when_false)
        nl = self.module.netlist
        sel = self.bits[0]
        bits = [
            nl.add_gate(GateKind.MUX, sel, f, t)
            for t, f in zip(when_true.bits, when_false.bits)
        ]
        return Wire(self.module, bits)

    def __repr__(self) -> str:
        return f"Wire(width={self.width})"


def _reduce_tree(netlist, bits: List[int], kind: GateKind) -> int:
    """Balanced reduction tree over a list of 1-bit nets."""
    if not bits:
        raise ElaborationError("cannot reduce zero bits")
    level = list(bits)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(netlist.add_gate(kind, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
