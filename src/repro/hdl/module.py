"""Module builder: ports, constants, and registers over a netlist.

A :class:`Module` owns one :class:`~repro.netlist.Netlist` and hands out
:class:`~repro.hdl.wire.Wire` handles.  Registers are declared first (their Q
pins are usable immediately, enabling feedback) and get their next-state
connected at the end with :meth:`connect`.  :meth:`finalize` validates the
result and freezes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ElaborationError
from repro.hdl.wire import Wire
from repro.netlist.graph import Netlist


class Module:
    """Builder for one elaborated hardware module."""

    def __init__(self, name: str):
        self.name = name
        self.netlist = Netlist(name)
        self._registers: Dict[str, Wire] = {}
        self._connected: Dict[str, bool] = {}
        self._finalized = False

    def _check_open(self) -> None:
        if self._finalized:
            raise ElaborationError(f"module {self.name} is already finalized")

    # ------------------------------------------------------------------
    # ports / constants / registers
    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> Wire:
        """Declare a primary input; bit ``i`` becomes port ``name[i]``."""
        self._check_open()
        if width <= 0:
            raise ElaborationError("input width must be positive")
        bits = [self.netlist.add_input(f"{name}[{i}]") for i in range(width)]
        return Wire(self, bits)

    def const(self, value: int, width: int) -> Wire:
        self._check_open()
        if width <= 0:
            raise ElaborationError("constant width must be positive")
        if value < 0 or value >= (1 << width):
            raise ElaborationError(f"constant {value} does not fit in {width} bits")
        bits = [self.netlist.add_const((value >> i) & 1) for i in range(width)]
        return Wire(self, bits)

    def register(self, name: str, width: int, init: int = 0) -> Wire:
        """Declare a register; returns the Q-side wire."""
        self._check_open()
        if width <= 0:
            raise ElaborationError("register width must be positive")
        if name in self._registers:
            raise ElaborationError(f"duplicate register {name!r}")
        if init < 0 or init >= (1 << width):
            raise ElaborationError(f"init {init} does not fit in {width} bits")
        bits = [
            self.netlist.add_dff(
                name=f"{name}[{i}]", register=name, bit=i, init=(init >> i) & 1
            )
            for i in range(width)
        ]
        wire = Wire(self, bits)
        self._registers[name] = wire
        self._connected[name] = False
        return wire

    def connect(self, reg: Wire, next_state: Wire) -> None:
        """Wire a register's next-state expression to its D pins."""
        self._check_open()
        name = self._register_name(reg)
        if self._connected[name]:
            raise ElaborationError(f"register {name!r} connected twice")
        if next_state.width != reg.width:
            raise ElaborationError(
                f"register {name!r} is {reg.width} bits, next state is "
                f"{next_state.width}"
            )
        for dff_bit, d_bit in zip(reg.bits, next_state.bits):
            self.netlist.connect_dff(dff_bit, d_bit)
        self._connected[name] = True

    def _register_name(self, reg: Wire) -> str:
        node = self.netlist.node(reg.bits[0])
        if node.register is None or self._registers.get(node.register) is None:
            raise ElaborationError("wire is not a register Q bundle")
        declared = self._registers[node.register]
        if declared.bits != reg.bits:
            raise ElaborationError(
                f"wire is not the full register {node.register!r}"
            )
        return node.register

    def output(self, name: str, wire: Wire) -> None:
        """Expose a wire as output ports ``name[i]``."""
        self._check_open()
        for i, bit in enumerate(wire.bits):
            self.netlist.mark_output(f"{name}[{i}]", bit)

    # ------------------------------------------------------------------
    # convenience builders
    # ------------------------------------------------------------------
    def one_hot_select(self, selectors: List[Wire], values: List[Wire]) -> Wire:
        """OR-reduce ``selector_i ? value_i : 0`` terms (priority handled by
        caller providing disjoint selectors)."""
        self._check_open()
        if len(selectors) != len(values) or not selectors:
            raise ElaborationError("selectors and values must match and be non-empty")
        width = values[0].width
        acc = self.const(0, width)
        for sel, val in zip(selectors, values):
            if sel.width != 1:
                raise ElaborationError("selectors must be 1 bit")
            masked = sel.mux(val, self.const(0, width))
            acc = acc | masked
        return acc

    def priority_encode(self, requests: List[Wire]) -> List[Wire]:
        """Turn request bits into one-hot grants, index 0 wins."""
        self._check_open()
        grants: List[Wire] = []
        blocked = self.const(0, 1)
        for req in requests:
            if req.width != 1:
                raise ElaborationError("requests must be 1 bit")
            grant = req & ~blocked
            grants.append(grant)
            blocked = blocked | req
        return grants

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finalize(self) -> Netlist:
        """Validate wiring and return the frozen netlist."""
        self._check_open()
        unconnected = [n for n, done in self._connected.items() if not done]
        if unconnected:
            raise ElaborationError(
                f"registers never connected: {', '.join(sorted(unconnected))}"
            )
        self.netlist.validate()
        self._finalized = True
        return self.netlist

    @property
    def register_names(self) -> List[str]:
        return list(self._registers)
