"""Word-level hardware construction DSL.

The paper evaluates a synthesized gate-level netlist of the security-critical
block (the MPU).  This package plays the role of the synthesis flow: circuits
are described with word-level signals and operators (:class:`Wire`), and a
:class:`Module` elaborates them into per-bit gates in a
:class:`repro.netlist.Netlist` — ripple-carry adders, borrow comparators,
mux trees — so the downstream fault simulation sees a realistic multi-
thousand-gate structure whose flip-flops map one-to-one onto RTL register
bits.
"""

from repro.hdl.module import Module
from repro.hdl.wire import Wire

__all__ = ["Module", "Wire"]
