"""Full vulnerability-assessment report generation.

Section 2 of the paper motivates the framework as a *design-guidance* tool:
quantify vulnerability, identify critical components, evaluate
countermeasures.  :func:`vulnerability_report` bundles one campaign's
findings into a single markdown document a designer can act on — the
deliverable a security sign-off flow would attach to the design review.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.patterns import pattern_statistics
from repro.analysis.reporting import format_table
from repro.core.hardening import HardeningStudy, attribute_ssf, critical_bits
from repro.core.results import CampaignResult, OutcomeCategory
from repro.utils.stats import samples_for_risk


def vulnerability_report(
    context,
    result: CampaignResult,
    oracle=None,
    hardening_coverage: float = 0.95,
    top_bits: int = 10,
) -> str:
    """Render a markdown vulnerability assessment for one campaign."""
    lines: List[str] = []
    bench = context.benchmark
    lines.append(f"# Fault-attack vulnerability report — `{bench.name}`")
    lines.append("")

    # ------------------------------------------------------------ system
    stats = context.netlist.stats()
    lines.append("## System under evaluation")
    lines.append("")
    lines.append(
        format_table(
            ["property", "value"],
            [
                ["MPU variant", context.mpu_variant.name],
                ["netlist nodes", stats["total"]],
                ["combinational gates", stats["combinational"]],
                ["flip-flops", stats["dff"]],
                ["cell area (um^2)", f"{context.netlist.area():.0f}"],
                ["benchmark length (cycles)", context.n_cycles],
                ["target cycle Tt", context.target_cycle],
            ],
        )
    )
    lines.append("")

    # --------------------------------------------------------------- SSF
    lines.append("## System Security Factor")
    lines.append("")
    estimator = result.estimator
    lo, hi = estimator.raw_confidence_interval()
    rows = [
        ["SSF estimate", f"{result.ssf:.5f}"],
        ["sampling strategy", result.strategy],
        ["samples", result.n_samples],
        ["successful attacks", result.n_success],
        ["raw success rate (under g)", f"{estimator.success_rate():.4f}"],
        ["95% CI of raw rate", f"[{lo:.4f}, {hi:.4f}]"],
        ["sample variance", f"{result.variance:.3e}"],
    ]
    if result.variance > 0:
        rows.append(
            [
                "samples for +/-10% at 95% (Chebyshev)",
                samples_for_risk(result.variance, 0.1 * max(result.ssf, 1e-9), 0.05),
            ]
        )
    lines.append(format_table(["quantity", "value"], rows))
    lines.append("")

    # ---------------------------------------------------------- outcomes
    lines.append("## Fault outcome mix")
    lines.append("")
    fractions = result.category_fractions()
    lines.append(
        format_table(
            ["outcome", "share"],
            [
                [category.value, f"{100 * fraction:.1f} %"]
                for category, fraction in fractions.items()
                if fraction > 0
            ],
        )
    )
    lines.append("")

    # ---------------------------------------------------------- patterns
    stats = pattern_statistics(
        [record.flipped_bits for record in result.records],
        context.netlist.register_widths(),
    )
    if stats.n_faulty:
        lines.append("## Latched error patterns")
        lines.append("")
        lines.append(
            format_table(
                ["pattern class", "share"],
                [
                    [kind, f"{100 * share:.1f} %"]
                    for kind, share in sorted(stats.fractions().items())
                ],
            )
        )
        lines.append("")

    # ---------------------------------------------------------- critical
    shares = attribute_ssf(result, oracle)
    if shares:
        lines.append("## Critical register bits")
        lines.append("")
        total = sum(shares.values())
        ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
        lines.append(
            format_table(
                ["register bit", "SSF share"],
                [
                    [f"{reg}[{bit}]", f"{100 * value / total:.1f} %"]
                    for (reg, bit), value in ranked[:top_bits]
                ],
            )
        )
        lines.append("")

        crit = critical_bits(shares, hardening_coverage)
        study = HardeningStudy(context.netlist, result, oracle=oracle)
        outcome = study.harden(crit)
        lines.append("## Recommended hardening")
        lines.append("")
        lines.append(
            format_table(
                ["quantity", "value"],
                [
                    ["bits to harden", len(crit)],
                    [
                        "SSF after hardening",
                        f"{outcome.ssf_after:.5f}",
                    ],
                    ["improvement", f"{outcome.ssf_improvement:.1f}x"],
                    ["area overhead", f"{100 * outcome.area_overhead:.2f} %"],
                ],
            )
        )
        lines.append("")
        lines.append(
            "Hardened bits: "
            + ", ".join(f"`{reg}[{bit}]`" for reg, bit in crit[:24])
            + ("..." if len(crit) > 24 else "")
        )
        lines.append("")
    else:
        lines.append("## Critical register bits")
        lines.append("")
        lines.append(
            "No successful attacks in this campaign — increase the sample "
            "count or widen the attack model before signing off."
        )
        lines.append("")

    return "\n".join(lines)
