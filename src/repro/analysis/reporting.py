"""Small text-report helpers used by examples and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table (the benchmark harness prints these)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e5):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def normalize_series(values: Sequence[float], reference: float = None) -> List[float]:
    """Normalize a series to its first element (paper's 'Normalized SSF')."""
    if not values:
        return []
    ref = reference if reference is not None else values[0]
    if ref == 0:
        return [0.0 for _ in values]
    return [v / ref for v in values]
