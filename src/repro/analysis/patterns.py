"""Bit-error pattern analysis (the paper's Fig. 7).

A *pattern* is the set of register bits latched wrong at the end of one
fault-injection cycle.  The paper uses byte granularity to argue against
single-bit/single-byte fault models: ~14.5% of observed errors span
multiple bytes and none fills a whole byte, so neither classical model is
faithful.  ``classify_pattern`` reproduces that taxonomy; bytes are the
8-bit groups of each register (``(register, bit // 8)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

RegisterBit = Tuple[str, int]


def classify_pattern(pattern: Iterable[RegisterBit]) -> str:
    """"single_bit" | "single_byte" | "multi_byte" | "empty"."""
    bits = list(pattern)
    if not bits:
        return "empty"
    if len(bits) == 1:
        return "single_bit"
    bytes_touched = {(reg, bit // 8) for reg, bit in bits}
    return "single_byte" if len(bytes_touched) == 1 else "multi_byte"


def fills_whole_byte(pattern: Iterable[RegisterBit], register_widths: Dict[str, int]) -> bool:
    """Does the pattern set *all* bits of some byte it touches?

    (The paper notes none of the observed single-byte errors did.)
    """
    bits = set(pattern)
    by_byte: Dict[Tuple[str, int], Set[int]] = {}
    for reg, bit in bits:
        by_byte.setdefault((reg, bit // 8), set()).add(bit % 8)
    for (reg, byte), offsets in by_byte.items():
        width = register_widths.get(reg, 0)
        byte_width = min(8, width - 8 * byte)
        if byte_width > 0 and len(offsets) == byte_width:
            return True
    return False


@dataclass
class PatternStats:
    """Aggregate pattern statistics over a campaign."""

    n_faulty: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    distinct_patterns: Set[FrozenSet[RegisterBit]] = field(default_factory=set)
    whole_byte_count: int = 0

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.n_faulty)
        return {kind: n / total for kind, n in self.counts.items()}

    @property
    def n_distinct(self) -> int:
        return len(self.distinct_patterns)


def pattern_statistics(
    patterns: Iterable[Iterable[RegisterBit]],
    register_widths: Dict[str, int] = None,
) -> PatternStats:
    """Classify a stream of fault patterns (empty ones are skipped)."""
    stats = PatternStats()
    for pattern in patterns:
        frozen = frozenset(pattern)
        kind = classify_pattern(frozen)
        if kind == "empty":
            continue
        stats.n_faulty += 1
        stats.counts[kind] = stats.counts.get(kind, 0) + 1
        stats.distinct_patterns.add(frozen)
        if register_widths and fills_whole_byte(frozen, register_widths):
            stats.whole_byte_count += 1
    return stats


def pattern_overlap(
    a: Iterable[FrozenSet[RegisterBit]], b: Iterable[FrozenSet[RegisterBit]]
) -> Dict[str, int]:
    """Venn counts of distinct patterns from two attack campaigns.

    Used for the paper's Fig. 7(b): patterns induced by combinational-gate
    attacks vs attacks on sequential elements.
    """
    set_a, set_b = set(a), set(b)
    return {
        "only_a": len(set_a - set_b),
        "only_b": len(set_b - set_a),
        "common": len(set_a & set_b),
    }
