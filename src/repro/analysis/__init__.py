"""Post-processing: error-pattern statistics and report tables."""

from repro.analysis.patterns import (
    PatternStats,
    classify_pattern,
    pattern_statistics,
)
from repro.analysis.reporting import format_table, normalize_series
from repro.analysis.report import vulnerability_report
from repro.analysis.statistics import (
    compare_variances,
    ssf_confidence_interval,
)

__all__ = [
    "PatternStats",
    "classify_pattern",
    "pattern_statistics",
    "format_table",
    "normalize_series",
    "vulnerability_report",
    "compare_variances",
    "ssf_confidence_interval",
]
