"""Resampling statistics for Monte Carlo campaigns.

The Chebyshev bound of Section 3.3 is loose; for reporting, bootstrap
confidence intervals on the SSF and on *variance-reduction factors*
between strategies give calibrated uncertainty — especially important for
rare-event estimates where normal approximations misbehave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import CampaignResult
from repro.errors import EvaluationError
from repro.utils.rng import SeedLike, as_generator


def campaign_values(result: CampaignResult) -> np.ndarray:
    """Per-sample contributions ``w_i * e_i`` of a campaign."""
    return np.array([r.sample.weight * r.e for r in result.records])


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI of ``statistic`` over ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        raise EvaluationError("bootstrap needs at least two samples")
    if not 0 < alpha < 1:
        raise EvaluationError("alpha must lie in (0, 1)")
    rng = as_generator(seed)
    indices = rng.integers(0, values.size, size=(n_boot, values.size))
    stats = np.array([statistic(values[row]) for row in indices])
    lo, hi = np.quantile(stats, [alpha / 2, 1 - alpha / 2])
    return float(lo), float(hi)


def ssf_confidence_interval(
    result: CampaignResult,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Bootstrap CI of the (weighted) SSF estimate."""
    return bootstrap_ci(
        campaign_values(result), np.mean, n_boot=n_boot, alpha=alpha, seed=seed
    )


@dataclass(frozen=True)
class VarianceComparison:
    """Bootstrap comparison of two strategies' sample variances."""

    ratio: float                       # var(a) / var(b): >1 means b better
    ci: Tuple[float, float]
    significant: bool                  # CI excludes 1.0

    def __str__(self) -> str:
        lo, hi = self.ci
        verdict = "significant" if self.significant else "not significant"
        return f"variance ratio {self.ratio:.2f} [{lo:.2f}, {hi:.2f}] ({verdict})"


def compare_variances(
    a: CampaignResult,
    b: CampaignResult,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: SeedLike = 0,
) -> VarianceComparison:
    """Is strategy ``b``'s sample variance genuinely below ``a``'s?

    Bootstraps the ratio ``var(a)/var(b)`` by resampling both campaigns'
    per-sample contributions independently.
    """
    va = campaign_values(a)
    vb = campaign_values(b)
    if va.size < 2 or vb.size < 2:
        raise EvaluationError("both campaigns need at least two samples")
    rng = as_generator(seed)
    ratios: List[float] = []
    for _ in range(n_boot):
        ra = va[rng.integers(0, va.size, va.size)]
        rb = vb[rng.integers(0, vb.size, vb.size)]
        var_b = np.var(rb, ddof=1)
        if var_b <= 0:
            continue
        ratios.append(float(np.var(ra, ddof=1) / var_b))
    if not ratios:
        raise EvaluationError(
            "variance ratio undefined (a campaign with no successes?)"
        )
    lo, hi = np.quantile(ratios, [alpha / 2, 1 - alpha / 2])
    point = float(np.var(va, ddof=1) / np.var(vb, ddof=1))
    return VarianceComparison(
        ratio=point,
        ci=(float(lo), float(hi)),
        significant=bool(lo > 1.0 or hi < 1.0),
    )


def required_samples_estimate(
    result: CampaignResult, rel_precision: float = 0.1, alpha: float = 0.05
) -> int:
    """CLT-based sample count for a relative-precision SSF estimate.

    ``N >= (z * sigma / (rel * SSF))^2`` — the planning number a user wants
    after a pilot campaign.
    """
    from scipy import stats as spstats  # optional dependency

    if result.ssf <= 0:
        raise EvaluationError("cannot plan precision for a zero SSF estimate")
    z = float(spstats.norm.ppf(1 - alpha / 2))
    sigma = float(np.sqrt(max(result.variance, 0.0)))
    return int(np.ceil((z * sigma / (rel_precision * result.ssf)) ** 2))
