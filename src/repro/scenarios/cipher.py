"""A toy SPN block cipher, behavioural and gate-level.

16-bit block, four rounds of (round-key XOR, 4-bit S-box layer, bit
permutation) plus a final whitening key — a miniature of the PRESENT
family, small enough to elaborate and fault-simulate in milliseconds yet
structured enough that the classical last-round DFA applies verbatim.

The hardware executes one round per cycle:

* ``start`` pulses with a plaintext on ``pt``; the state register loads;
* four round cycles follow (round counter in ``round``);
* ``done`` rises with the ciphertext on ``ct``.

Round keys enter through a load port (``rk_we``/``rk_index``/``rk_data``)
— like the MPU's configuration, they are memory-type state, and the paper's
machinery treats them accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.hdl import Module, Wire
from repro.netlist.graph import Netlist

# PRESENT's S-box — the classic 4-bit permutation.
SBOX: Tuple[int, ...] = (
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
)
SBOX_INV: Tuple[int, ...] = tuple(SBOX.index(i) for i in range(16))

# Bit permutation: bit i of the state moves to position PERM[i].
PERM: Tuple[int, ...] = tuple((4 * i) % 15 if i != 15 else 15 for i in range(16))

N_ROUNDS = 4
N_KEYS = N_ROUNDS + 1  # four round keys + final whitening key


def sbox_layer(state: int) -> int:
    out = 0
    for nibble in range(4):
        out |= SBOX[(state >> (4 * nibble)) & 0xF] << (4 * nibble)
    return out


def inv_sbox_layer(state: int) -> int:
    out = 0
    for nibble in range(4):
        out |= SBOX_INV[(state >> (4 * nibble)) & 0xF] << (4 * nibble)
    return out


def permute(state: int) -> int:
    out = 0
    for bit in range(16):
        out |= ((state >> bit) & 1) << PERM[bit]
    return out


def encrypt_reference(plaintext: int, round_keys: Sequence[int]) -> int:
    """Pure-software reference encryption."""
    if len(round_keys) != N_KEYS:
        raise SimulationError(f"need {N_KEYS} round keys")
    state = plaintext & 0xFFFF
    for r in range(N_ROUNDS):
        state ^= round_keys[r] & 0xFFFF
        state = sbox_layer(state)
        if r < N_ROUNDS - 1:
            state = permute(state)
    return state ^ (round_keys[N_ROUNDS] & 0xFFFF)


class SpnCipher:
    """Behavioural model of the cipher block (cycle-accurate)."""

    IDLE, RUN, DONE = 0, 1, 2

    def __init__(self):
        self.regs: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        self.regs = {"state": 0, "round": 0, "phase": self.IDLE}
        for i in range(N_KEYS):
            self.regs[f"rk{i}"] = 0

    def load_keys(self, round_keys: Sequence[int]) -> None:
        for i, key in enumerate(round_keys):
            self.regs[f"rk{i}"] = key & 0xFFFF

    def step(self, start: int = 0, pt: int = 0) -> None:
        regs = self.regs
        phase = regs["phase"]
        if start:
            regs["state"] = pt & 0xFFFF
            regs["round"] = 0
            regs["phase"] = self.RUN
            return
        if phase == self.RUN:
            # Mirrors the netlist exactly, including fault-reachable
            # out-of-range round counters: rounds > last use an all-zero
            # key (the one-hot select matches nothing) and keep iterating
            # with the 3-bit counter wrapping until the last-round value
            # is hit.
            r = regs["round"] & 0x7
            rk = regs[f"rk{r}"] if r < N_ROUNDS else 0
            state = sbox_layer(regs["state"] ^ rk)
            last = r == N_ROUNDS - 1
            if last:
                regs["state"] = state ^ regs[f"rk{N_ROUNDS}"]
                regs["phase"] = self.DONE
            else:
                regs["state"] = permute(state)
                regs["round"] = (r + 1) & 0x7

    @property
    def done(self) -> bool:
        return self.regs["phase"] == self.DONE

    @property
    def ciphertext(self) -> int:
        return self.regs["state"]

    def encrypt(self, plaintext: int) -> int:
        self.step(start=1, pt=plaintext)
        while not self.done:
            self.step()
        return self.ciphertext


def _sbox_hw_tree(m: Module, nibble: Wire) -> Wire:
    """4-bit S-box as a binary mux tree (correct pairing)."""
    level = [m.const(SBOX[i], 4) for i in range(16)]
    for bit in range(4):
        sel = nibble[bit]
        level = [
            sel.mux(level[2 * i + 1], level[2 * i])
            for i in range(len(level) // 2)
        ]
    return level[0]


def build_cipher_netlist() -> Netlist:
    """Elaborate the cipher to gates (bit-exact with :class:`SpnCipher`)."""
    m = Module("spn_cipher")
    start = m.input("start", 1)
    pt = m.input("pt", 16)
    rk_we = m.input("rk_we", 1)
    rk_index = m.input("rk_index", 3)
    rk_data = m.input("rk_data", 16)

    state = m.register("state", 16)
    round_ctr = m.register("round", 3)
    phase = m.register("phase", 2)
    rks = [m.register(f"rk{i}", 16) for i in range(N_KEYS)]

    # round function on the current state
    rk_selectors = [round_ctr.eq(i) for i in range(N_ROUNDS)]
    current_rk = m.one_hot_select(rk_selectors, [rks[i] for i in range(N_ROUNDS)])
    keyed = state ^ current_rk
    nibbles = [_sbox_hw_tree(m, keyed[4 * i : 4 * i + 4]) for i in range(4)]
    subbed = nibbles[0].cat(nibbles[1], nibbles[2], nibbles[3])
    permuted_bits = [None] * 16
    for bit in range(16):
        permuted_bits[PERM[bit]] = subbed[bit]
    permuted = permuted_bits[0]
    permuted = permuted.cat(*permuted_bits[1:])
    last_round = round_ctr.eq(N_ROUNDS - 1)
    round_out = last_round.mux(subbed ^ rks[N_ROUNDS], permuted)

    running = phase.eq(SpnCipher.RUN)
    next_state = start.mux(pt, running.mux(round_out, state))
    m.connect(state, next_state)
    next_round = start.mux(
        m.const(0, 3), (running & ~last_round).mux(round_ctr + 1, round_ctr)
    )
    m.connect(round_ctr, next_round)
    done_now = running & last_round
    next_phase = start.mux(
        m.const(SpnCipher.RUN, 2),
        done_now.mux(m.const(SpnCipher.DONE, 2), phase),
    )
    m.connect(phase, next_phase)

    for i in range(N_KEYS):
        we = rk_we & rk_index.eq(i)
        m.connect(rks[i], we.mux(rk_data, rks[i]))

    m.output("ct", state)
    m.output("done", phase.eq(SpnCipher.DONE))
    return m.finalize()
