"""Attack-scenario extensions beyond the MPU case study.

The paper's attack model covers two target categories (Section 3.1):
bypassing a security mechanism (the MPU case study, ``repro.soc``) and
**causing leakage of important system information** — e.g. cryptographic
keys, where ``Te`` is the injection time and ``Tt`` the time the faulty
output is observed. This package implements the second category on a toy
SPN cipher block: gate-level fault injection during encryption plus the
classical differential fault analysis (DFA) that turns faulty ciphertexts
into key material.
"""

from repro.scenarios.cipher import (
    SBOX,
    SpnCipher,
    build_cipher_netlist,
    encrypt_reference,
)
from repro.scenarios.dfa import DfaCampaign, DfaReport, last_round_candidates

__all__ = [
    "SBOX",
    "SpnCipher",
    "build_cipher_netlist",
    "encrypt_reference",
    "DfaCampaign",
    "DfaReport",
    "last_round_candidates",
]
